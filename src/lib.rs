//! # getm-repro
//!
//! Top-level facade for the GETM (HPCA 2018) reproduction. Re-exports the
//! most commonly used items so examples and downstream users need a single
//! dependency:
//!
//! ```
//! use getm_repro::prelude::*;
//! ```
//!
//! See [`gputm`] for the simulator facade, [`getm`] for the protocol itself,
//! and [`workloads`] for the nine paper benchmarks.

pub use getm;
pub use gputm;
pub use workloads;

/// Convenience re-exports covering the typical "run a workload under a TM
/// system and inspect metrics" flow.
pub mod prelude {
    pub use gputm::prelude::*;
}
