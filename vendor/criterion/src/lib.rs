//! A minimal, dependency-free shim of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in implements the subset of the criterion API the workspace's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, and `BatchSize`.
//!
//! Measurement is deliberately simple: each benchmark is auto-calibrated
//! to a target per-sample duration, timed for `sample_size` samples, and
//! the median ns/iter is printed. There are no plots, no statistical
//! regression, and no saved baselines — just honest wall-clock medians.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// How a batched benchmark amortizes its setup (ignored by the shim; the
/// variants exist for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id` and prints the median ns/iter.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (printing already happened incrementally).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the hot loop.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by `iter*`.
    median_ns: Option<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            median_ns: None,
            iters_per_sample: 0,
        }
    }

    /// Times `routine`, auto-calibrating the per-sample iteration count.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let iters = calibrate(|| {
            std::hint::black_box(routine());
        });
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(samples, iters);
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let iters = calibrate(|| {
            let input = setup();
            std::hint::black_box(routine(input));
        });
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(samples, iters);
    }

    fn record(&mut self, mut samples: Vec<f64>, iters: u64) {
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
        self.iters_per_sample = iters;
    }

    fn report(&self, group: &str, id: &str) {
        match self.median_ns {
            Some(ns) => println!(
                "{group}/{id:<32} {:>12.1} ns/iter  ({} samples x {} iters)",
                ns, self.sample_size, self.iters_per_sample
            ),
            None => println!("{group}/{id:<32} (no measurement recorded)"),
        }
    }
}

/// Picks an iteration count so one sample takes roughly `SAMPLE_TARGET`.
fn calibrate(mut once: impl FnMut()) -> u64 {
    let start = Instant::now();
    once();
    let first = start.elapsed().max(Duration::from_nanos(20));
    (SAMPLE_TARGET.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_median() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
