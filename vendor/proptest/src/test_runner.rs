//! Test configuration, the deterministic test RNG, and case failure.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test (0 = use the default).
    pub cases: u32,
    /// Shrink-iteration cap, kept for source compatibility with the real
    /// crate's config struct. This shim never shrinks, so it is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Why a case failed (only `prop_assert*` produces these; plain `assert!`
/// panics immediately instead).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion in the test body failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// The deterministic RNG behind every strategy (SplitMix64).
///
/// Seeded from the test's name so each test draws an independent,
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// The next uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn default_cases_positive() {
        assert!(ProptestConfig::default().resolved_cases() > 0);
    }

    #[test]
    fn error_displays_message() {
        let e = TestCaseError::fail("boom");
        assert_eq!(e.to_string(), "boom");
    }
}
