//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`, and
//! uniform choice among boxed strategies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// Something that can generate values for a property test.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The generated value type (`Debug` so failures can print inputs).
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (`(1u32..5).prop_map(Some)`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy for heterogeneous storage (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> OneOf<V> {
    /// Builds the choice from boxed alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (5u64..8).generate(&mut rng);
            assert!((5..8).contains(&v));
            let w = (0u8..3).generate(&mut rng);
            assert!(w < 3);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::for_test("oneof");
        let s = crate::prop_oneof![Just(None), (1u32..5).prop_map(Some)];
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                None => saw_none = true,
                Some(v) => {
                    assert!((1..5).contains(&v));
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::for_test("vec");
        let s = crate::collection::vec((0u64..4, 0u64..4), 2..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let s = crate::collection::vec(0u64..1000, 1..50);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
