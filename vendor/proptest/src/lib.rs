//! A minimal, dependency-free shim of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in implements exactly the subset of the proptest API the
//! workspace's property tests use: the [`proptest!`] macro, range / tuple /
//! vec / bool strategies, [`strategy::Just`], `prop_oneof!`, `prop_map`,
//! and the `prop_assert*` macros.
//!
//! Semantics differ from the real crate in one deliberate way: there is
//! **no shrinking**. A failing case panics with the generated inputs
//! formatted into the message instead; for deterministic simulators that
//! is enough to reproduce a failure by hand.
//!
//! Case generation is fully deterministic: the RNG seed is derived from
//! the test's name, so CI failures reproduce locally. Set
//! `PROPTEST_CASES` to override the per-test case count.

pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest::bool::ANY`: a uniform boolean strategy.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `proptest::collection`: vector strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted element-count specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy producing vectors of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fails the current proptest case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, formatting both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// The property-test entry macro: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.resolved_cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.resolved_cases(),
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}
