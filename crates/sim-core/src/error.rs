//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Diagnosis of a run the forward-progress watchdog gave up on.
///
/// Returned inside [`SimError::Livelock`] when a simulation makes no
/// commit progress for long enough that even the degradation ladder
/// (backoff escalation, serialized commits) could not restart it. Unlike
/// the bare [`SimError::CycleLimitExceeded`], the report says *where* the
/// contention was: the hottest addresses by abort count and the warps that
/// were starving when the watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivelockReport {
    /// Cycle at which the watchdog declared livelock.
    pub detected_cycle: u64,
    /// Cycle of the last observed commit (0 if nothing ever committed).
    pub last_progress_cycle: u64,
    /// Commits observed over the whole run before detection.
    pub commits: u64,
    /// Aborts observed over the whole run before detection.
    pub aborts: u64,
    /// The watchdog's progress window, in cycles.
    pub window: u64,
    /// Hottest conflict addresses, `(address, abort count)`, most-aborted
    /// first (capped to a small top-N by the producer).
    pub hot_addrs: Vec<(u64, u64)>,
    /// Global warp ids that held an open, uncommitted transaction region
    /// when the watchdog fired.
    pub starving_warps: Vec<u64>,
}

impl fmt::Display for LivelockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "livelock at cycle {} (last progress {}; {} commits, {} aborts; \
             {} starving warp(s); window {})",
            self.detected_cycle,
            self.last_progress_cycle,
            self.commits,
            self.aborts,
            self.starving_warps.len(),
            self.window
        )?;
        if let Some((addr, n)) = self.hot_addrs.first() {
            write!(f, "; hottest addr {addr:#x} with {n} abort(s)")?;
        }
        Ok(())
    }
}

/// Errors surfaced by simulator construction and execution.
///
/// Most simulator-internal conditions (aborted transactions, full queues)
/// are modelled behaviour, not errors; `SimError` covers genuine misuse of
/// the API or configurations the models cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter is outside the supported range.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// Human-readable detail of the rejection.
        detail: String,
    },
    /// The simulation exceeded its cycle budget without finishing, which
    /// usually indicates livelock in a protocol under test.
    CycleLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A workload asked for resources the simulated machine does not have.
    ResourceExhausted {
        /// Which resource ran out.
        what: &'static str,
    },
    /// A protocol message arrived for a request the engine has no record
    /// of — a reply routed to an unknown token, an acknowledgement for a
    /// commit that was never in flight, and so on. These always indicate an
    /// engine or protocol-model bug rather than modelled behaviour; the
    /// verifier surfaces them as verdicts instead of crashing the process.
    ProtocolViolation {
        /// Which routing step failed.
        what: &'static str,
        /// The correlation token that could not be routed.
        token: u64,
        /// The cycle at which the violation was detected.
        cycle: u64,
    },
    /// The forward-progress watchdog observed no commits for long enough
    /// to declare the run livelocked, even after graceful degradation.
    /// Carries a full diagnosis (boxed: the report is much larger than the
    /// other variants).
    Livelock(Box<LivelockReport>),
    /// The run was cancelled from outside (a sweep-level watchdog or
    /// shutdown request raised the engine's cancel token).
    Interrupted {
        /// The cycle at which the engine noticed the cancellation.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what, detail } => {
                write!(f, "invalid configuration for {what}: {detail}")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded cycle limit of {limit}")
            }
            SimError::ResourceExhausted { what } => {
                write!(f, "simulated resource exhausted: {what}")
            }
            SimError::ProtocolViolation { what, token, cycle } => {
                write!(
                    f,
                    "protocol violation at cycle {cycle}: {what} (token {token})"
                )
            }
            SimError::Livelock(report) => write!(f, "{report}"),
            SimError::Interrupted { cycle } => {
                write!(f, "simulation interrupted at cycle {cycle}")
            }
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(what: &'static str, detail: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            what,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::invalid_config("warps_per_core", "must be nonzero");
        assert_eq!(
            e.to_string(),
            "invalid configuration for warps_per_core: must be nonzero"
        );
        assert_eq!(
            SimError::CycleLimitExceeded { limit: 10 }.to_string(),
            "simulation exceeded cycle limit of 10"
        );
        assert_eq!(
            SimError::ResourceExhausted {
                what: "stall buffer"
            }
            .to_string(),
            "simulated resource exhausted: stall buffer"
        );
        assert_eq!(
            SimError::ProtocolViolation {
                what: "load reply routed to unknown token",
                token: 42,
                cycle: 7
            }
            .to_string(),
            "protocol violation at cycle 7: load reply routed to unknown token (token 42)"
        );
    }

    #[test]
    fn livelock_display_names_the_hot_spot() {
        let report = LivelockReport {
            detected_cycle: 5000,
            last_progress_cycle: 1000,
            commits: 3,
            aborts: 912,
            window: 2000,
            hot_addrs: vec![(0x7000_0000, 450), (0x7000_0008, 400)],
            starving_warps: vec![0, 1, 5],
        };
        let msg = SimError::Livelock(Box::new(report)).to_string();
        assert!(msg.contains("livelock at cycle 5000"), "{msg}");
        assert!(msg.contains("3 starving warp(s)"), "{msg}");
        assert!(msg.contains("0x70000000"), "{msg}");
    }

    #[test]
    fn interrupted_display() {
        assert_eq!(
            SimError::Interrupted { cycle: 99 }.to_string(),
            "simulation interrupted at cycle 99"
        );
    }

    #[test]
    fn is_error_and_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
