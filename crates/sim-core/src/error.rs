//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced by simulator construction and execution.
///
/// Most simulator-internal conditions (aborted transactions, full queues)
/// are modelled behaviour, not errors; `SimError` covers genuine misuse of
/// the API or configurations the models cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter is outside the supported range.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// Human-readable detail of the rejection.
        detail: String,
    },
    /// The simulation exceeded its cycle budget without finishing, which
    /// usually indicates livelock in a protocol under test.
    CycleLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A workload asked for resources the simulated machine does not have.
    ResourceExhausted {
        /// Which resource ran out.
        what: &'static str,
    },
    /// A protocol message arrived for a request the engine has no record
    /// of — a reply routed to an unknown token, an acknowledgement for a
    /// commit that was never in flight, and so on. These always indicate an
    /// engine or protocol-model bug rather than modelled behaviour; the
    /// verifier surfaces them as verdicts instead of crashing the process.
    ProtocolViolation {
        /// Which routing step failed.
        what: &'static str,
        /// The correlation token that could not be routed.
        token: u64,
        /// The cycle at which the violation was detected.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what, detail } => {
                write!(f, "invalid configuration for {what}: {detail}")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded cycle limit of {limit}")
            }
            SimError::ResourceExhausted { what } => {
                write!(f, "simulated resource exhausted: {what}")
            }
            SimError::ProtocolViolation { what, token, cycle } => {
                write!(
                    f,
                    "protocol violation at cycle {cycle}: {what} (token {token})"
                )
            }
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(what: &'static str, detail: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            what,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::invalid_config("warps_per_core", "must be nonzero");
        assert_eq!(
            e.to_string(),
            "invalid configuration for warps_per_core: must be nonzero"
        );
        assert_eq!(
            SimError::CycleLimitExceeded { limit: 10 }.to_string(),
            "simulation exceeded cycle limit of 10"
        );
        assert_eq!(
            SimError::ResourceExhausted {
                what: "stall buffer"
            }
            .to_string(),
            "simulated resource exhausted: stall buffer"
        );
        assert_eq!(
            SimError::ProtocolViolation {
                what: "load reply routed to unknown token",
                token: 42,
                cycle: 7
            }
            .to_string(),
            "protocol violation at cycle 7: load reply routed to unknown token (token 42)"
        );
    }

    #[test]
    fn is_error_and_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
