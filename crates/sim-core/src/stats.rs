//! Statistics collection.
//!
//! Architectural models accumulate counts, maxima, ratios and small
//! histograms during simulation; the experiment harness reads them out at
//! the end of a run. All types here are plain accumulators — cheap to update
//! on hot paths and trivially mergeable across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Folds another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Tracks the maximum of a stream of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxTracker(u64);

impl MaxTracker {
    /// A tracker with maximum zero.
    pub fn new() -> Self {
        MaxTracker(0)
    }

    /// Observes a value.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if v > self.0 {
            self.0 = v;
        }
    }

    /// The largest value observed so far (zero if none).
    #[inline]
    pub fn max(&self) -> u64 {
        self.0
    }

    /// Folds another tracker into this one.
    pub fn merge(&mut self, other: &MaxTracker) {
        self.observe(other.0);
    }
}

/// An online mean: a sum of observations and their count.
///
/// Used for per-request averages such as "validation-unit cycles per
/// metadata access" (Fig. 13) or "stalled requests per address" (Fig. 16).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RatioStat {
    sum: f64,
    n: u64,
}

impl RatioStat {
    /// An empty ratio.
    pub fn new() -> Self {
        RatioStat::default()
    }

    /// Observes one sample.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    /// The mean of all samples, or 0.0 if none were observed.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds another ratio into this one.
    pub fn merge(&mut self, other: &RatioStat) {
        self.sum += other.sum;
        self.n += other.n;
    }
}

/// A sparse histogram over `u64` buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `v`.
    pub fn observe(&mut self, v: u64) {
        *self.buckets.entry(v).or_insert(0) += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Mean of all observations (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let sum: u64 = self.buckets.iter().map(|(v, c)| v * c).sum();
        sum as f64 / n as f64
    }

    /// Largest observed value (None if empty).
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &c)| (v, c))
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &c) in &other.buckets {
            *self.buckets.entry(v).or_insert(0) += c;
        }
    }
}

/// A log-2-bucketed latency histogram.
///
/// Bucket 0 holds the value 0; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Observation is a branch and an increment, so the type
/// is safe on hot paths; percentiles come out as the *upper bound* of the
/// bucket containing the requested rank (an "at most" answer, the usual
/// reading for log-bucketed latency data). The exact sum and maximum are
/// tracked alongside the buckets, so `mean` and `max` stay precise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    n: u64,
    sum: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// The bucket index `v` falls into.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// The `[low, high]` inclusive value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.n += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of all observations (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Exact largest observed value (None if empty).
    pub fn max(&self) -> Option<u64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The upper bound of the bucket containing the `p`-th percentile
    /// (`0.0 < p <= 1.0`), clamped to the exact maximum. Returns 0 for an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((p * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`LogHistogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile (see [`LogHistogram::percentile`]).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile (see [`LogHistogram::percentile`]).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Iterates `(bucket_low, bucket_high, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Raw per-bucket counts, lowest bucket first (for serialization).
    pub fn raw_buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuilds a histogram from serialized parts. Trailing zero buckets are
    /// trimmed so equal data compares equal regardless of provenance.
    pub fn from_parts(mut buckets: Vec<u64>, sum: u64, max: u64) -> Self {
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let n = buckets.iter().sum();
        LogHistogram {
            buckets,
            n,
            sum,
            max,
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += c;
        }
        self.n += other.n;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// A windowed time-series probe: a gauge sampled over fixed windows of
/// simulated time, keeping the *maximum* sample per window.
///
/// Queue depths and buffer occupancies are bursty; the per-window maximum
/// is what shows a backup that a mean would smear away. Windows nobody
/// sampled read as 0.0.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window: u64,
    points: Vec<f64>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(1024)
    }
}

impl TimeSeries {
    /// A series with `window` cycles per sample.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "time-series window must be positive");
        TimeSeries {
            window,
            points: Vec::new(),
        }
    }

    /// Cycles per sample window.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Records a gauge sample at simulated time `cycle`.
    #[inline]
    pub fn record(&mut self, cycle: u64, value: f64) {
        let idx = (cycle / self.window) as usize;
        if idx >= self.points.len() {
            self.points.resize(idx + 1, 0.0);
        }
        if value > self.points[idx] {
            self.points[idx] = value;
        }
    }

    /// One point per window (maximum sample seen in that window).
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Largest point across all windows (0.0 if empty).
    pub fn peak(&self) -> f64 {
        self.points.iter().copied().fold(0.0, f64::max)
    }
}

/// A named bundle of counters, handy for ad-hoc per-component stats that the
/// harness dumps verbatim.
#[derive(Debug, Clone, Default)]
pub struct StatSet {
    values: BTreeMap<&'static str, u64>,
}

impl StatSet {
    /// An empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Adds `n` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.values.entry(name).or_insert(0) += n;
    }

    /// Reads a counter (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Folds another set into this one.
    pub fn merge(&mut self, other: &StatSet) {
        for (&k, &v) in &other.values {
            *self.values.entry(k).or_insert(0) += v;
        }
    }
}

/// Geometric mean of a slice of positive values; 0.0 for an empty slice.
///
/// Used for the "GMEAN" column of the paper's figures. Non-positive inputs
/// are skipped (they would otherwise poison the logarithm).
pub fn gmean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut d = Counter::new();
        d.add(10);
        c.merge(&d);
        assert_eq!(c.get(), 15);
        assert_eq!(c.to_string(), "15");
    }

    #[test]
    fn max_tracker() {
        let mut m = MaxTracker::new();
        assert_eq!(m.max(), 0);
        m.observe(3);
        m.observe(1);
        assert_eq!(m.max(), 3);
        let mut n = MaxTracker::new();
        n.observe(9);
        m.merge(&n);
        assert_eq!(m.max(), 9);
    }

    #[test]
    fn ratio_stat_mean() {
        let mut r = RatioStat::new();
        assert_eq!(r.mean(), 0.0);
        r.observe(1.0);
        r.observe(3.0);
        assert_eq!(r.mean(), 2.0);
        assert_eq!(r.count(), 2);
        let mut s = RatioStat::new();
        s.observe(8.0);
        r.merge(&s);
        assert_eq!(r.count(), 3);
        assert_eq!(r.mean(), 4.0);
    }

    #[test]
    fn histogram() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        h.observe(2);
        h.observe(2);
        h.observe(8);
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.max(), Some(8));
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(2, 2), (8, 1)]);
        let mut g = Histogram::new();
        g.observe(2);
        h.merge(&g);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn stat_set() {
        let mut s = StatSet::new();
        s.add("loads", 2);
        s.add("loads", 3);
        assert_eq!(s.get("loads"), 5);
        assert_eq!(s.get("missing"), 0);
        let mut t = StatSet::new();
        t.add("stores", 1);
        s.merge(&t);
        assert_eq!(s.get("stores"), 1);
    }

    #[test]
    fn log_histogram_bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i).
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(7), 3);
        assert_eq!(LogHistogram::bucket_of(8), 4);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_bounds(0), (0, 0));
        assert_eq!(LogHistogram::bucket_bounds(1), (1, 1));
        assert_eq!(LogHistogram::bucket_bounds(4), (8, 15));
        // Every power of two starts a fresh bucket.
        for i in 1..63 {
            let v = 1u64 << i;
            assert_eq!(
                LogHistogram::bucket_of(v),
                LogHistogram::bucket_of(v - 1) + 1
            );
            assert_eq!(LogHistogram::bucket_bounds(LogHistogram::bucket_of(v)).0, v);
        }
    }

    #[test]
    fn log_histogram_percentiles_and_mean() {
        let mut h = LogHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), None);
        for _ in 0..98 {
            h.observe(1);
        }
        h.observe(20);
        h.observe(100);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p95(), 1);
        // 99th rank lands in bucket [16,31].
        assert_eq!(h.p99(), 31);
        assert_eq!(h.max(), Some(100));
        // Percentile never exceeds the exact max even at the top bucket.
        assert_eq!(h.percentile(1.0), 100);
        assert!((h.mean() - (98.0 + 20.0 + 100.0) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_merge_and_round_trip() {
        let mut a = LogHistogram::new();
        a.observe(0);
        a.observe(3);
        let mut b = LogHistogram::new();
        b.observe(3);
        b.observe(500);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 506);
        assert_eq!(a.max(), Some(500));
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![(0, 0, 1), (2, 3, 2), (256, 511, 1)]
        );
        // Serialization round trip through raw parts is lossless.
        let back =
            LogHistogram::from_parts(a.raw_buckets().to_vec(), a.sum(), a.max().unwrap_or(0));
        assert_eq!(back, a);
    }

    #[test]
    fn time_series_windows_keep_max() {
        let mut t = TimeSeries::new(100);
        t.record(5, 1.0);
        t.record(99, 3.0);
        t.record(50, 2.0);
        t.record(250, 7.0);
        assert_eq!(t.points(), &[3.0, 0.0, 7.0]);
        assert_eq!(t.peak(), 7.0);
        assert_eq!(t.window(), 100);
    }

    #[test]
    fn gmean_values() {
        assert_eq!(gmean(&[]), 0.0);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // zeros and negatives are skipped
        assert!((gmean(&[2.0, 8.0, 0.0, -1.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
