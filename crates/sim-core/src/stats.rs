//! Statistics collection.
//!
//! Architectural models accumulate counts, maxima, ratios and small
//! histograms during simulation; the experiment harness reads them out at
//! the end of a run. All types here are plain accumulators — cheap to update
//! on hot paths and trivially mergeable across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Folds another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Tracks the maximum of a stream of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxTracker(u64);

impl MaxTracker {
    /// A tracker with maximum zero.
    pub fn new() -> Self {
        MaxTracker(0)
    }

    /// Observes a value.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if v > self.0 {
            self.0 = v;
        }
    }

    /// The largest value observed so far (zero if none).
    #[inline]
    pub fn max(&self) -> u64 {
        self.0
    }

    /// Folds another tracker into this one.
    pub fn merge(&mut self, other: &MaxTracker) {
        self.observe(other.0);
    }
}

/// An online mean: a sum of observations and their count.
///
/// Used for per-request averages such as "validation-unit cycles per
/// metadata access" (Fig. 13) or "stalled requests per address" (Fig. 16).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RatioStat {
    sum: f64,
    n: u64,
}

impl RatioStat {
    /// An empty ratio.
    pub fn new() -> Self {
        RatioStat::default()
    }

    /// Observes one sample.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    /// The mean of all samples, or 0.0 if none were observed.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds another ratio into this one.
    pub fn merge(&mut self, other: &RatioStat) {
        self.sum += other.sum;
        self.n += other.n;
    }
}

/// A sparse histogram over `u64` buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `v`.
    pub fn observe(&mut self, v: u64) {
        *self.buckets.entry(v).or_insert(0) += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Mean of all observations (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let sum: u64 = self.buckets.iter().map(|(v, c)| v * c).sum();
        sum as f64 / n as f64
    }

    /// Largest observed value (None if empty).
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &c)| (v, c))
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &c) in &other.buckets {
            *self.buckets.entry(v).or_insert(0) += c;
        }
    }
}

/// A named bundle of counters, handy for ad-hoc per-component stats that the
/// harness dumps verbatim.
#[derive(Debug, Clone, Default)]
pub struct StatSet {
    values: BTreeMap<&'static str, u64>,
}

impl StatSet {
    /// An empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Adds `n` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.values.entry(name).or_insert(0) += n;
    }

    /// Reads a counter (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Folds another set into this one.
    pub fn merge(&mut self, other: &StatSet) {
        for (&k, &v) in &other.values {
            *self.values.entry(k).or_insert(0) += v;
        }
    }
}

/// Geometric mean of a slice of positive values; 0.0 for an empty slice.
///
/// Used for the "GMEAN" column of the paper's figures. Non-positive inputs
/// are skipped (they would otherwise poison the logarithm).
pub fn gmean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut d = Counter::new();
        d.add(10);
        c.merge(&d);
        assert_eq!(c.get(), 15);
        assert_eq!(c.to_string(), "15");
    }

    #[test]
    fn max_tracker() {
        let mut m = MaxTracker::new();
        assert_eq!(m.max(), 0);
        m.observe(3);
        m.observe(1);
        assert_eq!(m.max(), 3);
        let mut n = MaxTracker::new();
        n.observe(9);
        m.merge(&n);
        assert_eq!(m.max(), 9);
    }

    #[test]
    fn ratio_stat_mean() {
        let mut r = RatioStat::new();
        assert_eq!(r.mean(), 0.0);
        r.observe(1.0);
        r.observe(3.0);
        assert_eq!(r.mean(), 2.0);
        assert_eq!(r.count(), 2);
        let mut s = RatioStat::new();
        s.observe(8.0);
        r.merge(&s);
        assert_eq!(r.count(), 3);
        assert_eq!(r.mean(), 4.0);
    }

    #[test]
    fn histogram() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        h.observe(2);
        h.observe(2);
        h.observe(8);
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.max(), Some(8));
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(2, 2), (8, 1)]);
        let mut g = Histogram::new();
        g.observe(2);
        h.merge(&g);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn stat_set() {
        let mut s = StatSet::new();
        s.add("loads", 2);
        s.add("loads", 3);
        assert_eq!(s.get("loads"), 5);
        assert_eq!(s.get("missing"), 0);
        let mut t = StatSet::new();
        t.add("stores", 1);
        s.merge(&t);
        assert_eq!(s.get("stores"), 1);
    }

    #[test]
    fn gmean_values() {
        assert_eq!(gmean(&[]), 0.0);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // zeros and negatives are skipped
        assert!((gmean(&[2.0, 8.0, 0.0, -1.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
