//! # sim-core
//!
//! The simulation kernel shared by every component of the GETM
//! reproduction: cycle bookkeeping, deterministic random number generation,
//! statistics counters, a timing-event wheel, and the error type used across
//! the workspace.
//!
//! Nothing in this crate knows about GPUs or transactional memory; it is the
//! substrate the architectural models are built on.
//!
//! ```
//! use sim_core::{Cycle, EventWheel};
//!
//! let mut wheel: EventWheel<&'static str> = EventWheel::new();
//! wheel.schedule(Cycle(5), "hello");
//! assert!(wheel.pop_due(Cycle(4)).is_none());
//! assert_eq!(wheel.pop_due(Cycle(5)), Some("hello"));
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod cycle;
pub mod error;
pub mod events;
pub mod hash;
pub mod history;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod trace;

pub use cancel::CancelToken;
pub use cycle::Cycle;
pub use error::{LivelockReport, SimError};
pub use events::EventWheel;
pub use hash::StableHasher;
pub use history::{History, HistoryRecorder};
pub use rng::DetRng;
pub use slab::TokenSlab;
pub use stats::{Counter, Histogram, LogHistogram, MaxTracker, RatioStat, StatSet, TimeSeries};
pub use trace::{AbortCause, EventBus, Recorder, SimEvent, Stamp, TraceSink, WatchdogStage};
