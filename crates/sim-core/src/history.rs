//! Transaction-history recording for offline serializability checking.
//!
//! A [`History`] is a complete record of one simulation run at the
//! granularity a correctness checker needs: every transactional attempt
//! (committed or aborted) with the exact values and memory *versions* each
//! of its reads observed, every write in global apply order, and the
//! engine's commit decisions as a monotonic sequence. Non-transactional
//! stores and atomic read-modify-writes are recorded as committed singleton
//! transactions so mixed tx/non-tx aliasing is visible to the checker;
//! plain non-transactional loads are not constrained by any TM contract and
//! are not recorded.
//!
//! [`HistoryRecorder`] follows the same zero-cost-when-off discipline as
//! [`crate::trace::Recorder`]: a disabled recorder is a `None` handle and
//! every hook is a single branch on it, so instrumented engine code pays
//! nothing measurable when verification is off.
//!
//! This module is deliberately model-agnostic: addresses are raw `u64`
//! words and transactions are identified by (core, warp, lane) coordinates.
//! The conflict-graph construction and the serializability/opacity
//! judgements live with the engine that owns the semantics (`gputm`'s
//! `verify` module), not here.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Sentinel version id: the address's initial (pre-run) value.
pub const INITIAL_VERSION: u32 = u32::MAX;

/// Sentinel transaction id used where an attempt id is required on the wire
/// but recording is off (or the entry is abort cleanup with no writer).
pub const NO_TXN: u32 = u32::MAX;

/// What kind of actor a recorded transaction is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// A programmer-visible transaction (`TxBegin … TxCommit`).
    Tx,
    /// A plain non-transactional store, recorded as a committed singleton.
    PlainStore,
    /// An atomic read-modify-write, recorded as a committed singleton.
    Atomic,
}

/// How a recorded attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Still executing when the history was sealed (treated as aborted by
    /// opacity checks: it must still have seen a consistent snapshot).
    Open,
    /// Reached its commit point; `seq` is the global commit-decision order.
    Committed {
        /// Monotonic commit-decision sequence number.
        seq: u64,
        /// Cycle of the commit decision.
        cycle: u64,
    },
    /// Rolled back.
    Aborted {
        /// Cycle of the abort.
        cycle: u64,
    },
}

/// One observed read: the value a lane actually accepted, and the memory
/// version that produced it (captured when the owning partition served the
/// access). Reads satisfied by intra-transaction forwarding are *not*
/// recorded — they never touch shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRec {
    /// Word address.
    pub addr: u64,
    /// The value delivered to the lane.
    pub value: u64,
    /// Version id observed, or [`INITIAL_VERSION`].
    pub version: u32,
}

/// One applied write, in the order it reached memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRec {
    /// Word address.
    pub addr: u64,
    /// The value written.
    pub value: u64,
    /// The version this write created.
    pub version: u32,
}

/// One transactional attempt (or non-tx singleton).
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// Actor kind.
    pub kind: TxnKind,
    /// Issuing core.
    pub core: usize,
    /// Global warp id of the issuing warp.
    pub gwid: u32,
    /// Lane within the warp.
    pub lane: u32,
    /// Cycle the attempt began.
    pub begin_cycle: u64,
    /// How the attempt ended.
    pub outcome: TxnOutcome,
    /// Reads in observation order.
    pub reads: Vec<ReadRec>,
    /// Writes in apply order.
    pub writes: Vec<WriteRec>,
}

impl TxnRecord {
    /// Whether the attempt committed.
    pub fn committed(&self) -> bool {
        matches!(self.outcome, TxnOutcome::Committed { .. })
    }

    /// Commit sequence number, if committed.
    pub fn commit_seq(&self) -> Option<u64> {
        match self.outcome {
            TxnOutcome::Committed { seq, .. } => Some(seq),
            _ => None,
        }
    }
}

/// One version of one address: the value some committed writer installed.
#[derive(Debug, Clone, Copy)]
pub struct VersionRec {
    /// Word address.
    pub addr: u64,
    /// Installed value.
    pub value: u64,
    /// The transaction that installed it.
    pub writer: u32,
    /// Previous version of the same address, or [`INITIAL_VERSION`].
    pub prev: u32,
    /// Cycle the write reached memory.
    pub cycle: u64,
}

/// Aggregate counts over a sealed history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Transactional attempts recorded (committed + aborted + open).
    pub attempts: u64,
    /// Committed transactional attempts.
    pub committed: u64,
    /// Aborted transactional attempts.
    pub aborted: u64,
    /// Non-transactional singleton records (plain stores + atomics).
    pub non_tx: u64,
    /// Reads recorded across all attempts.
    pub reads: u64,
    /// Memory versions installed.
    pub versions: u64,
}

/// The complete recorded history of a run.
#[derive(Debug, Default)]
pub struct History {
    /// All recorded transactions, indexed by id.
    pub txns: Vec<TxnRecord>,
    /// All versions in global apply order.
    pub versions: Vec<VersionRec>,
    current: HashMap<u64, u32>,
    open: HashMap<u64, u32>,
    next_seq: u64,
}

fn slot_key(gwid: u32, lane: u32) -> u64 {
    ((gwid as u64) << 8) | lane as u64
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Assembles a history from externally recorded parts: a complete
    /// transaction list (indexed by the ids `versions[..].writer` and
    /// `TxnRecord::reads[..].version` refer to) and the versions in global
    /// apply order.
    ///
    /// This is the entry point for executors that run outside the simulated
    /// engine (host-threaded STM backends record per-thread attempt logs
    /// and merge them after the run) but want their executions certified by
    /// the same offline checker. The private bookkeeping (`current`,
    /// `next_seq`) is derived here; no attempt may still be open per
    /// `open`-map semantics — callers seal every attempt before merging.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency: a
    /// version whose writer id is out of range, a version not listed in its
    /// writer's `writes` (or with mismatched value), a read referencing a
    /// nonexistent version id, or duplicate commit sequence numbers.
    pub fn from_parts(txns: Vec<TxnRecord>, versions: Vec<VersionRec>) -> Result<Self, String> {
        let mut current: HashMap<u64, u32> = HashMap::new();
        for (vi, v) in versions.iter().enumerate() {
            let Some(writer) = txns.get(v.writer as usize) else {
                return Err(format!(
                    "version {vi} names writer {} of {} txns",
                    v.writer,
                    txns.len()
                ));
            };
            let listed = writer
                .writes
                .iter()
                .any(|w| w.version == vi as u32 && w.addr == v.addr && w.value == v.value);
            if !listed {
                return Err(format!(
                    "version {vi} ({:#x}={}) missing from writer {}'s writes",
                    v.addr, v.value, v.writer
                ));
            }
            current.insert(v.addr, vi as u32);
        }
        let mut seqs: Vec<u64> = Vec::new();
        for (ti, t) in txns.iter().enumerate() {
            if matches!(t.outcome, TxnOutcome::Open) && !t.writes.is_empty() {
                return Err(format!("txn {ti} is still open but has applied writes"));
            }
            if let Some(seq) = t.commit_seq() {
                seqs.push(seq);
            }
            for (ri, r) in t.reads.iter().enumerate() {
                if r.version != INITIAL_VERSION && r.version as usize >= versions.len() {
                    return Err(format!(
                        "txn {ti} read {ri} names version {} of {}",
                        r.version,
                        versions.len()
                    ));
                }
            }
            for w in &t.writes {
                let ok = versions
                    .get(w.version as usize)
                    .is_some_and(|v| v.writer == ti as u32);
                if !ok {
                    return Err(format!(
                        "txn {ti} claims version {} it did not install",
                        w.version
                    ));
                }
            }
        }
        let next_seq = seqs.iter().max().map_or(0, |&m| m + 1);
        seqs.sort_unstable();
        if seqs.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate commit sequence numbers".to_string());
        }
        Ok(History {
            txns,
            versions,
            current,
            open: HashMap::new(),
            next_seq,
        })
    }

    /// The current version id of `addr`, or [`INITIAL_VERSION`] if the run
    /// has not written it yet.
    pub fn version_of(&self, addr: u64) -> u32 {
        self.current.get(&addr).copied().unwrap_or(INITIAL_VERSION)
    }

    /// Opens a new transactional attempt for `(gwid, lane)`.
    pub fn begin(&mut self, core: usize, gwid: u32, lane: u32, cycle: u64) {
        let id = self.txns.len() as u32;
        self.txns.push(TxnRecord {
            kind: TxnKind::Tx,
            core,
            gwid,
            lane,
            begin_cycle: cycle,
            outcome: TxnOutcome::Open,
            reads: Vec::new(),
            writes: Vec::new(),
        });
        let stale = self.open.insert(slot_key(gwid, lane), id);
        debug_assert!(stale.is_none(), "attempt opened over an open attempt");
    }

    /// The open attempt for `(gwid, lane)`, if any.
    pub fn current_txn(&self, gwid: u32, lane: u32) -> Option<u32> {
        self.open.get(&slot_key(gwid, lane)).copied()
    }

    /// Records a read observed by the open attempt of `(gwid, lane)`.
    pub fn read_observed(&mut self, gwid: u32, lane: u32, addr: u64, value: u64, version: u32) {
        if let Some(&id) = self.open.get(&slot_key(gwid, lane)) {
            self.txns[id as usize].reads.push(ReadRec {
                addr,
                value,
                version,
            });
        } else {
            debug_assert!(false, "read delivered to a lane with no open attempt");
        }
    }

    /// Records a write by `txn` reaching memory, installing a new version.
    pub fn write_applied(&mut self, txn: u32, addr: u64, value: u64, cycle: u64) {
        if txn == NO_TXN {
            return;
        }
        let version = self.versions.len() as u32;
        let prev = self.version_of(addr);
        self.versions.push(VersionRec {
            addr,
            value,
            writer: txn,
            prev,
            cycle,
        });
        self.current.insert(addr, version);
        self.txns[txn as usize].writes.push(WriteRec {
            addr,
            value,
            version,
        });
    }

    /// Closes the open attempt of `(gwid, lane)` as committed, assigning the
    /// next commit-decision sequence number.
    pub fn commit(&mut self, gwid: u32, lane: u32, cycle: u64) {
        if let Some(id) = self.open.remove(&slot_key(gwid, lane)) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.txns[id as usize].outcome = TxnOutcome::Committed { seq, cycle };
        } else {
            debug_assert!(false, "commit for a lane with no open attempt");
        }
    }

    /// Closes the open attempt of `(gwid, lane)` as aborted.
    pub fn abort(&mut self, gwid: u32, lane: u32, cycle: u64) {
        if let Some(id) = self.open.remove(&slot_key(gwid, lane)) {
            self.txns[id as usize].outcome = TxnOutcome::Aborted { cycle };
        } else {
            debug_assert!(false, "abort for a lane with no open attempt");
        }
    }

    /// Records a plain (non-transactional) store as a committed singleton.
    pub fn singleton_write(
        &mut self,
        core: usize,
        gwid: u32,
        lane: u32,
        addr: u64,
        value: u64,
        cycle: u64,
    ) {
        let id = self.push_singleton(TxnKind::PlainStore, core, gwid, lane, cycle);
        self.write_applied(id, addr, value, cycle);
    }

    /// Records an atomic read-modify-write as a committed singleton: a read
    /// of the current version (the value the atomic observed) plus the new
    /// value if the atomic wrote one (a failed CAS reads but does not write).
    #[allow(clippy::too_many_arguments)]
    pub fn singleton_rmw(
        &mut self,
        core: usize,
        gwid: u32,
        lane: u32,
        addr: u64,
        observed: u64,
        wrote: Option<u64>,
        cycle: u64,
    ) {
        let version = self.version_of(addr);
        let id = self.push_singleton(TxnKind::Atomic, core, gwid, lane, cycle);
        self.txns[id as usize].reads.push(ReadRec {
            addr,
            value: observed,
            version,
        });
        if let Some(v) = wrote {
            self.write_applied(id, addr, v, cycle);
        }
    }

    fn push_singleton(
        &mut self,
        kind: TxnKind,
        core: usize,
        gwid: u32,
        lane: u32,
        cycle: u64,
    ) -> u32 {
        let id = self.txns.len() as u32;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.txns.push(TxnRecord {
            kind,
            core,
            gwid,
            lane,
            begin_cycle: cycle,
            outcome: TxnOutcome::Committed { seq, cycle },
            reads: Vec::new(),
            writes: Vec::new(),
        });
        id
    }

    /// Aggregate counts.
    pub fn stats(&self) -> HistoryStats {
        let mut s = HistoryStats::default();
        for t in &self.txns {
            match t.kind {
                TxnKind::Tx => {
                    s.attempts += 1;
                    match t.outcome {
                        TxnOutcome::Committed { .. } => s.committed += 1,
                        TxnOutcome::Aborted { .. } | TxnOutcome::Open => s.aborted += 1,
                    }
                }
                TxnKind::PlainStore | TxnKind::Atomic => s.non_tx += 1,
            }
            s.reads += t.reads.len() as u64;
        }
        s.versions = self.versions.len() as u64;
        s
    }
}

/// A cheaply clonable handle to an optional [`History`], mirroring the
/// [`crate::trace::Recorder`] pattern: when constructed with
/// [`HistoryRecorder::off`] every method is a no-op behind one branch.
#[derive(Debug, Clone, Default)]
pub struct HistoryRecorder {
    log: Option<Rc<RefCell<History>>>,
}

impl HistoryRecorder {
    /// A disabled recorder; all hooks are no-ops.
    pub fn off() -> Self {
        HistoryRecorder { log: None }
    }

    /// A recorder that captures into a fresh [`History`].
    pub fn recording() -> Self {
        HistoryRecorder {
            log: Some(Rc::new(RefCell::new(History::new()))),
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.log.is_some()
    }

    /// Extracts the recorded history, if this handle is the last one.
    /// Returns `None` for a disabled recorder or if other clones are alive.
    pub fn take(self) -> Option<History> {
        self.log
            .and_then(|rc| Rc::try_unwrap(rc).ok())
            .map(RefCell::into_inner)
    }

    /// See [`History::version_of`]. Returns [`INITIAL_VERSION`] when off.
    #[inline]
    pub fn version_of(&self, addr: u64) -> u32 {
        match &self.log {
            Some(l) => l.borrow().version_of(addr),
            None => INITIAL_VERSION,
        }
    }

    /// See [`History::current_txn`]. Returns [`NO_TXN`] when off or absent.
    #[inline]
    pub fn current_txn(&self, gwid: u32, lane: u32) -> u32 {
        match &self.log {
            Some(l) => l.borrow().current_txn(gwid, lane).unwrap_or(NO_TXN),
            None => NO_TXN,
        }
    }

    /// See [`History::begin`].
    #[inline]
    pub fn begin(&self, core: usize, gwid: u32, lane: u32, cycle: u64) {
        if let Some(l) = &self.log {
            l.borrow_mut().begin(core, gwid, lane, cycle);
        }
    }

    /// See [`History::read_observed`].
    #[inline]
    pub fn read_observed(&self, gwid: u32, lane: u32, addr: u64, value: u64, version: u32) {
        if let Some(l) = &self.log {
            l.borrow_mut()
                .read_observed(gwid, lane, addr, value, version);
        }
    }

    /// See [`History::write_applied`].
    #[inline]
    pub fn write_applied(&self, txn: u32, addr: u64, value: u64, cycle: u64) {
        if let Some(l) = &self.log {
            l.borrow_mut().write_applied(txn, addr, value, cycle);
        }
    }

    /// See [`History::commit`].
    #[inline]
    pub fn commit(&self, gwid: u32, lane: u32, cycle: u64) {
        if let Some(l) = &self.log {
            l.borrow_mut().commit(gwid, lane, cycle);
        }
    }

    /// See [`History::abort`].
    #[inline]
    pub fn abort(&self, gwid: u32, lane: u32, cycle: u64) {
        if let Some(l) = &self.log {
            l.borrow_mut().abort(gwid, lane, cycle);
        }
    }

    /// See [`History::singleton_write`].
    #[inline]
    pub fn singleton_write(
        &self,
        core: usize,
        gwid: u32,
        lane: u32,
        addr: u64,
        value: u64,
        cycle: u64,
    ) {
        if let Some(l) = &self.log {
            l.borrow_mut()
                .singleton_write(core, gwid, lane, addr, value, cycle);
        }
    }

    /// See [`History::singleton_rmw`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn singleton_rmw(
        &self,
        core: usize,
        gwid: u32,
        lane: u32,
        addr: u64,
        observed: u64,
        wrote: Option<u64>,
        cycle: u64,
    ) {
        if let Some(l) = &self.log {
            l.borrow_mut()
                .singleton_rmw(core, gwid, lane, addr, observed, wrote, cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_inert() {
        let r = HistoryRecorder::off();
        assert!(!r.is_on());
        r.begin(0, 1, 2, 10);
        r.read_observed(1, 2, 64, 7, INITIAL_VERSION);
        r.commit(1, 2, 20);
        assert_eq!(r.version_of(64), INITIAL_VERSION);
        assert_eq!(r.current_txn(1, 2), NO_TXN);
        assert!(r.take().is_none());
    }

    #[test]
    fn records_versioned_lifecycle() {
        let r = HistoryRecorder::recording();
        assert!(r.is_on());

        // Writer transaction installs version 0 of addr 64.
        r.begin(0, 1, 0, 5);
        let w = r.current_txn(1, 0);
        assert_ne!(w, NO_TXN);
        r.commit(1, 0, 9);
        r.write_applied(w, 64, 111, 12); // GETM-style late apply after commit

        // Reader observes that version.
        r.begin(0, 2, 3, 10);
        assert_eq!(r.version_of(64), 0);
        r.read_observed(2, 3, 64, 111, r.version_of(64));
        r.abort(2, 3, 15);

        // Non-tx traffic is recorded as committed singletons.
        r.singleton_write(1, 9, 1, 128, 5, 20);
        r.singleton_rmw(1, 9, 2, 64, 111, Some(112), 21);

        let h = r.take().expect("sole handle");
        let s = h.stats();
        assert_eq!(s.attempts, 2);
        assert_eq!(s.committed, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.non_tx, 2);
        assert_eq!(s.reads, 2); // tx read + atomic's implicit read
        assert_eq!(s.versions, 3);

        assert_eq!(h.versions[0].prev, INITIAL_VERSION);
        assert_eq!(h.versions[0].writer, w);
        assert_eq!(h.versions[2].addr, 64);
        assert_eq!(h.versions[2].prev, 0);
        let aborted = &h.txns[1];
        assert_eq!(aborted.reads[0].version, 0);
        assert!(matches!(aborted.outcome, TxnOutcome::Aborted { cycle: 15 }));

        // Commit-decision sequence numbers are dense and ordered.
        let seqs: Vec<u64> = h.txns.iter().filter_map(TxnRecord::commit_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn from_parts_round_trips_a_recorded_history() {
        let r = HistoryRecorder::recording();
        r.begin(0, 1, 0, 5);
        let w = r.current_txn(1, 0);
        r.commit(1, 0, 9);
        r.write_applied(w, 64, 111, 12);
        r.begin(0, 2, 3, 10);
        r.read_observed(2, 3, 64, 111, 0);
        r.abort(2, 3, 15);
        r.singleton_rmw(1, 9, 2, 64, 111, Some(112), 21);
        let h = r.take().expect("sole handle");
        let rebuilt = History::from_parts(h.txns.clone(), h.versions.clone()).expect("valid parts");
        assert_eq!(rebuilt.stats(), h.stats());
        assert_eq!(rebuilt.version_of(64), h.version_of(64));
        // Appending through the mutation API keeps working (next_seq is
        // derived, not reset).
        let mut rebuilt = rebuilt;
        rebuilt.singleton_write(0, 3, 0, 128, 9, 30);
        let seqs: Vec<u64> = rebuilt
            .txns
            .iter()
            .filter_map(TxnRecord::commit_seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        // A version whose writer never listed it.
        let txns = vec![TxnRecord {
            kind: TxnKind::Tx,
            core: 0,
            gwid: 0,
            lane: 0,
            begin_cycle: 0,
            outcome: TxnOutcome::Committed { seq: 0, cycle: 1 },
            reads: Vec::new(),
            writes: Vec::new(),
        }];
        let versions = vec![VersionRec {
            addr: 64,
            value: 1,
            writer: 0,
            prev: INITIAL_VERSION,
            cycle: 1,
        }];
        assert!(History::from_parts(txns.clone(), versions).is_err());
        // An out-of-range writer id.
        let versions = vec![VersionRec {
            addr: 64,
            value: 1,
            writer: 7,
            prev: INITIAL_VERSION,
            cycle: 1,
        }];
        assert!(History::from_parts(txns, versions).is_err());
    }

    #[test]
    fn clone_shares_the_log() {
        let r = HistoryRecorder::recording();
        let c = r.clone();
        c.begin(0, 4, 4, 1);
        c.commit(4, 4, 2);
        assert!(c.take().is_none(), "two handles alive");
        let h = r.take().expect("last handle");
        assert_eq!(h.stats().committed, 1);
    }
}
