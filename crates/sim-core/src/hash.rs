//! Stable, platform-independent hashing for content-addressed keys.
//!
//! The sweep harness caches simulation results on disk under a hash of
//! the full experiment cell (benchmark, system, scale, machine
//! configuration). `std::hash` makes no stability promises across Rust
//! releases or processes, so cache keys use this explicit FNV-1a
//! implementation instead: the same bytes hash to the same key on every
//! platform, today and in any future build.
//!
//! Collisions cost only a wrong cache hit, but 128 bits (two independent
//! FNV-1a streams) makes an accidental collision across a few thousand
//! experiment cells astronomically unlikely.

/// 64-bit FNV-1a over `bytes`, from `offset` (use [`FNV_OFFSET`] to start).
#[must_use]
pub fn fnv1a_64(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The standard FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// An incremental 128-bit stable hasher (two decorrelated FNV-1a streams).
#[derive(Debug, Clone)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        StableHasher {
            lo: FNV_OFFSET,
            // A distinct offset decorrelates the second stream.
            hi: FNV_OFFSET ^ 0x5bd1_e995_9d1b_87b5,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        self.lo = fnv1a_64(bytes, self.lo);
        for &b in bytes {
            // Same input, different mixing order, so the streams diverge.
            self.hi = self.hi.wrapping_mul(0x0000_0100_0000_01b3);
            self.hi ^= (b as u64).rotate_left(17);
        }
    }

    /// Feeds a string (length-prefixed so field boundaries can't alias).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern (NaN payloads included).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The 128-bit digest.
    #[must_use]
    pub fn finish128(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// The digest as a fixed-width 32-char lowercase hex string —
    /// filesystem-safe, so it is used directly as a cache file name.
    #[must_use]
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.finish128())
    }
}

/// One-call convenience: the 128-bit hex digest of a string.
#[must_use]
pub fn stable_hex(s: &str) -> String {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a_64(b"", FNV_OFFSET), FNV_OFFSET);
        assert_eq!(fnv1a_64(b"a", FNV_OFFSET), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn digest_is_stable() {
        // Pinned: if this changes, every on-disk cache key changes too.
        assert_eq!(stable_hex("GETM"), stable_hex("GETM"));
        assert_eq!(stable_hex("GETM").len(), 32);
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(stable_hex("HT-H|GETM"), stable_hex("HT-H|WarpTM"));
        assert_ne!(stable_hex("ab"), stable_hex("ba"));
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish128(), b.finish128());
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut h = StableHasher::new();
        h.write(b"hello");
        let d = h.finish128();
        assert_ne!((d >> 64) as u64, d as u64);
    }
}
