//! Cycle arithmetic.
//!
//! All timing in the simulator is expressed in core-clock cycles via the
//! [`Cycle`] newtype, which prevents accidental mixing of cycle counts with
//! other `u64` quantities (addresses, logical timestamps, ...).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in core-clock cycles.
///
/// `Cycle` is ordered and supports adding a `u64` delay:
///
/// ```
/// use sim_core::Cycle;
/// let t = Cycle(10) + 5;
/// assert_eq!(t, Cycle(15));
/// assert_eq!(t - Cycle(10), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero, the start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Saturating difference: cycles elapsed from `earlier` to `self`,
    /// clamped to zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Cycles elapsed between two points in time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle difference");
        self.0 - rhs.0
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cyc{}", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub() {
        let t = Cycle(100);
        assert_eq!(t + 30, Cycle(130));
        assert_eq!(Cycle(130) - t, 30);
        assert_eq!(t.since(Cycle(130)), 0);
        assert_eq!(Cycle(130).since(t), 30);
    }

    #[test]
    fn ordering_and_max() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(1).max(Cycle(2)), Cycle(2));
        assert_eq!(Cycle::ZERO, Cycle(0));
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn add_assign() {
        let mut t = Cycle(5);
        t += 7;
        assert_eq!(t, Cycle(12));
    }

    #[test]
    fn debug_display() {
        assert_eq!(format!("{:?}", Cycle(3)), "cyc3");
        assert_eq!(format!("{}", Cycle(3)), "3");
    }
}
