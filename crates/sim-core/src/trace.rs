//! Cycle-accurate event tracing.
//!
//! Every architectural model in the workspace can narrate what it is doing
//! as a stream of typed [`SimEvent`]s, each stamped with where and when it
//! happened ([`Stamp`]). Events flow through a [`Recorder`] handle into a
//! ring-buffered [`EventBus`]; the handle is a branch on an `Option` when
//! tracing is off, so instrumented hot paths cost nothing measurable in
//! normal runs (the event-constructing closure is never evaluated).
//!
//! Two exporters turn a captured bus into something a human can read:
//!
//! * [`export_chrome_trace`] — Chrome trace-event JSON, loadable in
//!   Perfetto or `chrome://tracing`, with one track per warp and one per
//!   memory partition.
//! * [`export_flame_summary`] — a plain-text, flamegraph-style (folded
//!   stack) cycle attribution plus event/abort-cause tallies.
//!
//! ```
//! use sim_core::trace::{Recorder, SimEvent, Stamp};
//!
//! let rec = Recorder::recording(1024);
//! rec.emit(|| (Stamp::warp(10, 0, 3), SimEvent::TxBegin));
//! assert_eq!(rec.bus().unwrap().borrow().len(), 1);
//!
//! let off = Recorder::off();
//! off.emit(|| unreachable!("disabled recorders never build events"));
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::rc::Rc;

/// Why a transaction (or a single lane's access) was aborted.
///
/// This is the abort taxonomy the paper's Table IV reasons about, extended
/// with the engine-level causes the protocols add on top of the
/// validation-unit checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortCause {
    /// A transactional load hit a granule with a newer write timestamp
    /// (write-after-read hazard detected eagerly).
    War,
    /// An access lost the lock check against a concurrent owner
    /// (write-after-write / read-after-write conflict).
    LockConflict,
    /// The stall buffer had no room to park the request, so it aborted
    /// instead of queueing.
    StallFull,
    /// The losing timestamp came from the approximate (Bloom / max-register)
    /// metadata rather than the precise table.
    Approx,
    /// Two lanes of the same warp conflicted with each other at issue.
    IntraWarp,
    /// Value-based or hazard validation failed at commit (lazy systems).
    Validation,
    /// A pre-validation broadcast doomed the transaction before commit
    /// (EAPG early abort), or it was already marked doomed on reply.
    EarlyAbort,
}

impl AbortCause {
    /// Every cause, in display order.
    pub const ALL: [AbortCause; 7] = [
        AbortCause::War,
        AbortCause::LockConflict,
        AbortCause::StallFull,
        AbortCause::Approx,
        AbortCause::IntraWarp,
        AbortCause::Validation,
        AbortCause::EarlyAbort,
    ];

    /// A short fixed label for tables and trace names.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::War => "war",
            AbortCause::LockConflict => "lock-conflict",
            AbortCause::StallFull => "stall-full",
            AbortCause::Approx => "approx",
            AbortCause::IntraWarp => "intra-warp",
            AbortCause::Validation => "validation",
            AbortCause::EarlyAbort => "early-abort",
        }
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where and when an event happened.
///
/// Not every coordinate applies to every event (a crossbar flit has no
/// lane); inapplicable fields hold [`Stamp::NONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Simulated cycle.
    pub cycle: u64,
    /// SIMT core index, or [`Stamp::NONE`].
    pub core: u32,
    /// Global warp id, or [`Stamp::NONE`].
    pub warp: u32,
    /// Lane within the warp, or [`Stamp::NONE`].
    pub lane: u32,
    /// Memory partition index, or [`Stamp::NONE`].
    pub partition: u32,
}

impl Stamp {
    /// Marker for a coordinate that does not apply to an event.
    pub const NONE: u32 = u32::MAX;

    /// A stamp locating an event on a warp of a core.
    pub fn warp(cycle: u64, core: u32, warp: u32) -> Self {
        Stamp {
            cycle,
            core,
            warp,
            lane: Stamp::NONE,
            partition: Stamp::NONE,
        }
    }

    /// A stamp carrying only the cycle — for GPU-wide events (watchdog
    /// stage changes) that belong to no core, warp, or partition.
    pub fn global(cycle: u64) -> Self {
        Stamp {
            cycle,
            core: Stamp::NONE,
            warp: Stamp::NONE,
            lane: Stamp::NONE,
            partition: Stamp::NONE,
        }
    }

    /// A stamp locating an event on a memory partition.
    pub fn partition(cycle: u64, partition: u32) -> Self {
        Stamp {
            cycle,
            core: Stamp::NONE,
            warp: Stamp::NONE,
            lane: Stamp::NONE,
            partition,
        }
    }

    /// Narrows this stamp to one lane.
    pub fn with_lane(mut self, lane: u32) -> Self {
        self.lane = lane;
        self
    }

    /// Adds the partition coordinate (e.g. a warp event served by one).
    pub fn with_partition(mut self, partition: u32) -> Self {
        self.partition = partition;
        self
    }

    /// Adds the warp coordinate to a partition-side stamp.
    pub fn with_warp(mut self, core: u32, warp: u32) -> Self {
        self.core = core;
        self.warp = warp;
        self
    }
}

/// A typed simulator event. See the module docs for the exporters that
/// consume these.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A warp entered a transactional region.
    TxBegin,
    /// A warp's transactional region committed (all surviving lanes).
    TxCommit,
    /// Lanes of a warp aborted for `cause`; `lanes` counts how many.
    TxAbort {
        /// Why the abort happened.
        cause: AbortCause,
        /// Number of lanes aborted by this event.
        lanes: u32,
    },
    /// A request was parked in a validation-unit stall buffer.
    StallPark,
    /// A parked request was woken by a release.
    StallWake,
    /// A granule's metadata lock was acquired (reservation placed).
    LockAcquire,
    /// A committing warp released `granules` metadata locks.
    LockRelease {
        /// Number of granules released.
        granules: u32,
    },
    /// A packet won a crossbar port.
    Flit {
        /// Payload size in bytes.
        bytes: u64,
        /// Traffic accounting category (e.g. `"tm-access"`).
        category: &'static str,
    },
    /// A memory access was serviced by the LLC or DRAM.
    MemAccess {
        /// True if the access missed the LLC and went to DRAM.
        dram: bool,
    },
    /// A warp went to sleep for `delay` cycles of randomized backoff.
    BackoffSleep {
        /// Cycles until the warp becomes schedulable again.
        delay: u64,
    },
    /// A gauge sample (queue depth, occupancy) on a named probe.
    Probe {
        /// Probe name (e.g. `"cu-backlog"`).
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// The forward-progress watchdog changed degradation stage (GPU-wide;
    /// the stamp carries only the cycle).
    Watchdog {
        /// The stage the machine entered.
        stage: WatchdogStage,
    },
}

/// Degradation stages the forward-progress watchdog steps through when a
/// run stops committing (see `gputm`'s engine watchdog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WatchdogStage {
    /// Backoff windows were widened for every warp (first escalation).
    Escalated,
    /// Serialization fallback: one starving warp gets priority, the rest
    /// are throttled (the software analogue of serial-irrevocable HTM).
    Serialized,
    /// A priority commit landed and the machine stepped back toward
    /// normal concurrent execution.
    Recovered,
}

impl WatchdogStage {
    /// A short fixed label for trace names and tallies.
    pub fn label(self) -> &'static str {
        match self {
            WatchdogStage::Escalated => "escalated",
            WatchdogStage::Serialized => "serialized",
            WatchdogStage::Recovered => "recovered",
        }
    }
}

impl fmt::Display for WatchdogStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Anything that can absorb a stream of stamped events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, stamp: Stamp, event: SimEvent);
}

/// A bounded ring buffer of stamped events.
///
/// When the buffer is full the *oldest* events are dropped (and counted),
/// so a capture always holds the tail of the run — usually the interesting
/// part when diagnosing where time went.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBus {
    capacity: usize,
    events: VecDeque<(Stamp, SimEvent)>,
    dropped: u64,
}

impl EventBus {
    /// A bus holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event bus needs room for at least one event");
        EventBus {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates buffered events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Stamp, SimEvent)> + '_ {
        self.events.iter()
    }

    /// Serializes the buffered events as deterministic text, one event per
    /// line — the canonical byte representation golden tests compare.
    pub fn serialize_text(&self) -> String {
        let mut out = String::new();
        for (s, e) in &self.events {
            let coord = |v: u32| -> String {
                if v == Stamp::NONE {
                    "-".to_string()
                } else {
                    v.to_string()
                }
            };
            out.push_str(&format!(
                "{} c{} w{} l{} p{} {:?}\n",
                s.cycle,
                coord(s.core),
                coord(s.warp),
                coord(s.lane),
                coord(s.partition),
                e
            ));
        }
        out
    }
}

impl TraceSink for EventBus {
    fn record(&mut self, stamp: Stamp, event: SimEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((stamp, event));
    }
}

/// The gate every instrumented hot path branches on.
///
/// A recorder is either off (the default — `emit` is a branch on a `None`
/// and the closure is never evaluated) or holds a shared handle to an
/// [`EventBus`]. Cloning is cheap and clones share the same bus, so one
/// recorder can be threaded through cores, partitions and crossbars.
#[derive(Clone, Default)]
pub struct Recorder {
    bus: Option<Rc<RefCell<EventBus>>>,
}

impl Recorder {
    /// A disabled recorder: `emit` does nothing.
    pub fn off() -> Self {
        Recorder { bus: None }
    }

    /// A recorder writing into a fresh bus of the given capacity.
    pub fn recording(capacity: usize) -> Self {
        Recorder {
            bus: Some(Rc::new(RefCell::new(EventBus::new(capacity)))),
        }
    }

    /// A recorder sharing an existing bus.
    pub fn to_bus(bus: Rc<RefCell<EventBus>>) -> Self {
        Recorder { bus: Some(bus) }
    }

    /// True when events are being captured.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.bus.is_some()
    }

    /// Records the event built by `f` — but only when tracing is on. The
    /// closure is never evaluated on the disabled path, which is what keeps
    /// instrumentation free in normal runs.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> (Stamp, SimEvent)) {
        if let Some(bus) = &self.bus {
            let (stamp, event) = f();
            bus.borrow_mut().record(stamp, event);
        }
    }

    /// The shared bus, if recording.
    pub fn bus(&self) -> Option<Rc<RefCell<EventBus>>> {
        self.bus.clone()
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Recorder({})",
            if self.is_on() { "recording" } else { "off" }
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Synthetic process id for a core's warp tracks (pid 0 is reserved).
fn core_pid(core: u32) -> u64 {
    1 + core as u64
}

/// Synthetic process id for a memory partition's track.
fn partition_pid(partition: u32) -> u64 {
    1000 + partition as u64
}

/// Synthetic process id for the GPU-wide watchdog track.
const WATCHDOG_PID: u64 = 999;

/// Writes a captured bus as Chrome trace-event JSON.
///
/// The layout Perfetto shows: one process per SIMT core with one thread
/// (track) per warp carrying the transaction begin/commit/abort spans and
/// backoff sleeps, and one process per memory partition whose tracks carry
/// stall-buffer parks/wakes, lock traffic, flits and memory accesses, plus
/// counter tracks for every [`SimEvent::Probe`] gauge. Timestamps are raw
/// cycles (the `displayTimeUnit` is nominal).
pub fn export_chrome_trace(bus: &EventBus, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    let mut named: BTreeMap<(u64, Option<u64>), String> = BTreeMap::new();
    let mut lines: Vec<String> = Vec::new();
    // In-flight transaction spans per (core, warp): Perfetto wants balanced
    // B/E pairs per tid; an abort closes the span just like a commit.
    let mut open_tx: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for (s, e) in bus.iter() {
        let ts = s.cycle;
        match e {
            SimEvent::TxBegin => {
                let (pid, tid) = (core_pid(s.core), s.warp as u64);
                named.insert((pid, None), format!("core {}", s.core));
                named.insert((pid, Some(tid)), format!("warp {}", s.warp));
                open_tx.insert((s.core, s.warp), ts);
                lines.push(format!(
                    "{{\"name\":\"tx\",\"cat\":\"tm\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}}}"
                ));
            }
            SimEvent::TxCommit | SimEvent::TxAbort { .. } => {
                let (pid, tid) = (core_pid(s.core), s.warp as u64);
                named.insert((pid, None), format!("core {}", s.core));
                named.insert((pid, Some(tid)), format!("warp {}", s.warp));
                if open_tx.remove(&(s.core, s.warp)).is_some() {
                    lines.push(format!(
                        "{{\"ph\":\"E\",\"cat\":\"tm\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}}}"
                    ));
                }
                if let SimEvent::TxAbort { cause, lanes } = e {
                    lines.push(format!(
                        "{{\"name\":\"abort:{}\",\"cat\":\"tm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"lanes\":{lanes}}}}}",
                        cause.label()
                    ));
                }
            }
            SimEvent::BackoffSleep { delay } => {
                let (pid, tid) = (core_pid(s.core), s.warp as u64);
                named.insert((pid, None), format!("core {}", s.core));
                named.insert((pid, Some(tid)), format!("warp {}", s.warp));
                lines.push(format!(
                    "{{\"name\":\"backoff\",\"cat\":\"simt\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{delay},\"pid\":{pid},\"tid\":{tid}}}"
                ));
            }
            SimEvent::StallPark
            | SimEvent::StallWake
            | SimEvent::LockAcquire
            | SimEvent::LockRelease { .. }
            | SimEvent::MemAccess { .. }
            | SimEvent::Flit { .. } => {
                let pid = partition_pid(s.partition);
                named.insert((pid, None), format!("partition {}", s.partition));
                let (name, cat, args) = match e {
                    SimEvent::StallPark => ("stall-park", "vu", String::new()),
                    SimEvent::StallWake => ("stall-wake", "vu", String::new()),
                    SimEvent::LockAcquire => ("lock-acquire", "vu", String::new()),
                    SimEvent::LockRelease { granules } => {
                        ("lock-release", "vu", format!("\"granules\":{granules}"))
                    }
                    SimEvent::MemAccess { dram } => {
                        (if *dram { "dram" } else { "llc" }, "mem", String::new())
                    }
                    SimEvent::Flit { bytes, category } => (
                        "flit",
                        "xbar",
                        format!(
                            "\"bytes\":{bytes},\"category\":\"{}\"",
                            json_escape(category)
                        ),
                    ),
                    _ => unreachable!(),
                };
                let args = if args.is_empty() {
                    String::new()
                } else {
                    format!(",\"args\":{{{args}}}")
                };
                lines.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":0{args}}}"
                ));
            }
            SimEvent::Watchdog { stage } => {
                let pid = WATCHDOG_PID;
                named.insert((pid, None), "watchdog".to_string());
                lines.push(format!(
                    "{{\"name\":\"watchdog:{}\",\"cat\":\"wd\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\"pid\":{pid},\"tid\":0}}",
                    stage.label()
                ));
            }
            SimEvent::Probe { name, value } => {
                let pid = if s.partition != Stamp::NONE {
                    named.insert(
                        (partition_pid(s.partition), None),
                        format!("partition {}", s.partition),
                    );
                    partition_pid(s.partition)
                } else {
                    named.insert((core_pid(s.core), None), format!("core {}", s.core));
                    core_pid(s.core)
                };
                lines.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"probe\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"args\":{{\"value\":{value}}}}}",
                    json_escape(name)
                ));
            }
        }
    }
    // Metadata first so viewers label tracks before data arrives.
    for ((pid, tid), name) in &named {
        let line = match tid {
            None => format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
            Some(tid) => format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
        };
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        write!(w, "{line}")?;
    }
    for line in &lines {
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        write!(w, "{line}")?;
    }
    writeln!(w)?;
    writeln!(w, "]}}")?;
    Ok(())
}

/// Writes a plain-text, flamegraph-style cycle attribution of a captured
/// bus: folded-stack lines (`core;warp;state cycles`) a flamegraph tool can
/// fold directly, followed by event and abort-cause tallies.
pub fn export_flame_summary(bus: &EventBus, w: &mut impl Write) -> io::Result<()> {
    // Attribute tx cycles per warp from begin->commit/abort span pairs.
    let mut open: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut folded: BTreeMap<(u32, u32, &'static str), u64> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut causes: BTreeMap<AbortCause, u64> = BTreeMap::new();
    for (s, e) in bus.iter() {
        let kind = match e {
            SimEvent::TxBegin => "tx-begin",
            SimEvent::TxCommit => "tx-commit",
            SimEvent::TxAbort { .. } => "tx-abort",
            SimEvent::StallPark => "stall-park",
            SimEvent::StallWake => "stall-wake",
            SimEvent::LockAcquire => "lock-acquire",
            SimEvent::LockRelease { .. } => "lock-release",
            SimEvent::Flit { .. } => "flit",
            SimEvent::MemAccess { dram: true } => "mem-dram",
            SimEvent::MemAccess { dram: false } => "mem-llc",
            SimEvent::BackoffSleep { .. } => "backoff-sleep",
            SimEvent::Probe { .. } => "probe",
            SimEvent::Watchdog { .. } => "watchdog",
        };
        *counts.entry(kind.to_string()).or_insert(0) += 1;
        match e {
            SimEvent::TxBegin => {
                open.insert((s.core, s.warp), s.cycle);
            }
            SimEvent::TxCommit => {
                if let Some(t0) = open.remove(&(s.core, s.warp)) {
                    *folded.entry((s.core, s.warp, "tx-committed")).or_insert(0) += s.cycle - t0;
                }
            }
            SimEvent::TxAbort { cause, .. } => {
                *causes.entry(*cause).or_insert(0) += 1;
                if let Some(t0) = open.remove(&(s.core, s.warp)) {
                    *folded.entry((s.core, s.warp, "tx-aborted")).or_insert(0) += s.cycle - t0;
                }
            }
            SimEvent::BackoffSleep { delay } => {
                *folded.entry((s.core, s.warp, "backoff")).or_insert(0) += delay;
            }
            _ => {}
        }
    }
    writeln!(w, "# folded stacks (core;warp;state cycles)")?;
    for ((core, warp, state), cycles) in &folded {
        writeln!(w, "core{core};warp{warp};{state} {cycles}")?;
    }
    writeln!(w)?;
    writeln!(w, "# event counts")?;
    for (kind, n) in &counts {
        writeln!(w, "{kind:<14} {n}")?;
    }
    if !causes.is_empty() {
        writeln!(w)?;
        writeln!(w, "# abort causes")?;
        for (cause, n) in &causes {
            writeln!(w, "{:<14} {n}", cause.label())?;
        }
    }
    if bus.dropped() > 0 {
        writeln!(w)?;
        writeln!(
            w,
            "# NOTE: ring full, oldest {} events dropped",
            bus.dropped()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_never_evaluates_the_closure() {
        let rec = Recorder::off();
        rec.emit(|| panic!("must not run"));
        assert!(!rec.is_on());
        assert!(rec.bus().is_none());
    }

    #[test]
    fn recording_captures_in_order_and_clones_share_the_bus() {
        let rec = Recorder::recording(16);
        let clone = rec.clone();
        rec.emit(|| (Stamp::warp(1, 0, 2), SimEvent::TxBegin));
        clone.emit(|| (Stamp::warp(5, 0, 2), SimEvent::TxCommit));
        let bus = rec.bus().unwrap();
        let bus = bus.borrow();
        assert_eq!(bus.len(), 2);
        let cycles: Vec<u64> = bus.iter().map(|(s, _)| s.cycle).collect();
        assert_eq!(cycles, vec![1, 5]);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut bus = EventBus::new(2);
        bus.record(Stamp::warp(1, 0, 0), SimEvent::TxBegin);
        bus.record(Stamp::warp(2, 0, 0), SimEvent::TxCommit);
        bus.record(Stamp::warp(3, 0, 0), SimEvent::TxBegin);
        assert_eq!(bus.len(), 2);
        assert_eq!(bus.dropped(), 1);
        assert_eq!(bus.iter().next().unwrap().0.cycle, 2);
    }

    #[test]
    fn serialize_text_is_deterministic_and_marks_missing_coords() {
        let mut bus = EventBus::new(8);
        bus.record(Stamp::partition(7, 3), SimEvent::StallPark);
        let text = bus.serialize_text();
        assert_eq!(text, "7 c- w- l- p3 StallPark\n");
    }

    #[test]
    fn chrome_export_is_valid_json_with_tracks() {
        let mut bus = EventBus::new(64);
        bus.record(Stamp::warp(10, 1, 4), SimEvent::TxBegin);
        bus.record(
            Stamp::warp(20, 1, 4),
            SimEvent::TxAbort {
                cause: AbortCause::War,
                lanes: 3,
            },
        );
        bus.record(
            Stamp::partition(15, 2),
            SimEvent::Flit {
                bytes: 64,
                category: "tm-access",
            },
        );
        bus.record(
            Stamp::partition(16, 2),
            SimEvent::Probe {
                name: "cu-backlog",
                value: 3.5,
            },
        );
        let mut out = Vec::new();
        export_chrome_trace(&bus, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"name\":\"warp 4\""));
        assert!(text.contains("\"name\":\"partition 2\""));
        assert!(text.contains("abort:war"));
        assert!(text.contains("\"ph\":\"C\""));
        // Balanced braces / brackets are a cheap structural sanity check;
        // the CI smoke test runs the output through jq for the real one.
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced JSON objects"
        );
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn watchdog_events_export_to_their_own_track() {
        let mut bus = EventBus::new(8);
        bus.record(
            Stamp::global(500),
            SimEvent::Watchdog {
                stage: WatchdogStage::Escalated,
            },
        );
        bus.record(
            Stamp::global(900),
            SimEvent::Watchdog {
                stage: WatchdogStage::Serialized,
            },
        );
        let mut out = Vec::new();
        export_chrome_trace(&bus, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("watchdog:escalated"), "{text}");
        assert!(text.contains("watchdog:serialized"), "{text}");
        assert!(text.contains("\"name\":\"watchdog\""), "{text}");

        let mut out = Vec::new();
        export_flame_summary(&bus, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("watchdog"), "{text}");
    }

    #[test]
    fn flame_summary_attributes_cycles() {
        let mut bus = EventBus::new(64);
        bus.record(Stamp::warp(100, 0, 1), SimEvent::TxBegin);
        bus.record(Stamp::warp(180, 0, 1), SimEvent::TxCommit);
        bus.record(Stamp::warp(200, 0, 1), SimEvent::TxBegin);
        bus.record(
            Stamp::warp(250, 0, 1),
            SimEvent::TxAbort {
                cause: AbortCause::LockConflict,
                lanes: 1,
            },
        );
        bus.record(Stamp::warp(251, 0, 1), SimEvent::BackoffSleep { delay: 32 });
        let mut out = Vec::new();
        export_flame_summary(&bus, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("core0;warp1;tx-committed 80"));
        assert!(text.contains("core0;warp1;tx-aborted 50"));
        assert!(text.contains("core0;warp1;backoff 32"));
        assert!(text.contains("lock-conflict  1"));
    }
}
