//! Deterministic random number generation.
//!
//! Every source of randomness in the simulator — workload address streams,
//! H3 hash matrices, exponential backoff — draws from a [`DetRng`] that is
//! seeded explicitly, so a given configuration always produces the same
//! cycle-exact execution.

/// A small, fast, explicitly seeded RNG (xoshiro256++, seeded via
/// SplitMix64 — implemented inline so the simulator has zero external
/// dependencies).
///
/// `DetRng` derives independent streams from a root seed with
/// [`DetRng::fork`], so that adding a consumer of randomness in one
/// component does not perturb the stream seen by another.
///
/// ```
/// use sim_core::DetRng;
/// let mut a = DetRng::seeded(42);
/// let mut b = DetRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
    seed: u64,
}

/// One SplitMix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // Expand the seed into the 256-bit xoshiro state with SplitMix64,
        // the expansion xoshiro's authors recommend.
        let mut x = seed;
        DetRng {
            state: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
            seed,
        }
    }

    /// Derives an independent stream labelled by `stream`.
    ///
    /// Forks are a function of the *creation seed* and the label only — the
    /// current position of `self`'s stream does not matter — so adding a
    /// consumer of randomness in one component never perturbs the stream
    /// seen by another. Forking with different labels yields decorrelated
    /// sequences; the same label twice yields identical sequences.
    pub fn fork(&self, stream: u64) -> Self {
        // SplitMix64-style mixing of the label into a fresh seed keeps the
        // derived streams statistically independent of each other.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        DetRng::seeded(z ^ (z >> 31))
    }

    /// The seed this RNG was created from (forks derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next uniformly distributed `u64` (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next uniformly distributed `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Reject draws from the incomplete top interval so every residue
        // is equally likely.
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound).wrapping_add(1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform draw in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::seeded(7);
        let mut b = DetRng::seeded(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_reproducible_and_distinct() {
        let root = DetRng::seeded(99);
        let mut f1 = root.fork(0);
        let mut f1b = root.fork(0);
        let mut f2 = root.fork(1);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn fork_independent_of_stream_position() {
        let mut root = DetRng::seeded(99);
        let fork_before = root.fork(3);
        root.next_u64();
        let fork_after = root.fork(3);
        let mut a = fork_before;
        let mut b = fork_after;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = DetRng::seeded(5);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            let w = r.range(5, 8);
            assert!((5..8).contains(&w));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seeded(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
