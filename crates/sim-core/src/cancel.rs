//! Cooperative cancellation for long-running simulations.
//!
//! A simulation cell can run for hundreds of millions of cycles, and Rust
//! threads cannot be killed from outside. [`CancelToken`] is the
//! cooperative alternative: the sweep executor (or any external watchdog)
//! holds one clone and raises it; the engine polls its own clone on a
//! coarse cycle mask and bails out with a typed
//! [`SimError::Interrupted`](crate::SimError::Interrupted) — leaving the
//! process, the result cache, and every other in-flight cell intact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag.
///
/// Cheap to clone (one `Arc`), cheap to poll (one relaxed atomic load —
/// the engine checks it once every few thousand cycles, so even that is
/// amortized to nothing). Raising is sticky: there is no un-cancel.
///
/// ```
/// use sim_core::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-raised token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the token. Every clone observes the cancellation; raising
    /// an already-raised token is a no-op.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether any clone of this token has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let seen = token.clone();
        let h = std::thread::spawn(move || {
            while !seen.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(h.join().unwrap());
    }
}
