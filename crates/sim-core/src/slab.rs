//! A generation-checked slab for in-flight request contexts.
//!
//! The engine keys every in-flight message context (pending memory
//! accesses, commit attempts) by an opaque `u64` token that travels inside
//! the message and routes the reply back to its context. A `HashMap<u64, T>`
//! works, but hashes on every hot-path lookup and allocates as it grows;
//! the slab replaces it with a dense `Vec` indexed by the token's low bits,
//! which makes insert/lookup/remove a bounds-checked array access.
//!
//! Tokens are `(generation << 32) | index`. The generation starts at 1 (so
//! a token is never zero — zero stays available as a sentinel) and is
//! bumped every time a slot is vacated, which makes stale tokens — a reply
//! arriving after its context was removed — detectably invalid instead of
//! silently aliasing a recycled slot.
//!
//! Allocation order is deterministic: freed slots are reused LIFO, so a
//! run's token sequence is a pure function of its insert/remove sequence.
//! Nothing in the simulator may *order* work by token value (replies are
//! routed by exact-match lookup only); the engine's A/B equality tests pin
//! that down.

/// A slab of `T` keyed by generation-checked `u64` tokens.
#[derive(Debug)]
pub struct TokenSlab<T> {
    slots: Vec<Slot<T>>,
    /// Vacant slot indices, reused LIFO.
    free: Vec<u32>,
    len: usize,
}

#[derive(Debug)]
struct Slot<T> {
    /// Generation of the *current or next* occupancy; bumped on removal.
    gen: u32,
    val: Option<T>,
}

impl<T> Default for TokenSlab<T> {
    fn default() -> Self {
        TokenSlab::new()
    }
}

impl<T> TokenSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        TokenSlab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab has no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `val`, returning its token.
    ///
    /// # Panics
    ///
    /// Panics if the slab exceeds `u32::MAX` slots (the engine keeps at
    /// most a few thousand contexts in flight).
    pub fn insert(&mut self, val: T) -> u64 {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            return compose(slot.gen, idx);
        }
        let idx = u32::try_from(self.slots.len()).expect("slab exceeded u32::MAX slots");
        self.slots.push(Slot {
            gen: 1,
            val: Some(val),
        });
        compose(1, idx)
    }

    /// The entry behind `token`, if it is still live.
    pub fn get(&self, token: u64) -> Option<&T> {
        let (gen, idx) = decompose(token);
        let slot = self.slots.get(idx)?;
        if slot.gen != gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Mutable access to the entry behind `token`, if it is still live.
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let (gen, idx) = decompose(token);
        let slot = self.slots.get_mut(idx)?;
        if slot.gen != gen {
            return None;
        }
        slot.val.as_mut()
    }

    /// Removes and returns the entry behind `token`. The slot's generation
    /// is bumped, so the token (and any copy of it still in flight) is dead
    /// from here on.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let (gen, idx) = decompose(token);
        let slot = self.slots.get_mut(idx)?;
        if slot.gen != gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1).max(1);
        self.free.push(idx as u32);
        self.len -= 1;
        Some(val)
    }
}

#[inline]
fn compose(gen: u32, idx: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(idx)
}

#[inline]
fn decompose(token: u64) -> (u32, usize) {
    ((token >> 32) as u32, (token & 0xFFFF_FFFF) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_nonzero_and_roundtrip() {
        let mut s = TokenSlab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_tokens_do_not_alias_recycled_slots() {
        let mut s = TokenSlab::new();
        let a = s.insert(1u32);
        assert_eq!(s.remove(a), Some(1));
        let b = s.insert(2u32);
        // Same slot, new generation: the old token is dead.
        assert_eq!(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn free_slots_are_reused_lifo_deterministically() {
        let mut s = TokenSlab::new();
        let toks: Vec<u64> = (0..4).map(|i| s.insert(i)).collect();
        s.remove(toks[1]);
        s.remove(toks[3]);
        // LIFO: slot 3 first, then slot 1; no new slots grown.
        let x = s.insert(10);
        let y = s.insert(11);
        assert_eq!(x & 0xFFFF_FFFF, 3);
        assert_eq!(y & 0xFFFF_FFFF, 1);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn double_remove_is_none_and_len_is_stable() {
        let mut s = TokenSlab::new();
        let a = s.insert(());
        assert_eq!(s.remove(a), Some(()));
        assert_eq!(s.remove(a), None);
        assert!(s.is_empty());
    }
}
