//! A timing-event wheel.
//!
//! Components that model latency (crossbar traversal, DRAM access, commit
//! unit processing) schedule payloads for a future [`Cycle`] and drain the
//! ones that have become due each tick. Events scheduled for the same cycle
//! are delivered in insertion order, which keeps the whole simulation
//! deterministic.

use crate::Cycle;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One pending event: delivery time plus a tiebreaking sequence number.
struct Entry<T> {
    due: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A deterministic min-heap of future events.
///
/// ```
/// use sim_core::{Cycle, EventWheel};
///
/// let mut wheel = EventWheel::new();
/// wheel.schedule(Cycle(3), "late");
/// wheel.schedule(Cycle(1), "early");
/// wheel.schedule(Cycle(1), "early2");
/// assert_eq!(wheel.pop_due(Cycle(2)), Some("early"));
/// assert_eq!(wheel.pop_due(Cycle(2)), Some("early2"));
/// assert_eq!(wheel.pop_due(Cycle(2)), None);
/// assert_eq!(wheel.len(), 1);
/// ```
pub struct EventWheel<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        EventWheel {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at cycle `due`.
    pub fn schedule(&mut self, due: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { due, seq, payload }));
    }

    /// Removes and returns the next event due at or before `now`, if any.
    ///
    /// Call in a loop to drain everything that is due this cycle.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.due <= now) {
            Some(self.heap.pop().expect("peeked entry").0.payload)
        } else {
            None
        }
    }

    /// The delivery time of the earliest pending event.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for EventWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventWheel")
            .field("pending", &self.heap.len())
            .field("next_due", &self.next_due())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut w = EventWheel::new();
        w.schedule(Cycle(10), 'c');
        w.schedule(Cycle(5), 'a');
        w.schedule(Cycle(7), 'b');
        assert_eq!(w.next_due(), Some(Cycle(5)));
        assert_eq!(w.pop_due(Cycle(100)), Some('a'));
        assert_eq!(w.pop_due(Cycle(100)), Some('b'));
        assert_eq!(w.pop_due(Cycle(100)), Some('c'));
        assert!(w.is_empty());
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut w = EventWheel::new();
        for i in 0..100 {
            w.schedule(Cycle(1), i);
        }
        for i in 0..100 {
            assert_eq!(w.pop_due(Cycle(1)), Some(i));
        }
    }

    #[test]
    fn not_due_yet_stays() {
        let mut w = EventWheel::new();
        w.schedule(Cycle(5), ());
        assert_eq!(w.pop_due(Cycle(4)), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(Cycle(5)), Some(()));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut w = EventWheel::new();
        w.schedule(Cycle(2), 1);
        assert_eq!(w.pop_due(Cycle(2)), Some(1));
        w.schedule(Cycle(2), 2); // same due time after pops
        w.schedule(Cycle(1), 3); // earlier, still deliverable at 2
        assert_eq!(w.pop_due(Cycle(2)), Some(3));
        assert_eq!(w.pop_due(Cycle(2)), Some(2));
    }
}
