//! Temporal conflict detection (TCD): silent commits for read-only
//! transactions.
//!
//! WarpTM keeps a table at the LLC recording the physical clock cycle of
//! the last committed store to each location. Every transactional load
//! consults it; if a read-only transaction observed only locations whose
//! last write predates the transaction's start, the values it read cannot
//! have changed since, so it may commit silently — skipping value-based
//! validation entirely.

use gpu_mem::Granule;
use sim_core::Cycle;
use std::collections::HashMap;

/// The per-partition last-write timestamp table.
///
/// The hardware structure is a bounded buffer of recent writes backed by a
/// conservative overflow bound; we model it as an exact map plus a floor
/// timestamp that stands in for evicted entries (reads of untracked
/// granules conservatively report the floor).
#[derive(Debug, Clone, Default)]
pub struct TcdTable {
    last_write: HashMap<u64, Cycle>,
    /// Conservative bound for granules not individually tracked.
    floor: Cycle,
    capacity: usize,
}

impl TcdTable {
    /// Creates a table that tracks up to `capacity` granules exactly; older
    /// entries fold into the conservative floor.
    pub fn new(capacity: usize) -> Self {
        TcdTable {
            last_write: HashMap::new(),
            floor: Cycle::ZERO,
            capacity: capacity.max(1),
        }
    }

    /// Records a committed store to `granule` at `now`.
    pub fn note_write(&mut self, granule: Granule, now: Cycle) {
        if self.last_write.len() >= self.capacity && !self.last_write.contains_key(&granule.raw()) {
            // Evict the oldest entry into the floor.
            if let Some((&victim, &ts)) = self.last_write.iter().min_by_key(|(_, &ts)| ts) {
                self.floor = self.floor.max(ts);
                self.last_write.remove(&victim);
            }
        }
        let e = self.last_write.entry(granule.raw()).or_insert(Cycle::ZERO);
        *e = (*e).max(now);
    }

    /// The last-write time of `granule`, conservatively overestimated for
    /// granules that fell out of the exact table.
    pub fn last_write(&self, granule: Granule) -> Cycle {
        self.last_write
            .get(&granule.raw())
            .copied()
            .unwrap_or(Cycle::ZERO)
            .max(self.floor)
    }

    /// Whether a read-only transaction that started at `tx_start` and read
    /// `granules` may commit silently.
    pub fn silent_commit_ok(&self, tx_start: Cycle, granules: &[Granule]) -> bool {
        granules.iter().all(|&g| self.last_write(g) < tx_start)
    }

    /// Exact entries currently tracked.
    pub fn tracked(&self) -> usize {
        self.last_write.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_location_is_clean() {
        let t = TcdTable::new(16);
        assert_eq!(t.last_write(Granule(5)), Cycle(0));
        assert!(t.silent_commit_ok(Cycle(1), &[Granule(5)]));
    }

    #[test]
    fn write_after_tx_start_blocks_silent_commit() {
        let mut t = TcdTable::new(16);
        t.note_write(Granule(5), Cycle(100));
        assert!(t.silent_commit_ok(Cycle(101), &[Granule(5)]));
        assert!(!t.silent_commit_ok(Cycle(100), &[Granule(5)]));
        assert!(!t.silent_commit_ok(Cycle(50), &[Granule(5)]));
    }

    #[test]
    fn mixed_granules_all_must_be_clean() {
        let mut t = TcdTable::new(16);
        t.note_write(Granule(1), Cycle(10));
        t.note_write(Granule(2), Cycle(200));
        assert!(!t.silent_commit_ok(Cycle(100), &[Granule(1), Granule(2)]));
        assert!(t.silent_commit_ok(Cycle(300), &[Granule(1), Granule(2)]));
    }

    #[test]
    fn newest_write_wins() {
        let mut t = TcdTable::new(16);
        t.note_write(Granule(1), Cycle(10));
        t.note_write(Granule(1), Cycle(50));
        t.note_write(Granule(1), Cycle(30)); // out-of-order note keeps max
        assert_eq!(t.last_write(Granule(1)), Cycle(50));
    }

    #[test]
    fn eviction_folds_into_floor() {
        let mut t = TcdTable::new(2);
        t.note_write(Granule(1), Cycle(10));
        t.note_write(Granule(2), Cycle(20));
        t.note_write(Granule(3), Cycle(30)); // evicts granule 1 -> floor 10
        assert_eq!(t.tracked(), 2);
        // Granule 1 now reports at least the floor — conservative, so a
        // transaction that started before the floor cannot commit silently.
        assert_eq!(t.last_write(Granule(1)), Cycle(10));
        assert!(!t.silent_commit_ok(Cycle(5), &[Granule(1)]));
        // Any totally unknown granule also reports the floor.
        assert_eq!(t.last_write(Granule(99)), Cycle(10));
    }
}
