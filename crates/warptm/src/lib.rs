//! # warptm
//!
//! The prior-art baselines GETM is evaluated against:
//!
//! * **WarpTM-LL** ([`validator`]) — lazy version management plus lazy,
//!   value-based conflict detection: at commit time the transaction's read
//!   and write logs travel to validation/commit units at each LLC
//!   partition, observed read values are compared against the current
//!   committed state, and the commit completes only after a second round
//!   trip (commit command + acknowledgement).
//! * **TCD** ([`tcd`]) — the temporal-conflict-detection filter that lets
//!   read-only transactions whose reads all predate the transaction's start
//!   commit silently, without value validation.
//! * **WarpTM-EL** — the idealized eager-lazy variant of the paper's
//!   Sec. III study: validation runs instantly (zero latency and traffic)
//!   at every access; only the engine-side policy differs, so it reuses
//!   [`validator`] for its single commit round trip.
//! * **EAPG** ([`eapg`]) — the idealized early-abort / pause-and-go
//!   baseline: committing write sets are broadcast to all cores, which
//!   abort (or pause) conflicting running transactions.
//!
//! As with the `getm` crate, these are pure partition/core-side state
//! machines; the `gputm` engine supplies interconnect timing.

#![warn(missing_docs)]

pub mod eapg;
pub mod tcd;
pub mod validator;

pub use eapg::EapgFilter;
pub use tcd::TcdTable;
pub use validator::{LaneEntry, ValidationJob, Verdict, WarptmValidator};
