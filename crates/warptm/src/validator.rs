//! The WarpTM validation/commit unit: lazy, value-based conflict detection.
//!
//! At commit time a coalesced warp transaction sends its read and write
//! logs to the validation unit of every partition it touched. Validation
//! is *per thread* (lane): the coalesced job tags every entry with its
//! lane, and the verdict reports the set of lanes that failed, so one
//! stale thread does not doom its 31 warp-mates. Each unit:
//!
//! 1. compares every logged read value against the current committed value
//!    (one log entry per cycle),
//! 2. conservatively fails a lane whose footprint overlaps a *limbo* write
//!    set — writes of lanes that validated here but whose commit command
//!    has not arrived yet (this models KiloTM's hazard detection between
//!    pipelined validations),
//! 3. replies with the failed-lane mask.
//!
//! The core collects verdicts from all partitions, unions the failed
//! masks, and sends a commit command carrying the global mask (or an abort
//! if every lane failed); the unit then applies the surviving lanes'
//! buffered writes to the LLC and acknowledges. Only when all acks arrive
//! may the warp continue — the two round trips of the paper's Fig. 2.

use gpu_mem::{Addr, Geometry};
use gpu_simt::GlobalWarpId;
use std::collections::{HashMap, HashSet};

/// One log entry of a per-partition validation job, tagged with the lane
/// (thread) it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneEntry {
    /// Lane within the committing warp.
    pub lane: u32,
    /// Word address.
    pub addr: Addr,
    /// Observed value (reads) or new value (writes).
    pub value: u64,
}

/// A transaction's per-partition validation job.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationJob {
    /// The committing warp.
    pub wid: GlobalWarpId,
    /// Engine correlation token (unique per commit attempt).
    pub token: u64,
    /// Read-log entries to validate.
    pub reads: Vec<LaneEntry>,
    /// Write-log entries to apply on commit.
    pub writes: Vec<LaneEntry>,
}

impl ValidationJob {
    /// Log entries carried by this job.
    pub fn entries(&self) -> usize {
        self.reads.len() + self.writes.len()
    }
}

/// The per-partition verdict for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Correlation token.
    pub token: u64,
    /// Mask of lanes that failed validation at this partition.
    pub failed_lanes: u64,
    /// Validation-unit cycles consumed (one per log entry, minimum one).
    pub cycles: u32,
}

impl Verdict {
    /// Whether every lane passed here.
    pub fn all_ok(&self) -> bool {
        self.failed_lanes == 0
    }
}

/// One partition's WarpTM validation/commit unit.
#[derive(Debug)]
pub struct WarptmValidator {
    geom: Geometry,
    /// Buffered writes of validated-but-uncommitted jobs, by token.
    limbo: HashMap<u64, Vec<LaneEntry>>,
    /// Granules covered by limbo writes (with reference counts).
    limbo_granules: HashMap<u64, u32>,
    /// Granules *read* by validated-but-uncommitted lanes, by token (for
    /// release) and as a refcounted set (for the hazard check): a later
    /// write to a limbo read would un-serialize the earlier transaction.
    limbo_reads: HashMap<u64, Vec<u64>>,
    limbo_read_granules: HashMap<u64, u32>,
    lanes_validated: u64,
    lanes_failed: u64,
    hazard_failures: u64,
}

impl WarptmValidator {
    /// Creates a validator for a partition of the given geometry.
    pub fn new(geom: Geometry) -> Self {
        WarptmValidator {
            geom,
            limbo: HashMap::new(),
            limbo_granules: HashMap::new(),
            limbo_reads: HashMap::new(),
            limbo_read_granules: HashMap::new(),
            lanes_validated: 0,
            lanes_failed: 0,
            hazard_failures: 0,
        }
    }

    /// Validates a job against the current committed state, lane by lane.
    ///
    /// `value_at` reads the committed value of a word from the LLC/memory
    /// image. Writes of lanes that pass *here* enter the limbo set until
    /// [`commit`](Self::commit) or [`abort`](Self::abort) arrives with the
    /// same token.
    pub fn validate(&mut self, job: ValidationJob, value_at: impl Fn(Addr) -> u64) -> Verdict {
        let cycles = job.entries().max(1) as u32;
        let token = job.token;
        let lanes: HashSet<u32> = job
            .reads
            .iter()
            .chain(job.writes.iter())
            .map(|e| e.lane)
            .collect();

        let mut failed = 0u64;
        for &lane in &lanes {
            // Hazard checks against validated-but-uncommitted state: the
            // lane's whole footprint must avoid limbo *writes*, and the
            // lane's writes must additionally avoid limbo *reads* (a write
            // under a validated read would break serializability).
            let hazard = job
                .reads
                .iter()
                .chain(job.writes.iter())
                .filter(|e| e.lane == lane)
                .any(|e| {
                    self.limbo_granules
                        .contains_key(&self.geom.granule_of(e.addr).raw())
                })
                || job.writes.iter().filter(|e| e.lane == lane).any(|e| {
                    self.limbo_read_granules
                        .contains_key(&self.geom.granule_of(e.addr).raw())
                });
            if hazard {
                failed |= 1 << lane;
                self.hazard_failures += 1;
                continue;
            }
            // Value-based validation of the lane's reads.
            let ok = job
                .reads
                .iter()
                .filter(|e| e.lane == lane)
                .all(|e| value_at(e.addr) == e.value);
            if !ok {
                failed |= 1 << lane;
            }
        }
        self.lanes_validated += lanes.len() as u64;
        self.lanes_failed += failed.count_ones() as u64;

        // Locally passing lanes' writes and reads enter limbo.
        let retained: Vec<LaneEntry> = job
            .writes
            .iter()
            .filter(|e| failed & (1 << e.lane) == 0)
            .copied()
            .collect();
        for e in &retained {
            *self
                .limbo_granules
                .entry(self.geom.granule_of(e.addr).raw())
                .or_insert(0) += 1;
        }
        self.limbo.insert(token, retained);
        let read_granules: Vec<u64> = job
            .reads
            .iter()
            .filter(|e| failed & (1 << e.lane) == 0)
            .map(|e| self.geom.granule_of(e.addr).raw())
            .collect();
        for &g in &read_granules {
            *self.limbo_read_granules.entry(g).or_insert(0) += 1;
        }
        self.limbo_reads.insert(token, read_granules);

        Verdict {
            token,
            failed_lanes: failed,
            cycles,
        }
    }

    /// Applies the writes of a previously validated job, excluding lanes
    /// in `global_failed` (lanes that failed at *another* partition).
    /// Returns the surviving writes — still tagged with the lane that
    /// issued them, so the engine can attribute each applied word to the
    /// right thread when recording histories — plus the apply cycles.
    ///
    /// # Panics
    ///
    /// Panics if the token was never validated (an engine bug).
    pub fn commit(&mut self, token: u64, global_failed: u64) -> (Vec<LaneEntry>, u32) {
        let retained = self
            .limbo
            .remove(&token)
            .expect("commit for unknown validation token");
        self.release_granules(&retained);
        self.release_reads(token);
        let survivors: Vec<LaneEntry> = retained
            .iter()
            .filter(|e| global_failed & (1 << e.lane) == 0)
            .copied()
            .collect();
        let cycles = survivors.len().max(1) as u32;
        (survivors, cycles)
    }

    /// Discards the limbo state of a job whose global decision was a full
    /// abort. Unknown tokens are ignored (everything failed locally).
    pub fn abort(&mut self, token: u64) {
        if let Some(writes) = self.limbo.remove(&token) {
            self.release_granules(&writes);
        }
        self.release_reads(token);
    }

    fn release_reads(&mut self, token: u64) {
        if let Some(gs) = self.limbo_reads.remove(&token) {
            for g in gs {
                if let Some(c) = self.limbo_read_granules.get_mut(&g) {
                    *c -= 1;
                    if *c == 0 {
                        self.limbo_read_granules.remove(&g);
                    }
                }
            }
        }
    }

    fn release_granules(&mut self, writes: &[LaneEntry]) {
        for e in writes {
            let g = self.geom.granule_of(e.addr).raw();
            if let Some(c) = self.limbo_granules.get_mut(&g) {
                *c -= 1;
                if *c == 0 {
                    self.limbo_granules.remove(&g);
                }
            }
        }
    }

    /// Granules currently covered by limbo writes (for EAPG broadcasts and
    /// tests).
    pub fn limbo_granule_set(&self) -> HashSet<u64> {
        self.limbo_granules.keys().copied().collect()
    }

    /// Lanes validated over the unit's lifetime.
    pub fn validated(&self) -> u64 {
        self.lanes_validated
    }

    /// Lanes failed (value mismatch or hazard).
    pub fn failed(&self) -> u64 {
        self.lanes_failed
    }

    /// Failures attributable to the conservative limbo hazard check.
    pub fn hazard_failures(&self) -> u64 {
        self.hazard_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(128, 32, 6)
    }

    fn entry(lane: u32, addr: u64, value: u64) -> LaneEntry {
        LaneEntry {
            lane,
            addr: Addr(addr),
            value,
        }
    }

    fn job(token: u64, reads: Vec<LaneEntry>, writes: Vec<LaneEntry>) -> ValidationJob {
        ValidationJob {
            wid: GlobalWarpId(1),
            token,
            reads,
            writes,
        }
    }

    #[test]
    fn matching_values_pass() {
        let mut v = WarptmValidator::new(geom());
        let verdict = v.validate(job(1, vec![entry(0, 8, 42)], vec![entry(0, 16, 9)]), |a| {
            if a.0 == 8 {
                42
            } else {
                0
            }
        });
        assert!(verdict.all_ok());
        assert_eq!(verdict.cycles, 2);
        assert_eq!(v.validated(), 1);
    }

    #[test]
    fn stale_read_fails_only_that_lane() {
        let mut v = WarptmValidator::new(geom());
        // Lane 0 reads a stale value; lane 1's read matches.
        let verdict = v.validate(
            job(
                1,
                vec![entry(0, 8, 42), entry(1, 256, 7)],
                vec![entry(0, 512, 1), entry(1, 1024, 2)],
            ),
            |a| if a.0 == 256 { 7 } else { 0 },
        );
        assert_eq!(verdict.failed_lanes, 0b01);
        // Only lane 1's write survives the commit, still lane-tagged.
        let (writes, _) = v.commit(1, verdict.failed_lanes);
        assert_eq!(writes, vec![entry(1, 1024, 2)]);
        assert_eq!(v.failed(), 1);
    }

    #[test]
    fn commit_excludes_globally_failed_lanes() {
        let mut v = WarptmValidator::new(geom());
        let verdict = v.validate(
            job(1, vec![], vec![entry(0, 8, 1), entry(1, 256, 2)]),
            |_| 0,
        );
        assert!(verdict.all_ok());
        // Lane 1 failed at some other partition.
        let (writes, _) = v.commit(1, 0b10);
        assert_eq!(writes, vec![entry(0, 8, 1)]);
        assert!(v.limbo_granule_set().is_empty());
    }

    #[test]
    fn limbo_hazard_fails_overlapping_lane() {
        let mut v = WarptmValidator::new(geom());
        assert!(v
            .validate(job(1, vec![], vec![entry(0, 8, 1)]), |_| 0)
            .all_ok());
        // Token 2's lane 0 reads granule 0 (addr 8 lives there): hazard.
        // Its lane 1 touches a distant granule: fine.
        let verdict = v.validate(
            job(2, vec![entry(0, 0, 0), entry(1, 4096, 0)], vec![]),
            |_| 0,
        );
        assert_eq!(verdict.failed_lanes, 0b01);
        assert_eq!(v.hazard_failures(), 1);
        // After token 1 commits, the same footprint passes.
        v.commit(1, 0);
        assert!(v
            .validate(job(3, vec![entry(0, 0, 0)], vec![]), |_| 0)
            .all_ok());
    }

    #[test]
    fn write_write_limbo_hazard() {
        let mut v = WarptmValidator::new(geom());
        assert!(v
            .validate(job(1, vec![], vec![entry(0, 8, 1)]), |_| 0)
            .all_ok());
        let verdict = v.validate(job(2, vec![], vec![entry(0, 16, 2)]), |_| 0);
        assert_eq!(verdict.failed_lanes, 0b01);
    }

    #[test]
    fn disjoint_jobs_pipeline() {
        let mut v = WarptmValidator::new(geom());
        assert!(v
            .validate(job(1, vec![], vec![entry(0, 0, 1)]), |_| 0)
            .all_ok());
        assert!(v
            .validate(job(2, vec![], vec![entry(0, 64, 2)]), |_| 0)
            .all_ok());
        assert_eq!(v.limbo_granule_set().len(), 2);
        v.commit(2, 0);
        v.commit(1, 0);
        assert!(v.limbo_granule_set().is_empty());
    }

    #[test]
    fn abort_releases_limbo() {
        let mut v = WarptmValidator::new(geom());
        assert!(v
            .validate(job(1, vec![], vec![entry(0, 8, 1)]), |_| 0)
            .all_ok());
        v.abort(1);
        assert!(v.limbo_granule_set().is_empty());
        assert!(v
            .validate(job(2, vec![entry(0, 0, 0)], vec![]), |_| 0)
            .all_ok());
    }

    #[test]
    fn failed_lane_writes_never_enter_limbo() {
        let mut v = WarptmValidator::new(geom());
        let verdict = v.validate(
            job(1, vec![entry(0, 8, 99)], vec![entry(0, 16, 1)]),
            |_| 0, // lane 0's read is stale
        );
        assert_eq!(verdict.failed_lanes, 0b01);
        // Its write must not block others via the hazard check.
        assert!(v.limbo_granule_set().is_empty());
        let verdict = v.validate(job(2, vec![entry(0, 16, 0)], vec![]), |_| 0);
        assert!(verdict.all_ok());
    }

    #[test]
    #[should_panic(expected = "unknown validation token")]
    fn commit_unknown_token_panics() {
        let mut v = WarptmValidator::new(geom());
        v.commit(99, 0);
    }

    #[test]
    fn empty_job_costs_one_cycle() {
        let mut v = WarptmValidator::new(geom());
        let verdict = v.validate(job(1, vec![], vec![]), |_| 0);
        assert!(verdict.all_ok());
        assert_eq!(verdict.cycles, 1);
    }
}
