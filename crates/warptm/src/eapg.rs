//! The idealized EAPG (early-abort / pause-and-go) baseline.
//!
//! EAPG extends WarpTM with commit-time broadcasts: when a transaction's
//! writes are applied at an LLC partition, the written set is broadcast to
//! every SIMT core, which compares it against the footprints of its running
//! transactions. A running transaction that has already observed (read) a
//! broadcast granule is doomed and aborts early, saving the useless trip
//! through validation; one that is *about to* access a broadcast granule
//! pauses until the committing transaction finishes.
//!
//! Following the paper's evaluation setup, the mechanism is idealized: each
//! broadcast is a 64-bit flit per core (charged as traffic by the engine),
//! the conflict comparison itself is free, and reference-count updates are
//! instantaneous. [`EapgFilter`] implements the core-side comparison.

use gpu_mem::{Geometry, Granule};
use gpu_simt::log::TxLogs;

/// The decision EAPG takes for one running transaction on receipt of a
/// commit broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EapgDecision {
    /// No overlap: the transaction keeps running.
    Unaffected,
    /// The transaction already read or wrote a broadcast granule: it is
    /// doomed and should abort now, without queueing for validation.
    EarlyAbort,
}

/// Core-side broadcast filter.
#[derive(Debug, Clone)]
pub struct EapgFilter {
    geom: Geometry,
    early_aborts: u64,
    pauses: u64,
    broadcasts_seen: u64,
}

impl EapgFilter {
    /// Creates a filter for one core.
    pub fn new(geom: Geometry) -> Self {
        EapgFilter {
            geom,
            early_aborts: 0,
            pauses: 0,
            broadcasts_seen: 0,
        }
    }

    /// Evaluates a running transaction's logs against a broadcast write
    /// set, recording the decision in the filter's counters.
    pub fn on_broadcast(&mut self, logs: &TxLogs, written: &[Granule]) -> EapgDecision {
        self.broadcasts_seen += 1;
        let overlap = written
            .iter()
            .any(|&g| logs.read_granule(g, &self.geom) || logs.wrote_granule(g));
        if overlap {
            self.early_aborts += 1;
            EapgDecision::EarlyAbort
        } else {
            EapgDecision::Unaffected
        }
    }

    /// Whether an access a thread is *about to* make should pause because
    /// its granule is currently being committed (pause-and-go).
    pub fn should_pause(&mut self, target: Granule, committing: &[Granule]) -> bool {
        let pause = committing.contains(&target);
        if pause {
            self.pauses += 1;
        }
        pause
    }

    /// Early aborts triggered by this filter.
    pub fn early_aborts(&self) -> u64 {
        self.early_aborts
    }

    /// Pauses triggered by this filter.
    pub fn pauses(&self) -> u64 {
        self.pauses
    }

    /// Broadcast evaluations performed.
    pub fn broadcasts_seen(&self) -> u64 {
        self.broadcasts_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::Addr;

    fn geom() -> Geometry {
        Geometry::new(128, 32, 6)
    }

    #[test]
    fn overlap_with_read_set_aborts() {
        let g = geom();
        let mut f = EapgFilter::new(g);
        let mut logs = TxLogs::new();
        logs.record_read(Addr(8), 1); // granule 0
        assert_eq!(
            f.on_broadcast(&logs, &[Granule(0)]),
            EapgDecision::EarlyAbort
        );
        assert_eq!(f.early_aborts(), 1);
    }

    #[test]
    fn overlap_with_write_set_aborts() {
        let g = geom();
        let mut f = EapgFilter::new(g);
        let mut logs = TxLogs::new();
        logs.record_write(Addr(40), 1, &g); // granule 1
        assert_eq!(
            f.on_broadcast(&logs, &[Granule(1)]),
            EapgDecision::EarlyAbort
        );
    }

    #[test]
    fn disjoint_broadcast_is_harmless() {
        let g = geom();
        let mut f = EapgFilter::new(g);
        let mut logs = TxLogs::new();
        logs.record_read(Addr(8), 1);
        assert_eq!(
            f.on_broadcast(&logs, &[Granule(7), Granule(9)]),
            EapgDecision::Unaffected
        );
        assert_eq!(f.early_aborts(), 0);
        assert_eq!(f.broadcasts_seen(), 1);
    }

    #[test]
    fn pause_on_committing_granule() {
        let mut f = EapgFilter::new(geom());
        assert!(f.should_pause(Granule(3), &[Granule(3), Granule(4)]));
        assert!(!f.should_pause(Granule(5), &[Granule(3)]));
        assert_eq!(f.pauses(), 1);
    }

    #[test]
    fn empty_logs_never_abort() {
        let mut f = EapgFilter::new(geom());
        let logs = TxLogs::new();
        assert_eq!(
            f.on_broadcast(&logs, &[Granule(0), Granule(1)]),
            EapgDecision::Unaffected
        );
    }
}
