//! The paper's Fig. 7 walkthrough, reproduced step by step.
//!
//! Two conflicting bank-transfer transactions: tx1 (warpts = 20) moves
//! funds from account A to B, tx2 (warpts = 10) moves funds from B to A.
//! The interleaving below follows the figure exactly and checks the
//! metadata tables against the paper's snapshots (1), (2) and (3).

use getm::vu::GetmConfig;
use getm::{
    AccessKind, AccessReply, AccessRequest, CommitEntry, CommitUnit, ReplyKind, ValidationUnit,
};
use gpu_mem::{Addr, Granule};
use gpu_simt::GlobalWarpId;
use sim_core::DetRng;

const A: Granule = Granule(100);
const B: Granule = Granule(200);
const TX1: GlobalWarpId = GlobalWarpId(1);
const TX2: GlobalWarpId = GlobalWarpId(2);

fn req(wid: GlobalWarpId, warpts: u64, g: Granule, kind: AccessKind) -> AccessRequest {
    AccessRequest {
        granule: g,
        addr: Addr(g.raw() * 32),
        wid,
        warpts,
        kind,
        token: 0,
    }
}

fn reply(vu: &mut ValidationUnit, r: AccessRequest) -> Option<AccessReply> {
    vu.access(r, || 0).reply
}

#[test]
fn figure7_walkthrough() {
    let mut rng = DetRng::seeded(0xF167);
    let mut vu = ValidationUnit::new(GetmConfig::default(), &mut rng);
    let mut cu = CommitUnit::new();

    // tx1: LD A @ 20, ST A @ 20.
    let r = reply(&mut vu, req(TX1, 20, A, AccessKind::Load)).unwrap();
    assert_eq!(r.kind, ReplyKind::Success);
    let r = reply(&mut vu, req(TX1, 20, A, AccessKind::Store)).unwrap();
    assert_eq!(r.kind, ReplyKind::Success);

    // tx2: LD B @ 10, ST B @ 10.
    let r = reply(&mut vu, req(TX2, 10, B, AccessKind::Load)).unwrap();
    assert_eq!(r.kind, ReplyKind::Success);
    let r = reply(&mut vu, req(TX2, 10, B, AccessKind::Store)).unwrap();
    assert_eq!(r.kind, ReplyKind::Success);

    // Snapshot (1): A owned by tx1 with wts 21 / rts 20; B owned by tx2
    // with wts 11 / rts 10.
    let ma = vu.peek(A);
    assert_eq!((ma.wts, ma.rts, ma.writes), (21, 20, 1));
    assert!(ma.owned_by(TX1));
    let mb = vu.peek(B);
    assert_eq!((mb.wts, mb.rts, mb.writes), (11, 10, 1));
    assert!(mb.owned_by(TX2));

    // tx2 attempts LD A @ 10: A.wts (21) > 10, so tx2 aborts and the next
    // warpts must be later than 21.
    match reply(&mut vu, req(TX2, 10, A, AccessKind::Load))
        .unwrap()
        .kind
    {
        ReplyKind::Abort { cause_ts, cause } => {
            assert_eq!(cause_ts, 21);
            assert_eq!(cause, sim_core::AbortCause::War);
        }
        ReplyKind::Success => panic!("tx2's stale load must abort"),
    }

    // tx2's abort log releases its reservation on B.
    cu.receive(&[CommitEntry {
        granule: B,
        addr: Addr(B.raw() * 32),
        data: None,
        writes: 1,
    }]);
    for region in cu.drain() {
        let (woken, _) = vu.release(Granule(region.granule), region.writes, |_| 0);
        assert!(woken.is_empty());
    }

    // tx1 now loads and stores B; both succeed since tx2 was older and its
    // lock is gone.
    let r = reply(&mut vu, req(TX1, 20, B, AccessKind::Load)).unwrap();
    assert_eq!(r.kind, ReplyKind::Success);
    let r = reply(&mut vu, req(TX1, 20, B, AccessKind::Store)).unwrap();
    assert_eq!(r.kind, ReplyKind::Success);

    // Snapshot (2): B now owned by tx1, wts 21, rts 20; A unchanged.
    let mb = vu.peek(B);
    assert_eq!((mb.wts, mb.rts, mb.writes), (21, 20, 1));
    assert!(mb.owned_by(TX1));
    assert_eq!(vu.peek(A).writes, 1);

    // tx2 restarts at warpts 22; its load of B passes the version check but
    // finds B reserved, so it queues in the stall buffer.
    assert!(reply(&mut vu, req(TX2, 22, B, AccessKind::Load)).is_none());
    assert_eq!(vu.stalled_requests(), 1);

    // tx1 commits: guaranteed to succeed, write log streamed to the CU.
    cu.receive(&[
        CommitEntry {
            granule: A,
            addr: Addr(A.raw() * 32),
            data: Some(77),
            writes: 1,
        },
        CommitEntry {
            granule: B,
            addr: Addr(B.raw() * 32),
            data: Some(33),
            writes: 1,
        },
    ]);
    let mut woken_replies = Vec::new();
    for region in cu.drain() {
        let (woken, _) = vu.release(Granule(region.granule), region.writes, |_| 33);
        woken_replies.extend(woken);
    }

    // Snapshot (3): both reservations released...
    assert_eq!(vu.peek(A).writes, 0);
    assert_eq!(vu.peek(B).writes, 0);
    // ...and tx2's stalled load of B was woken and succeeded, observing the
    // committed value.
    assert_eq!(woken_replies.len(), 1);
    assert_eq!(woken_replies[0].request.wid, TX2);
    assert_eq!(woken_replies[0].reply.kind, ReplyKind::Success);
    assert_eq!(woken_replies[0].reply.value, 33);
    assert_eq!(vu.stalled_requests(), 0);

    // tx2 can now complete: store B, load+store A, all at warpts 22.
    for (g, kind) in [
        (B, AccessKind::Store),
        (A, AccessKind::Load),
        (A, AccessKind::Store),
    ] {
        let r = reply(&mut vu, req(TX2, 22, g, kind)).unwrap();
        assert_eq!(
            r.kind,
            ReplyKind::Success,
            "tx2 retry must succeed on {g:?}"
        );
    }
    assert!(vu.peek(A).owned_by(TX2));
    assert!(vu.peek(B).owned_by(TX2));
}
