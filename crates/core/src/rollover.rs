//! Logical-timestamp rollover (paper Sec. V-B1, "Timestamp rollover").
//!
//! Logical timestamps advance only on aborts and commits, so even narrow
//! counters roll over rarely (the paper measures one increment per
//! 1,265-15,836 cycles, i.e. 32-bit timestamps last over an hour of GPU
//! time). When a validation unit does detect an imminent rollover, the
//! system must atomically reset every VU and every core's `warpts`:
//!
//! 1. The detecting VU circulates a *stall* message around the single-wire
//!    ring connecting all VUs (VU-id tie-break if two detect at once); when
//!    it returns, every VU has stopped accepting requests.
//! 2. Cores are asked to quiesce; once all acks arrive there are no
//!    requests in flight.
//! 3. Every VU flushes its metadata tables and stall buffer, a *resume*
//!    message circulates, and execution continues from logical time zero.
//!
//! [`RolloverCoordinator`] models the ring protocol and accounts its
//! latency; the engine invokes it and performs the actual flush/abort work.

/// Phases of an in-progress rollover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloverPhase {
    /// No rollover in progress.
    Idle,
    /// Stall message circulating the VU ring.
    Stalling,
    /// Waiting for core quiesce acks.
    WaitingForCores,
    /// Flush done, resume message circulating.
    Resuming,
}

/// Coordinates a GPU-wide timestamp rollover.
#[derive(Debug, Clone)]
pub struct RolloverCoordinator {
    /// Timestamp value that triggers a rollover when reached.
    limit: u64,
    num_vus: u32,
    num_cores: u32,
    /// Per-hop latency of the single-wire VU ring, in cycles.
    ring_hop_cycles: u64,
    phase: RolloverPhase,
    pending_core_acks: u32,
    rollovers: u64,
}

impl RolloverCoordinator {
    /// Creates a coordinator that triggers when any timestamp reaches
    /// `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero or there are no VUs/cores.
    pub fn new(limit: u64, num_vus: u32, num_cores: u32, ring_hop_cycles: u64) -> Self {
        assert!(limit > 0 && num_vus > 0 && num_cores > 0);
        RolloverCoordinator {
            limit,
            num_vus,
            num_cores,
            ring_hop_cycles,
            phase: RolloverPhase::Idle,
            pending_core_acks: 0,
            rollovers: 0,
        }
    }

    /// A coordinator for 48-bit timestamps (effectively never fires; the
    /// paper notes 48-bit counters roll over less than once in 11 years).
    pub fn for_48bit(num_vus: u32, num_cores: u32) -> Self {
        RolloverCoordinator::new(1 << 48, num_vus, num_cores, 1)
    }

    /// Whether `ts` has reached the rollover threshold.
    pub fn needs_rollover(&self, ts: u64) -> bool {
        ts >= self.limit
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Current phase.
    pub fn phase(&self) -> RolloverPhase {
        self.phase
    }

    /// Rollovers completed so far.
    pub fn completed(&self) -> u64 {
        self.rollovers
    }

    /// Begins a rollover, returning the cycles the stall message needs to
    /// circulate the VU ring.
    ///
    /// # Panics
    ///
    /// Panics if a rollover is already in progress.
    pub fn begin(&mut self) -> u64 {
        assert_eq!(self.phase, RolloverPhase::Idle, "rollover already running");
        self.phase = RolloverPhase::Stalling;
        self.num_vus as u64 * self.ring_hop_cycles
    }

    /// The stall message returned; now wait for every core to ack quiesce.
    pub fn stall_complete(&mut self) {
        assert_eq!(self.phase, RolloverPhase::Stalling);
        self.phase = RolloverPhase::WaitingForCores;
        self.pending_core_acks = self.num_cores;
    }

    /// Records one core's quiesce ack; returns `true` when all cores have
    /// acked and the flush can proceed.
    pub fn core_ack(&mut self) -> bool {
        assert_eq!(self.phase, RolloverPhase::WaitingForCores);
        assert!(self.pending_core_acks > 0);
        self.pending_core_acks -= 1;
        if self.pending_core_acks == 0 {
            self.phase = RolloverPhase::Resuming;
            true
        } else {
            false
        }
    }

    /// Completes the rollover after the flush, returning the resume-message
    /// ring latency. Timestamps restart from zero.
    pub fn finish(&mut self) -> u64 {
        assert_eq!(self.phase, RolloverPhase::Resuming);
        self.phase = RolloverPhase::Idle;
        self.rollovers += 1;
        self.num_vus as u64 * self.ring_hop_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_threshold() {
        let rc = RolloverCoordinator::new(100, 6, 15, 1);
        assert!(!rc.needs_rollover(99));
        assert!(rc.needs_rollover(100));
        assert!(rc.needs_rollover(u64::MAX));
        assert_eq!(rc.limit(), 100);
    }

    #[test]
    fn full_protocol_sequence() {
        let mut rc = RolloverCoordinator::new(100, 6, 3, 2);
        assert_eq!(rc.phase(), RolloverPhase::Idle);
        let stall_cycles = rc.begin();
        assert_eq!(stall_cycles, 12); // 6 VUs x 2 cycles
        assert_eq!(rc.phase(), RolloverPhase::Stalling);
        rc.stall_complete();
        assert_eq!(rc.phase(), RolloverPhase::WaitingForCores);
        assert!(!rc.core_ack());
        assert!(!rc.core_ack());
        assert!(rc.core_ack()); // third core completes the quiesce
        assert_eq!(rc.phase(), RolloverPhase::Resuming);
        let resume_cycles = rc.finish();
        assert_eq!(resume_cycles, 12);
        assert_eq!(rc.phase(), RolloverPhase::Idle);
        assert_eq!(rc.completed(), 1);
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn double_begin_panics() {
        let mut rc = RolloverCoordinator::new(100, 6, 15, 1);
        rc.begin();
        rc.begin();
    }

    #[test]
    fn for_48bit_never_fires_in_practice() {
        let rc = RolloverCoordinator::for_48bit(6, 15);
        // Even billions of increments stay far from the limit.
        assert!(!rc.needs_rollover(10_000_000_000));
    }
}
