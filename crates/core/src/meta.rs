//! Per-granule transaction metadata (paper Table I).
//!
//! Each metadata granule tracked by a validation unit carries:
//!
//! * `wts` — one more than the logical time of the last write attempt,
//! * `rts` — the logical time of the last read,
//! * `writes` — the outstanding write count; non-zero means the granule is
//!   locked by an in-flight transaction,
//! * `owner` — the global warp ID holding the reservation (meaningful only
//!   while `writes > 0`).

use gpu_simt::GlobalWarpId;
use tm_structs::LockState;

/// The metadata record for one granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxMetadata {
    /// One more than the logical time of the last write attempt.
    pub wts: u64,
    /// Logical time of the last read.
    pub rts: u64,
    /// Outstanding write count; non-zero locks the granule.
    pub writes: u32,
    /// Reservation owner while `writes > 0`.
    pub owner: GlobalWarpId,
}

impl TxMetadata {
    /// A fresh record seeded from approximate timestamps (what a precise-
    /// table miss reconstructs from the recency Bloom filter).
    pub fn from_approx(wts: u64, rts: u64) -> Self {
        TxMetadata {
            wts,
            rts,
            writes: 0,
            owner: GlobalWarpId(0),
        }
    }

    /// Whether `wid` currently owns this granule's write reservation.
    pub fn owned_by(&self, wid: GlobalWarpId) -> bool {
        self.writes > 0 && self.owner == wid
    }

    /// Whether the granule is locked by some transaction.
    pub fn is_reserved(&self) -> bool {
        self.writes > 0
    }
}

impl LockState for TxMetadata {
    fn is_locked(&self) -> bool {
        self.writes > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_approx_is_unlocked() {
        let m = TxMetadata::from_approx(10, 20);
        assert_eq!(m.wts, 10);
        assert_eq!(m.rts, 20);
        assert!(!m.is_reserved());
        assert!(!m.is_locked());
    }

    #[test]
    fn ownership() {
        let mut m = TxMetadata::default();
        let w1 = GlobalWarpId(5);
        let w2 = GlobalWarpId(9);
        assert!(!m.owned_by(w1));
        m.writes = 1;
        m.owner = w1;
        assert!(m.owned_by(w1));
        assert!(!m.owned_by(w2));
        assert!(m.is_reserved());
        assert!(m.is_locked());
        // writes == 0 means nobody owns it, even with a stale owner field.
        m.writes = 0;
        assert!(!m.owned_by(w1));
    }
}
