//! The message vocabulary between SIMT cores and GETM's partition units.
//!
//! These are the payloads the `gputm` engine moves across the crossbar:
//! per-access eager conflict checks travel core -> validation unit, replies
//! travel back, and commit/abort logs travel core -> commit unit with no
//! reply (commits are off the critical path).

use gpu_mem::{Addr, Granule};
use gpu_simt::GlobalWarpId;
use sim_core::trace::AbortCause;

/// Whether a transactional access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A transactional load.
    Load,
    /// A transactional store.
    Store,
}

/// An eager conflict-check request for one granule.
///
/// `token` is an opaque correlation id the engine uses to route the reply
/// back to the issuing warp instruction; the protocol never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRequest {
    /// The granule under check.
    pub granule: Granule,
    /// A representative word address inside the granule (for value fetch).
    pub addr: Addr,
    /// The requesting warp (GETM's transaction identifier).
    pub wid: GlobalWarpId,
    /// The warp's logical timestamp.
    pub warpts: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Engine correlation token.
    pub token: u64,
}

/// Approximate wire size of an access request: address + timestamps +
/// control. Matches the header-plus-word flit the paper assumes.
pub const ACCESS_REQUEST_BYTES: u64 = 16;
/// Wire size of a reply (status + timestamp + loaded word).
pub const ACCESS_REPLY_BYTES: u64 = 16;
/// Wire size of one commit/abort log entry (address, data, count).
pub const COMMIT_ENTRY_BYTES: u64 = 16;

/// The decision for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// The access passed eager conflict detection.
    Success,
    /// The transaction must abort; `cause_ts` is the newest conflicting
    /// timestamp observed, so the core can restart at `cause_ts + 1`, and
    /// `cause` says which Fig. 6 check lost (feeds the abort taxonomy).
    Abort {
        /// Newest conflicting logical timestamp.
        cause_ts: u64,
        /// Which conflict check produced the abort.
        cause: AbortCause,
    },
}

/// A reply to an [`AccessRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessReply {
    /// The decision.
    pub kind: ReplyKind,
    /// The granule's `wts` as observed by this access (feeds the commit-time
    /// `warpts` advance).
    pub observed_wts: u64,
    /// The granule's `rts` as observed by this access.
    pub observed_rts: u64,
    /// Correlation token copied from the request.
    pub token: u64,
    /// The current committed value of the requested word (loads only).
    pub value: u64,
}

/// One entry of a commit or abort log sent to a commit unit.
///
/// Committing threads send address, data, and write count; aborting threads
/// send only address and count so reservations can be unwound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEntry {
    /// The written granule.
    pub granule: Granule,
    /// Word address of the write (meaningful when `data` is `Some`).
    pub addr: Addr,
    /// New value for committing threads; `None` for abort cleanup.
    pub data: Option<u64>,
    /// Number of coalesced writes this entry represents.
    pub writes: u32,
}

impl CommitEntry {
    /// Wire bytes for a batch of entries.
    pub fn batch_bytes(entries: &[CommitEntry]) -> u64 {
        entries.len() as u64 * COMMIT_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_bytes() {
        let e = CommitEntry {
            granule: Granule(1),
            addr: Addr(32),
            data: Some(7),
            writes: 2,
        };
        assert_eq!(CommitEntry::batch_bytes(&[]), 0);
        assert_eq!(CommitEntry::batch_bytes(&[e, e, e]), 48);
    }

    #[test]
    fn reply_kinds() {
        let r = ReplyKind::Abort {
            cause_ts: 9,
            cause: AbortCause::War,
        };
        assert_ne!(r, ReplyKind::Success);
        match r {
            ReplyKind::Abort { cause_ts, cause } => {
                assert_eq!(cause_ts, 9);
                assert_eq!(cause, AbortCause::War);
            }
            ReplyKind::Success => unreachable!(),
        }
    }
}
