//! The validation unit: eager conflict detection at the LLC partition.
//!
//! One validation unit sits next to each LLC bank and owns the metadata for
//! that partition's address range. Every transactional load and store is
//! checked here *at encounter time* against the logical-timestamp rules of
//! the paper's Fig. 6:
//!
//! * **Owner check** — a granule locked by the requesting warp itself
//!   succeeds immediately (stores bump `#writes`, loads bump `rts`).
//! * **Timestamp check** — a load older than the granule's `wts`, or a
//!   store older than `max(wts, rts)`, conflicts with a logically later
//!   transaction and must abort; the reply carries the newest conflicting
//!   timestamp so the warp restarts after it.
//! * **Lock check** — an access that passes the timestamp check but finds
//!   the granule reserved by another warp is *logically younger* than the
//!   owner, so it queues in the stall buffer instead of aborting; a full
//!   buffer aborts it.
//! * Otherwise the access succeeds, eagerly updating `rts` (loads) or
//!   taking the write reservation (`owner`, `#writes`, `wts`) for stores.
//!
//! Timestamps are updated eagerly and never rolled back on abort: stale
//! inflation can only cause extra aborts, never inconsistency.

use crate::meta::TxMetadata;
use crate::msg::{AccessKind, AccessReply, AccessRequest, ReplyKind};
use gpu_mem::Granule;
use sim_core::trace::AbortCause;
use sim_core::DetRng;
use tm_structs::{CuckooConfig, CuckooTable, RecencyBloom, StallBuffer, StallConfig};

/// How evicted metadata is approximated (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproxMode {
    /// The paper's design: a recency Bloom filter (min across H3-indexed
    /// ways of per-way maxima).
    #[default]
    RecencyBloom,
    /// The paper's *rejected* first attempt: a single pair of registers
    /// holding the maximum evicted `wts`/`rts`. The paper reports this
    /// made "version numbers increase very quickly and caused many
    /// aborts"; the `ablation` bench reproduces that finding.
    MaxRegisters,
}

/// Configuration for one validation unit.
#[derive(Debug, Clone, Copy)]
pub struct GetmConfig {
    /// Precise metadata table geometry (per partition).
    pub cuckoo: CuckooConfig,
    /// Approximate-table entries per way (per partition).
    pub bloom_entries_per_way: usize,
    /// Approximate-table ways.
    pub bloom_ways: usize,
    /// Stall buffer geometry.
    pub stall: StallConfig,
    /// How evicted metadata is approximated.
    pub approx_mode: ApproxMode,
    /// Ablation: disable the stall buffer entirely — accesses that find a
    /// foreign reservation abort instead of queueing.
    pub disable_stall_buffer: bool,
}

impl GetmConfig {
    /// The paper's per-partition defaults for a 6-partition GPU: 4K precise
    /// entries GPU-wide (~683 per partition, rounded to 680 divisible by 4),
    /// 1K approximate entries GPU-wide, 4x4 stall buffer.
    pub fn paper_default_per_partition(partitions: u32) -> Self {
        let per_part = (4096 / partitions as usize / 4).max(1) * 4;
        let bloom_per_way = (1024 / partitions as usize / 4).max(1);
        GetmConfig {
            cuckoo: CuckooConfig {
                total_entries: per_part,
                ..CuckooConfig::default()
            },
            bloom_entries_per_way: bloom_per_way,
            bloom_ways: 4,
            stall: StallConfig::default(),
            approx_mode: ApproxMode::RecencyBloom,
            disable_stall_buffer: false,
        }
    }
}

impl Default for GetmConfig {
    fn default() -> Self {
        GetmConfig::paper_default_per_partition(6)
    }
}

/// Counters the evaluation reads out of a validation unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct VuStats {
    /// Successful access checks.
    pub successes: u64,
    /// Aborts issued.
    pub aborts: u64,
    /// Aborts of loads (WAR: line written by a logically later tx).
    pub aborts_load: u64,
    /// Aborts of stores (WAW/RAW: line written or read by a later tx).
    pub aborts_store: u64,
    /// Aborts where the granule metadata came from the approximate table
    /// (possible false conflict from Bloom overestimation).
    pub aborts_approx: u64,
    /// Largest conflicting timestamp ever reported.
    pub max_cause_ts: u64,
    /// Requests parked in the stall buffer.
    pub queued: u64,
    /// Aborts caused by a full stall buffer.
    pub stall_full_aborts: u64,
    /// Lock releases processed.
    pub releases: u64,
}

/// A queued request woken by a lock release, with its fresh reply.
#[derive(Debug, Clone, Copy)]
pub struct WokenReply {
    /// The original request.
    pub request: AccessRequest,
    /// Its (re-)evaluation result.
    pub reply: AccessReply,
    /// Validation-unit cycles consumed re-processing it.
    pub cycles: u32,
}

/// Outcome of submitting an access to the validation unit.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// The reply to send back, or `None` if the request was queued in the
    /// stall buffer (a reply will surface later from a release).
    pub reply: Option<AccessReply>,
    /// Validation-unit cycles consumed.
    pub cycles: u32,
}

/// One partition's validation unit.
pub struct ValidationUnit {
    precise: CuckooTable<TxMetadata>,
    approx: RecencyBloom,
    /// Max-register fallback (ablation): maxima of evicted `wts`/`rts`.
    max_regs: (u64, u64),
    stall: StallBuffer<AccessRequest>,
    approx_mode: ApproxMode,
    disable_stall: bool,
    stats: VuStats,
}

impl std::fmt::Debug for ValidationUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidationUnit")
            .field("precise_entries", &self.precise.len())
            .field("stalled", &self.stall.total_occupancy())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ValidationUnit {
    /// Creates a validation unit with deterministic hash functions drawn
    /// from `rng`.
    pub fn new(cfg: GetmConfig, rng: &mut DetRng) -> Self {
        let mut cuckoo_rng = rng.fork(0xC0C0);
        let mut bloom_rng = rng.fork(0xB100);
        ValidationUnit {
            precise: CuckooTable::new(cfg.cuckoo, &mut cuckoo_rng),
            approx: RecencyBloom::new(cfg.bloom_ways, cfg.bloom_entries_per_way, &mut bloom_rng),
            max_regs: (0, 0),
            stall: StallBuffer::new(cfg.stall),
            approx_mode: cfg.approx_mode,
            disable_stall: cfg.disable_stall_buffer,
            stats: VuStats::default(),
        }
    }

    /// Submits one transactional access (the Fig. 6 flowchart).
    ///
    /// `value_of` supplies the current committed value of the requested
    /// word, read from the LLC on a successful load.
    pub fn access(&mut self, req: AccessRequest, value_of: impl FnOnce() -> u64) -> AccessOutcome {
        let (meta, mut cycles) = self.fetch_meta(req.granule);
        let mut meta = meta;

        // Owner check: the requesting warp already holds the reservation.
        if meta.owned_by(req.wid) {
            match req.kind {
                AccessKind::Load => {
                    meta.rts = meta.rts.max(req.warpts);
                }
                AccessKind::Store => {
                    meta.writes += 1;
                }
            }
            cycles += self.store_meta(req.granule, meta);
            self.stats.successes += 1;
            return AccessOutcome {
                reply: Some(AccessReply {
                    kind: ReplyKind::Success,
                    observed_wts: meta.wts,
                    observed_rts: meta.rts,
                    token: req.token,
                    value: value_of(),
                }),
                cycles,
            };
        }

        // Timestamp check.
        let from_approx = self.precise.get(req.granule.raw()).is_none();
        let conflict_ts = match req.kind {
            AccessKind::Load => (req.warpts < meta.wts).then_some(meta.wts),
            AccessKind::Store => {
                let newest = meta.wts.max(meta.rts);
                (req.warpts < newest).then_some(newest)
            }
        };
        if let Some(cause_ts) = conflict_ts {
            self.stats.aborts += 1;
            match req.kind {
                AccessKind::Load => self.stats.aborts_load += 1,
                AccessKind::Store => self.stats.aborts_store += 1,
            }
            if from_approx {
                self.stats.aborts_approx += 1;
            }
            self.stats.max_cause_ts = self.stats.max_cause_ts.max(cause_ts);
            let cause = if from_approx {
                AbortCause::Approx
            } else if req.kind == AccessKind::Load {
                AbortCause::War
            } else {
                AbortCause::LockConflict
            };
            return AccessOutcome {
                reply: Some(AccessReply {
                    kind: ReplyKind::Abort { cause_ts, cause },
                    observed_wts: meta.wts,
                    observed_rts: meta.rts,
                    token: req.token,
                    value: 0,
                }),
                cycles,
            };
        }

        // Lock check: reserved by a logically earlier transaction.
        if meta.is_reserved() {
            if self.disable_stall {
                // Ablation: no stall buffer — abort as if it were full.
                self.stats.aborts += 1;
                self.stats.stall_full_aborts += 1;
                let cause_ts = meta.wts.max(meta.rts).max(req.warpts);
                return AccessOutcome {
                    reply: Some(AccessReply {
                        kind: ReplyKind::Abort {
                            cause_ts,
                            cause: AbortCause::StallFull,
                        },
                        observed_wts: meta.wts,
                        observed_rts: meta.rts,
                        token: req.token,
                        value: 0,
                    }),
                    cycles,
                };
            }
            match self.stall.enqueue(req.granule.raw(), req.warpts, req) {
                Ok(()) => {
                    self.stats.queued += 1;
                    return AccessOutcome {
                        reply: None,
                        cycles,
                    };
                }
                Err(_) => {
                    // Full buffer: abort, reporting the newest timestamp so
                    // the retry lands after the current owner.
                    self.stats.aborts += 1;
                    self.stats.stall_full_aborts += 1;
                    let cause_ts = meta.wts.max(meta.rts).max(req.warpts);
                    return AccessOutcome {
                        reply: Some(AccessReply {
                            kind: ReplyKind::Abort {
                                cause_ts,
                                cause: AbortCause::StallFull,
                            },
                            observed_wts: meta.wts,
                            observed_rts: meta.rts,
                            token: req.token,
                            value: 0,
                        }),
                        cycles,
                    };
                }
            }
        }

        // Unreserved success path.
        match req.kind {
            AccessKind::Load => {
                meta.rts = meta.rts.max(req.warpts);
            }
            AccessKind::Store => {
                meta.wts = req.warpts + 1;
                meta.owner = req.wid;
                meta.writes = 1;
            }
        }
        cycles += self.store_meta(req.granule, meta);
        self.stats.successes += 1;
        AccessOutcome {
            reply: Some(AccessReply {
                kind: ReplyKind::Success,
                observed_wts: meta.wts,
                observed_rts: meta.rts,
                token: req.token,
                value: if req.kind == AccessKind::Load {
                    value_of()
                } else {
                    0
                },
            }),
            cycles,
        }
    }

    /// Releases `count` writes on `granule` (one commit/abort log entry
    /// processed by the commit unit). When the count reaches zero, queued
    /// requests are woken oldest-first and re-evaluated until one of them
    /// re-locks the granule or none remain.
    ///
    /// Returns the replies for woken requests plus the cycles consumed.
    pub fn release(
        &mut self,
        granule: Granule,
        count: u32,
        value_of: impl Fn(AccessRequest) -> u64,
    ) -> (Vec<WokenReply>, u32) {
        self.stats.releases += 1;
        let (meta, mut cycles) = self.fetch_meta(granule);
        let mut meta = meta;
        debug_assert!(
            meta.writes >= count,
            "releasing more writes than reserved on {granule}"
        );
        meta.writes = meta.writes.saturating_sub(count);
        cycles += self.store_meta(granule, meta);

        let mut woken = Vec::new();
        // Wake waiters only once the granule is fully unlocked.
        while self.meta_unlocked(granule) {
            let Some(req) = self.stall.wake_one(granule.raw()) else {
                break;
            };
            let out = self.access(req, || value_of(req));
            match out.reply {
                Some(reply) => woken.push(WokenReply {
                    request: req,
                    reply,
                    cycles: out.cycles,
                }),
                // Re-queued (can happen if an earlier woken store re-locked
                // between wakes; the loop condition prevents this, but a
                // re-queue is also simply benign).
                None => break,
            }
        }
        (woken, cycles)
    }

    fn meta_unlocked(&self, granule: Granule) -> bool {
        self.precise
            .get(granule.raw())
            .map(|m| !m.is_reserved())
            .unwrap_or(true)
    }

    /// Reads (or reconstructs from the approximate table) the metadata for
    /// `granule`, charging lookup cycles.
    fn fetch_meta(&mut self, granule: Granule) -> (TxMetadata, u32) {
        let (hit, cycles) = self.precise.lookup(granule.raw());
        if let Some(m) = hit {
            return (*m, cycles);
        }
        match self.approx_mode {
            ApproxMode::RecencyBloom => {
                let approx = self.approx.lookup(granule.raw());
                (TxMetadata::from_approx(approx.wts, approx.rts), cycles)
            }
            ApproxMode::MaxRegisters => (
                TxMetadata::from_approx(self.max_regs.0, self.max_regs.1),
                cycles,
            ),
        }
    }

    /// Writes metadata back into the precise table, folding any evicted
    /// entry into the approximate table. Returns the insertion cycles.
    fn store_meta(&mut self, granule: Granule, meta: TxMetadata) -> u32 {
        let out = self.precise.insert(granule.raw(), meta);
        if let Some((key, evicted)) = out.evicted {
            debug_assert!(!evicted.is_reserved(), "locked entries must not evict");
            match self.approx_mode {
                ApproxMode::RecencyBloom => {
                    self.approx.insert(key, evicted.wts, evicted.rts);
                }
                ApproxMode::MaxRegisters => {
                    self.max_regs.0 = self.max_regs.0.max(evicted.wts);
                    self.max_regs.1 = self.max_regs.1.max(evicted.rts);
                }
            }
        }
        out.cycles
    }

    /// Current metadata view of a granule (reconstructed if approximate) —
    /// for tests and debugging; charges no cycles.
    pub fn peek(&self, granule: Granule) -> TxMetadata {
        match self.precise.get(granule.raw()) {
            Some(m) => *m,
            None => match self.approx_mode {
                ApproxMode::RecencyBloom => {
                    let a = self.approx.lookup(granule.raw());
                    TxMetadata::from_approx(a.wts, a.rts)
                }
                ApproxMode::MaxRegisters => {
                    TxMetadata::from_approx(self.max_regs.0, self.max_regs.1)
                }
            },
        }
    }

    /// Statistics counters.
    pub fn stats(&self) -> VuStats {
        self.stats
    }

    /// Mean metadata-access latency in cycles (Fig. 13).
    pub fn mean_access_cycles(&self) -> f64 {
        self.precise.mean_access_cycles()
    }

    /// Current stall-buffer occupancy.
    pub fn stalled_requests(&self) -> usize {
        self.stall.total_occupancy()
    }

    /// Stall-buffer high-water mark (Fig. 15).
    pub fn max_stalled(&self) -> u64 {
        self.stall.max_occupancy()
    }

    /// Mean concurrent waiters per stalled address (Fig. 16).
    pub fn mean_waiters_per_addr(&self) -> f64 {
        self.stall.mean_waiters_per_addr()
    }

    /// Precise-table occupancy.
    pub fn precise_len(&self) -> usize {
        self.precise.len()
    }

    /// Overflow-region high-water mark (the paper reports it was never hit).
    pub fn max_overflow(&self) -> usize {
        self.precise.max_overflow()
    }

    /// Flushes all metadata and aborts all stalled requests (rollover).
    /// Returns the drained stalled requests so the engine can abort them.
    pub fn flush(&mut self) -> Vec<AccessRequest> {
        self.precise.drain_filter(|_, _| true);
        self.approx.clear();
        self.max_regs = (0, 0);
        self.stall.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::Addr;
    use gpu_simt::GlobalWarpId;

    fn vu() -> ValidationUnit {
        let mut rng = DetRng::seeded(42);
        ValidationUnit::new(GetmConfig::default(), &mut rng)
    }

    fn load(wid: u32, warpts: u64, g: u64) -> AccessRequest {
        AccessRequest {
            granule: Granule(g),
            addr: Addr(g * 32),
            wid: GlobalWarpId(wid),
            warpts,
            kind: AccessKind::Load,
            token: 0,
        }
    }

    fn store(wid: u32, warpts: u64, g: u64) -> AccessRequest {
        AccessRequest {
            kind: AccessKind::Store,
            ..load(wid, warpts, g)
        }
    }

    fn assert_success(out: &AccessOutcome) -> AccessReply {
        let r = out.reply.expect("expected a reply");
        assert_eq!(r.kind, ReplyKind::Success, "expected success, got {r:?}");
        r
    }

    fn assert_abort(out: &AccessOutcome) -> u64 {
        abort_details(out).0
    }

    fn abort_details(out: &AccessOutcome) -> (u64, AbortCause) {
        match out.reply.expect("expected a reply").kind {
            ReplyKind::Abort { cause_ts, cause } => (cause_ts, cause),
            ReplyKind::Success => panic!("expected abort"),
        }
    }

    #[test]
    fn fresh_load_succeeds_and_sets_rts() {
        let mut v = vu();
        let out = v.access(load(1, 20, 7), || 99);
        let r = assert_success(&out);
        assert_eq!(r.value, 99);
        assert_eq!(v.peek(Granule(7)).rts, 20);
        assert_eq!(v.peek(Granule(7)).wts, 0);
    }

    #[test]
    fn fresh_store_reserves_and_bumps_wts() {
        let mut v = vu();
        let out = v.access(store(1, 20, 7), || 0);
        assert_success(&out);
        let m = v.peek(Granule(7));
        assert_eq!(m.wts, 21);
        assert_eq!(m.writes, 1);
        assert!(m.owned_by(GlobalWarpId(1)));
    }

    #[test]
    fn load_older_than_wts_aborts_with_wts_cause() {
        let mut v = vu();
        assert_success(&v.access(store(1, 20, 7), || 0)); // wts = 21
        let cause = assert_abort(&v.access(load(2, 10, 7), || 0));
        assert_eq!(cause, 21);
        assert_eq!(v.stats().aborts, 1);
    }

    #[test]
    fn store_older_than_rts_aborts() {
        let mut v = vu();
        assert_success(&v.access(load(1, 30, 7), || 0)); // rts = 30
        let cause = assert_abort(&v.access(store(2, 10, 7), || 0));
        assert_eq!(cause, 30);
    }

    #[test]
    fn younger_access_to_reserved_granule_queues() {
        let mut v = vu();
        assert_success(&v.access(store(1, 10, 7), || 0)); // wts=11, locked by w1
                                                          // w2 at warpts 22 passes the timestamp check but finds the lock.
        let out = v.access(load(2, 22, 7), || 0);
        assert!(out.reply.is_none(), "younger access should queue");
        assert_eq!(v.stats().queued, 1);
        assert_eq!(v.stalled_requests(), 1);
    }

    #[test]
    fn release_wakes_queued_load() {
        let mut v = vu();
        assert_success(&v.access(store(1, 10, 7), || 0));
        assert!(v.access(load(2, 22, 7), || 0).reply.is_none());
        let (woken, _) = v.release(Granule(7), 1, |_| 123);
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].reply.kind, ReplyKind::Success);
        assert_eq!(woken[0].reply.value, 123);
        assert_eq!(v.stalled_requests(), 0);
        // rts advanced to the woken load's warpts.
        assert_eq!(v.peek(Granule(7)).rts, 22);
    }

    #[test]
    fn release_wakes_oldest_first_and_store_relocks() {
        let mut v = vu();
        assert_success(&v.access(store(1, 10, 7), || 0));
        // Two younger stores queue behind the lock.
        assert!(v.access(store(2, 30, 7), || 0).reply.is_none());
        assert!(v.access(store(3, 20, 7), || 0).reply.is_none());
        let (woken, _) = v.release(Granule(7), 1, |_| 0);
        // Oldest (warpts 20, wid 3) wakes and re-locks; the other stays.
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].request.wid, GlobalWarpId(3));
        assert_eq!(woken[0].reply.kind, ReplyKind::Success);
        assert!(v.peek(Granule(7)).owned_by(GlobalWarpId(3)));
        assert_eq!(v.stalled_requests(), 1);
    }

    #[test]
    fn owner_reaccess_bypasses_timestamp_checks() {
        let mut v = vu();
        assert_success(&v.access(store(1, 10, 7), || 0)); // wts=11
                                                          // The owner's own load succeeds even though warpts < wts.
        let r = assert_success(&v.access(load(1, 10, 7), || 5));
        assert_eq!(r.value, 5);
        // Repeated store increments #writes without touching wts.
        assert_success(&v.access(store(1, 10, 7), || 0));
        let m = v.peek(Granule(7));
        assert_eq!(m.writes, 2);
        assert_eq!(m.wts, 11);
    }

    #[test]
    fn multi_write_release_requires_full_count() {
        let mut v = vu();
        assert_success(&v.access(store(1, 10, 7), || 0));
        assert_success(&v.access(store(1, 10, 7), || 0)); // writes = 2
        assert!(v.access(load(2, 30, 7), || 0).reply.is_none());
        // Partial release leaves the lock held.
        let (woken, _) = v.release(Granule(7), 1, |_| 0);
        assert!(woken.is_empty());
        let (woken, _) = v.release(Granule(7), 1, |_| 7);
        assert_eq!(woken.len(), 1);
    }

    #[test]
    fn full_stall_buffer_aborts() {
        let mut v = vu();
        assert_success(&v.access(store(1, 0, 7), || 0));
        // Fill the 4-entry line for granule 7.
        for wid in 2..6 {
            assert!(v.access(load(wid, 50, 7), || 0).reply.is_none());
        }
        let cause = assert_abort(&v.access(load(9, 60, 7), || 0));
        assert!(cause >= 1);
        assert_eq!(v.stats().stall_full_aborts, 1);
    }

    #[test]
    fn timestamps_not_rolled_back_after_abort() {
        let mut v = vu();
        assert_success(&v.access(load(1, 40, 7), || 0)); // rts = 40
                                                         // A store at warpts 10 aborts, but rts stays 40.
        assert_abort(&v.access(store(2, 10, 7), || 0));
        assert_eq!(v.peek(Granule(7)).rts, 40);
    }

    #[test]
    fn eviction_overestimates_dont_lose_recency() {
        // Saturate a tiny precise table with unlocked read entries, then
        // confirm timestamp checks still abort stale writers via the
        // approximate table.
        let mut rng = DetRng::seeded(9);
        let cfg = GetmConfig {
            cuckoo: CuckooConfig {
                total_entries: 16,
                ..CuckooConfig::default()
            },
            bloom_entries_per_way: 16,
            bloom_ways: 4,
            stall: StallConfig::default(),
            ..GetmConfig::default()
        };
        let mut v = ValidationUnit::new(cfg, &mut rng);
        for g in 0..200u64 {
            assert_success(&v.access(load(1, 50, g), || 0));
        }
        // Every granule's rts bound must still be >= 50, so old stores abort.
        for g in 0..200u64 {
            let out = v.access(store(2, 10, g), || 0);
            assert_abort(&out);
        }
    }

    #[test]
    fn max_register_mode_inflates_reconstructions() {
        // The paper's rejected design: after ONE hot eviction, every miss
        // reconstructs with the global maximum, so even untouched
        // granules look recently accessed.
        let mut rng = DetRng::seeded(9);
        let cfg = GetmConfig {
            cuckoo: CuckooConfig {
                total_entries: 16,
                ..CuckooConfig::default()
            },
            bloom_entries_per_way: 16,
            bloom_ways: 4,
            approx_mode: crate::vu::ApproxMode::MaxRegisters,
            ..GetmConfig::default()
        };
        let mut v = ValidationUnit::new(cfg, &mut rng);
        // One granule read at a very high timestamp, then enough traffic
        // to force its eviction.
        assert_success(&v.access(load(1, 1_000_000, 999), || 0));
        for g in 0..64u64 {
            assert_success(&v.access(load(1, 1_000_000, g), || 0));
        }
        // A fresh granule's store at a modest timestamp now aborts off the
        // inflated global registers.
        let out = v.access(store(2, 10, 5_000), || 0);
        let (cause_ts, cause) = abort_details(&out);
        assert!(cause_ts >= 1_000_000);
        assert_eq!(
            cause,
            AbortCause::Approx,
            "metadata came from the registers"
        );
    }

    #[test]
    fn abort_causes_follow_the_taxonomy() {
        let mut v = vu();
        assert_success(&v.access(store(1, 20, 7), || 0)); // wts = 21, locked
                                                          // Stale load against the precise entry: eager WAR detection.
        assert_eq!(
            abort_details(&v.access(load(2, 10, 7), || 0)).1,
            AbortCause::War
        );
        // Stale store against the precise entry: lost the lock check.
        assert_eq!(
            abort_details(&v.access(store(3, 10, 7), || 0)).1,
            AbortCause::LockConflict
        );
        // Fill granule 7's stall-buffer line, then overflow it.
        for wid in 4..8 {
            assert!(v.access(load(wid, 50, 7), || 0).reply.is_none());
        }
        assert_eq!(
            abort_details(&v.access(load(9, 60, 7), || 0)).1,
            AbortCause::StallFull
        );
    }

    #[test]
    fn disabled_stall_buffer_aborts_instead_of_queueing() {
        let mut rng = DetRng::seeded(10);
        let cfg = GetmConfig {
            disable_stall_buffer: true,
            ..GetmConfig::default()
        };
        let mut v = ValidationUnit::new(cfg, &mut rng);
        assert_success(&v.access(store(1, 10, 7), || 0));
        // A younger access that would normally queue must abort.
        let out = v.access(load(2, 22, 7), || 0);
        assert_abort(&out);
        assert_eq!(v.stalled_requests(), 0);
        assert_eq!(v.stats().queued, 0);
        assert_eq!(v.stats().stall_full_aborts, 1);
    }

    #[test]
    fn flush_clears_everything() {
        let mut v = vu();
        assert_success(&v.access(store(1, 10, 7), || 0));
        assert!(v.access(load(2, 30, 7), || 0).reply.is_none());
        let stalled = v.flush();
        assert_eq!(stalled.len(), 1);
        assert_eq!(v.precise_len(), 0);
        assert_eq!(v.peek(Granule(7)), TxMetadata::default());
    }

    #[test]
    fn stats_and_gauges() {
        let mut v = vu();
        assert_success(&v.access(load(1, 1, 1), || 0));
        assert_abort(&v.access(store(2, 0, 1), || 0));
        assert_eq!(v.stats().successes, 1);
        assert_eq!(v.stats().aborts, 1);
        assert!(v.mean_access_cycles() >= 1.0);
        assert_eq!(v.max_overflow(), 0);
        assert_eq!(v.precise_len(), 1);
    }
}
