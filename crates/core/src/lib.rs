//! # getm
//!
//! The GETM protocol — GPU hardware transactional memory with **eager
//! conflict detection and lazy version management**, as proposed by Ren &
//! Lis (HPCA 2018).
//!
//! GETM replaces the two-round-trip, value-based commit validation of prior
//! GPU TMs with per-access conflict checks against distributed logical
//! timestamps, so that a transaction reaching its commit point is
//! guaranteed to succeed and its commit can stream to the LLC *off the
//! critical path*.
//!
//! The crate provides the memory-partition-side units as pure, cycle-aware
//! state machines:
//!
//! * [`meta`] — the per-granule metadata record (`wts`, `rts`, `#writes`,
//!   `owner`) of the paper's Table I.
//! * [`vu`] — the validation unit: the Fig. 6 flowchart over a precise
//!   cuckoo metadata table, an approximate recency Bloom filter, and the
//!   stall buffer.
//! * [`cu`] — the commit unit: write-log coalescing, LLC writes, and lock
//!   release.
//! * [`msg`] — the request/reply vocabulary exchanged with SIMT cores.
//! * [`rollover`] — the logical-timestamp rollover protocol.
//!
//! The units are deliberately independent of the interconnect: the `gputm`
//! facade moves messages and charges crossbar/LLC timing, while everything
//! decided *at* the partition is decided here. This makes the protocol
//! directly unit-testable — see the Fig. 7 walkthrough test in
//! `tests/walkthrough.rs`.

#![warn(missing_docs)]

pub mod cu;
pub mod meta;
pub mod msg;
pub mod rollover;
pub mod vu;

pub use cu::CommitUnit;
pub use meta::TxMetadata;
pub use msg::{AccessKind, AccessReply, AccessRequest, CommitEntry, ReplyKind};
pub use rollover::RolloverCoordinator;
pub use vu::{ApproxMode, GetmConfig, ValidationUnit, VuStats};
