//! The commit unit: off-critical-path commit and abort processing.
//!
//! Because GETM detects conflicts eagerly, a transaction that reaches its
//! commit point is guaranteed to commit. The SIMT core therefore serializes
//! the warp's write logs, ships them to the commit units at the relevant
//! partitions, and *moves on* — no validation, no acknowledgement. Each
//! commit unit coalesces the entries per granule, writes the data to the
//! LLC, and releases the write reservations via the co-located validation
//! unit. Abort logs follow the same path minus the data.
//!
//! The commit unit runs at half the validation-unit clock (Table II), which
//! the engine models as two core cycles per drained region.

use crate::msg::CommitEntry;
use tm_structs::{CoalescedWrite, CoalescingBuffer};

/// Counters exposed by a commit unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuStats {
    /// Commit-log entries received (with data).
    pub commit_entries: u64,
    /// Abort-cleanup entries received (no data).
    pub abort_entries: u64,
    /// Coalesced regions written to the LLC.
    pub regions_written: u64,
    /// Log batches accepted (one per warp commit/abort region shipped here).
    pub batches: u64,
}

/// One partition's commit unit.
#[derive(Debug, Default)]
pub struct CommitUnit {
    buffer: CoalescingBuffer,
    stats: CuStats,
}

impl CommitUnit {
    /// Creates an idle commit unit.
    pub fn new() -> Self {
        CommitUnit::default()
    }

    /// Accepts a batch of commit/abort log entries from one warp.
    ///
    /// Returns this partition's batch stamp: a per-unit monotonic sequence
    /// number identifying the order in which log regions were accepted.
    /// Because a commit unit applies batches in acceptance order, the stamp
    /// fixes the local apply order of committed writes — history recording
    /// and traces use it to correlate commit application with core-side
    /// commit decisions.
    pub fn receive(&mut self, entries: &[CommitEntry]) -> u64 {
        let stamp = self.stats.batches;
        self.stats.batches += 1;
        for e in entries {
            if e.data.is_some() {
                self.stats.commit_entries += 1;
            } else {
                self.stats.abort_entries += 1;
            }
            self.buffer.push(e.granule.raw(), e.data, e.writes);
        }
        stamp
    }

    /// Drains every coalesced region, ready to be applied to the LLC and
    /// released at the validation unit. Each drained region costs the
    /// commit-unit service time (two core cycles at the half-rate clock,
    /// charged by the engine).
    pub fn drain(&mut self) -> Vec<CoalescedWrite> {
        let regions = self.buffer.drain();
        self.stats.regions_written += regions.len() as u64;
        regions
    }

    /// Whether work is pending.
    pub fn has_pending(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Statistics counters.
    pub fn stats(&self) -> CuStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::{Addr, Granule};

    fn commit(g: u64, v: u64, w: u32) -> CommitEntry {
        CommitEntry {
            granule: Granule(g),
            addr: Addr(g * 32),
            data: Some(v),
            writes: w,
        }
    }

    fn cleanup(g: u64, w: u32) -> CommitEntry {
        CommitEntry {
            granule: Granule(g),
            addr: Addr(g * 32),
            data: None,
            writes: w,
        }
    }

    #[test]
    fn coalesces_commit_entries() {
        let mut cu = CommitUnit::new();
        let stamp = cu.receive(&[commit(1, 10, 1), commit(1, 20, 2), commit(2, 30, 1)]);
        assert_eq!(stamp, 0);
        assert!(cu.has_pending());
        let out = cu.drain();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].granule, 1);
        assert_eq!(out[0].data, Some(20));
        assert_eq!(out[0].writes, 3);
        assert_eq!(out[1].granule, 2);
        assert!(!cu.has_pending());
    }

    #[test]
    fn abort_cleanup_has_no_data() {
        let mut cu = CommitUnit::new();
        cu.receive(&[cleanup(5, 2)]);
        let out = cu.drain();
        assert_eq!(out[0].data, None);
        assert_eq!(out[0].writes, 2);
        assert_eq!(cu.stats().abort_entries, 1);
        assert_eq!(cu.stats().commit_entries, 0);
    }

    #[test]
    fn stats_count_regions() {
        let mut cu = CommitUnit::new();
        cu.receive(&[commit(1, 1, 1), commit(2, 2, 1), cleanup(3, 1)]);
        cu.drain();
        let s = cu.stats();
        assert_eq!(s.commit_entries, 2);
        assert_eq!(s.abort_entries, 1);
        assert_eq!(s.regions_written, 3);
        assert_eq!(s.batches, 1);
    }

    #[test]
    fn batch_stamps_are_monotonic() {
        let mut cu = CommitUnit::new();
        assert_eq!(cu.receive(&[commit(1, 1, 1)]), 0);
        assert_eq!(cu.receive(&[cleanup(2, 1)]), 1);
        assert_eq!(cu.receive(&[]), 2);
        assert_eq!(cu.stats().batches, 3);
    }
}
