//! Commit-time write coalescing (paper Sec. V-C).
//!
//! The commit unit receives per-thread write-log entries from a committing
//! (or aborting) warp, merges multiple writes to the same metadata-granule
//! region, and drains them to the LLC at the commit-unit bandwidth. In GETM
//! only the *write* log travels, so the buffer is half the size of the one
//! WarpTM needs — the size difference is accounted in the silicon model, not
//! here; this structure models the merging behaviour and drain order.

use std::collections::BTreeMap;

/// One coalesced region ready to be written to the LLC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedWrite {
    /// Metadata-granule address (already shifted to granule units).
    pub granule: u64,
    /// Last-writer-wins payload for the region, if any write carried data
    /// (aborting transactions send only address + count for cleanup).
    pub data: Option<u64>,
    /// Total `#writes` count accumulated for the region; the validation
    /// unit's lock release subtracts this from the line's `#writes` field.
    pub writes: u32,
}

/// The coalescing buffer of one commit unit.
///
/// ```
/// use tm_structs::CoalescingBuffer;
///
/// let mut cb = CoalescingBuffer::new();
/// cb.push(0x4, Some(11), 1);
/// cb.push(0x4, Some(22), 2); // same granule: merged, last write wins
/// cb.push(0x8, None, 1);     // cleanup entry (abort)
/// let drained = cb.drain();
/// assert_eq!(drained.len(), 2);
/// assert_eq!(drained[0].granule, 0x4);
/// assert_eq!(drained[0].data, Some(22));
/// assert_eq!(drained[0].writes, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoalescingBuffer {
    regions: BTreeMap<u64, (Option<u64>, u32)>,
    pushes: u64,
}

impl CoalescingBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        CoalescingBuffer::default()
    }

    /// Adds one write-log entry for `granule`.
    ///
    /// `data` is `Some` for committing threads (write data travels) and
    /// `None` for aborting threads (cleanup only). `writes` is the number of
    /// coalesced writes the entry represents.
    pub fn push(&mut self, granule: u64, data: Option<u64>, writes: u32) {
        self.pushes += 1;
        let slot = self.regions.entry(granule).or_insert((None, 0));
        if data.is_some() {
            slot.0 = data; // last write wins within a commit
        }
        slot.1 += writes;
    }

    /// Number of distinct regions currently buffered.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Raw (pre-coalescing) entries pushed over the buffer's lifetime.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Drains all coalesced regions in address order, leaving the buffer
    /// empty. Address order matches the sequential LLC write-port drain.
    pub fn drain(&mut self) -> Vec<CoalescedWrite> {
        let regions = std::mem::take(&mut self.regions);
        regions
            .into_iter()
            .map(|(granule, (data, writes))| CoalescedWrite {
                granule,
                data,
                writes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merges_same_granule() {
        let mut cb = CoalescingBuffer::new();
        cb.push(1, Some(10), 1);
        cb.push(1, Some(20), 1);
        cb.push(1, None, 2);
        let out = cb.drain();
        assert_eq!(
            out,
            vec![CoalescedWrite {
                granule: 1,
                data: Some(20),
                writes: 4
            }]
        );
        assert!(cb.is_empty());
        assert_eq!(cb.pushes(), 3);
    }

    #[test]
    fn cleanup_only_entries_have_no_data() {
        let mut cb = CoalescingBuffer::new();
        cb.push(7, None, 3);
        let out = cb.drain();
        assert_eq!(out[0].data, None);
        assert_eq!(out[0].writes, 3);
    }

    #[test]
    fn data_survives_later_cleanup_merge() {
        // A committing thread's data must not be erased by an aborting
        // thread's cleanup entry for the same granule.
        let mut cb = CoalescingBuffer::new();
        cb.push(7, Some(5), 1);
        cb.push(7, None, 1);
        let out = cb.drain();
        assert_eq!(out[0].data, Some(5));
        assert_eq!(out[0].writes, 2);
    }

    #[test]
    fn drain_is_address_ordered() {
        let mut cb = CoalescingBuffer::new();
        cb.push(9, None, 1);
        cb.push(3, None, 1);
        cb.push(6, None, 1);
        let order: Vec<u64> = cb.drain().iter().map(|w| w.granule).collect();
        assert_eq!(order, vec![3, 6, 9]);
    }

    #[test]
    fn empty_drain() {
        let mut cb = CoalescingBuffer::new();
        assert!(cb.drain().is_empty());
        assert_eq!(cb.len(), 0);
    }

    proptest! {
        /// The sum of write counts is conserved through coalescing.
        #[test]
        fn write_counts_conserved(entries in proptest::collection::vec((0u64..16, 1u32..5), 1..100)) {
            let mut cb = CoalescingBuffer::new();
            let mut total = 0u32;
            for &(g, w) in &entries {
                cb.push(g, Some(w as u64), w);
                total += w;
            }
            let drained: u32 = cb.drain().iter().map(|c| c.writes).sum();
            prop_assert_eq!(drained, total);
        }

        /// Coalescing never produces more regions than distinct granules.
        #[test]
        fn region_count_bounded(entries in proptest::collection::vec(0u64..8, 1..100)) {
            let mut cb = CoalescingBuffer::new();
            for &g in &entries {
                cb.push(g, None, 1);
            }
            let distinct = {
                let mut v = entries.clone();
                v.sort_unstable();
                v.dedup();
                v.len()
            };
            prop_assert_eq!(cb.len(), distinct);
        }
    }
}
