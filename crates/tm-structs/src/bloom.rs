//! The recency Bloom filter: approximate `wts`/`rts` tracking for addresses
//! that are no longer held by any in-flight transaction.
//!
//! When the precise metadata table evicts an unlocked entry, its timestamps
//! fold into this structure (paper Sec. V-B1). The filter has several ways,
//! each indexed by an independent H3 hash; every entry stores the maximum
//! `wts` and `rts` of all addresses that mapped to it. Lookups return the
//! *minimum* across ways, so the reported timestamps are always at least the
//! true ones (overestimate-only error): stale overestimates can only cause
//! extra aborts, never a consistency violation.

use crate::h3::H3Family;
use sim_core::DetRng;

/// A pair of approximate timestamps returned by a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApproxTs {
    /// Upper bound on the location's last-write timestamp.
    pub wts: u64,
    /// Upper bound on the location's last-read timestamp.
    pub rts: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    wts: u64,
    rts: u64,
}

/// The recency Bloom filter.
///
/// ```
/// use tm_structs::RecencyBloom;
/// use sim_core::DetRng;
///
/// let mut rng = DetRng::seeded(3);
/// let mut f = RecencyBloom::new(4, 1024, &mut rng);
/// f.insert(0x80, 17, 12);
/// let ts = f.lookup(0x80);
/// assert!(ts.wts >= 17 && ts.rts >= 12);
/// ```
#[derive(Debug, Clone)]
pub struct RecencyBloom {
    hashes: H3Family,
    ways: Vec<Vec<Cell>>,
    inserts: u64,
}

impl RecencyBloom {
    /// Creates a filter with `ways` ways of `entries_per_way` cells each.
    ///
    /// The paper's configuration is four ways totalling 1K entries GPU-wide.
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `entries_per_way` is zero.
    pub fn new(ways: usize, entries_per_way: usize, rng: &mut DetRng) -> Self {
        assert!(ways > 0 && entries_per_way > 0);
        let hashes = H3Family::generate(rng, ways, entries_per_way as u64);
        RecencyBloom {
            hashes,
            ways: vec![vec![Cell::default(); entries_per_way]; ways],
            inserts: 0,
        }
    }

    /// Folds an evicted address's timestamps into the filter.
    ///
    /// Each way's cell only moves upward (max-merge), so hash collisions can
    /// inflate but never deflate the stored bounds.
    pub fn insert(&mut self, key: u64, wts: u64, rts: u64) {
        self.inserts += 1;
        for (w, way) in self.ways.iter_mut().enumerate() {
            let i = self.hashes.hash(w, key) as usize;
            let cell = &mut way[i];
            cell.wts = cell.wts.max(wts);
            cell.rts = cell.rts.max(rts);
        }
    }

    /// Returns the tightest available upper bound on `key`'s timestamps: the
    /// per-field minimum across ways.
    pub fn lookup(&self, key: u64) -> ApproxTs {
        let mut wts = u64::MAX;
        let mut rts = u64::MAX;
        for (w, way) in self.ways.iter().enumerate() {
            let i = self.hashes.hash(w, key) as usize;
            wts = wts.min(way[i].wts);
            rts = rts.min(way[i].rts);
        }
        ApproxTs { wts, rts }
    }

    /// Resets every cell to zero (used by the timestamp-rollover flush).
    pub fn clear(&mut self) {
        for way in &mut self.ways {
            for cell in way.iter_mut() {
                *cell = Cell::default();
            }
        }
    }

    /// Number of insertions performed.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways.len()
    }

    /// Cells per way.
    pub fn entries_per_way(&self) -> usize {
        self.ways[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn filter(entries: usize) -> RecencyBloom {
        let mut rng = DetRng::seeded(21);
        RecencyBloom::new(4, entries, &mut rng)
    }

    #[test]
    fn empty_filter_reports_zero() {
        let f = filter(256);
        assert_eq!(f.lookup(0x1234), ApproxTs { wts: 0, rts: 0 });
    }

    #[test]
    fn lookup_bounds_inserted_values() {
        let mut f = filter(256);
        f.insert(0x40, 10, 20);
        let ts = f.lookup(0x40);
        assert!(ts.wts >= 10);
        assert!(ts.rts >= 20);
    }

    #[test]
    fn max_merge_on_reinsert() {
        let mut f = filter(256);
        f.insert(0x40, 10, 20);
        f.insert(0x40, 5, 30); // lower wts must not regress the bound
        let ts = f.lookup(0x40);
        assert!(ts.wts >= 10);
        assert!(ts.rts >= 30);
    }

    #[test]
    fn discriminates_between_addresses() {
        // With few insertions into a reasonably sized filter, an untouched
        // address should usually see small bounds — the min-across-ways is
        // what distinguishes this from a single max register.
        let mut f = filter(1024);
        f.insert(0x40, 1_000_000, 1_000_000);
        let clean = (1..200u64)
            .map(|k| f.lookup(k * 32 + 7))
            .filter(|ts| ts.wts == 0 && ts.rts == 0)
            .count();
        assert!(clean > 150, "only {clean} clean addresses out of 199");
    }

    #[test]
    fn clear_resets() {
        let mut f = filter(64);
        f.insert(0x40, 7, 8);
        f.clear();
        assert_eq!(f.lookup(0x40), ApproxTs { wts: 0, rts: 0 });
        assert_eq!(f.inserts(), 1);
    }

    #[test]
    fn geometry_accessors() {
        let f = filter(64);
        assert_eq!(f.ways(), 4);
        assert_eq!(f.entries_per_way(), 64);
    }

    proptest! {
        /// Overestimate-only: for every inserted key the lookup is >= the
        /// running max of what was inserted for that key, regardless of
        /// collisions.
        #[test]
        fn never_underestimates(
            inserts in proptest::collection::vec((0u64..512, 0u64..1000, 0u64..1000), 1..300)
        ) {
            let mut f = filter(64); // small filter: force collisions
            let mut truth: HashMap<u64, (u64, u64)> = HashMap::new();
            for (k, w, r) in inserts {
                f.insert(k, w, r);
                let e = truth.entry(k).or_insert((0, 0));
                e.0 = e.0.max(w);
                e.1 = e.1.max(r);
            }
            for (k, (w, r)) in truth {
                let ts = f.lookup(k);
                prop_assert!(ts.wts >= w, "wts bound {} < truth {} for key {}", ts.wts, w, k);
                prop_assert!(ts.rts >= r, "rts bound {} < truth {} for key {}", ts.rts, r, k);
            }
        }

        /// The min-across-ways bound is never looser than any single way
        /// would be (i.e. the filter beats the single-register design the
        /// paper first tried).
        #[test]
        fn tighter_than_global_max(
            inserts in proptest::collection::vec((0u64..512, 0u64..1000), 2..200)
        ) {
            let mut f = filter(256);
            let mut global_max = 0u64;
            for &(k, w) in &inserts {
                f.insert(k, w, w);
                global_max = global_max.max(w);
            }
            for &(k, _) in &inserts {
                let ts = f.lookup(k);
                prop_assert!(ts.wts <= global_max);
            }
        }
    }
}
