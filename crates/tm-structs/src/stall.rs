//! The stall buffer (paper Sec. V-B2, Fig. 9).
//!
//! Transactional requests that pass the timestamp check but find their
//! target line write-reserved by a logically *earlier* transaction are
//! queued here instead of aborting. When the reserving transaction commits
//! or aborts (its `#writes` count reaches zero), the oldest queued request —
//! the one with the minimum `warpts` — re-enters the validation unit. A full
//! buffer aborts the requester instead.

use sim_core::{MaxTracker, RatioStat};
use std::collections::BTreeMap;

/// Configuration for a [`StallBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallConfig {
    /// Distinct addresses the buffer can track (lines). The paper sizes this
    /// to 4 per partition.
    pub lines: usize,
    /// Queued requests per address. The paper uses 4.
    pub entries_per_line: usize,
}

impl Default for StallConfig {
    fn default() -> Self {
        StallConfig {
            lines: 4,
            entries_per_line: 4,
        }
    }
}

/// Why an enqueue was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallError {
    /// All address lines are occupied by other addresses.
    NoFreeLine,
    /// The line for this address is full.
    LineFull,
}

impl std::fmt::Display for StallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallError::NoFreeLine => write!(f, "stall buffer has no free address line"),
            StallError::LineFull => write!(f, "stall buffer line for this address is full"),
        }
    }
}

impl std::error::Error for StallError {}

#[derive(Debug, Clone)]
struct Waiter<T> {
    warpts: u64,
    seq: u64,
    payload: T,
}

/// The per-partition stall buffer.
///
/// ```
/// use tm_structs::{StallBuffer, StallConfig};
///
/// let mut sb: StallBuffer<&str> = StallBuffer::new(StallConfig::default());
/// sb.enqueue(0x40, 12, "late").unwrap();
/// sb.enqueue(0x40, 7, "early").unwrap();
/// // Oldest (minimum warpts) wakes first.
/// assert_eq!(sb.wake_one(0x40), Some("early"));
/// assert_eq!(sb.wake_one(0x40), Some("late"));
/// assert_eq!(sb.wake_one(0x40), None);
/// ```
#[derive(Debug, Clone)]
pub struct StallBuffer<T> {
    cfg: StallConfig,
    lines: BTreeMap<u64, Vec<Waiter<T>>>,
    next_seq: u64,
    occupancy_max: MaxTracker,
    waiters_per_addr: RatioStat,
}

impl<T> StallBuffer<T> {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero lines or entries.
    pub fn new(cfg: StallConfig) -> Self {
        assert!(cfg.lines > 0 && cfg.entries_per_line > 0);
        StallBuffer {
            cfg,
            lines: BTreeMap::new(),
            next_seq: 0,
            occupancy_max: MaxTracker::new(),
            waiters_per_addr: RatioStat::new(),
        }
    }

    /// Queues a request for `addr` made at logical time `warpts`.
    ///
    /// # Errors
    ///
    /// [`StallError::NoFreeLine`] if the buffer tracks `lines` other
    /// addresses already; [`StallError::LineFull`] if this address's line is
    /// at capacity. In either case the caller must abort the transaction.
    pub fn enqueue(&mut self, addr: u64, warpts: u64, payload: T) -> Result<(), StallError> {
        if !self.lines.contains_key(&addr) && self.lines.len() >= self.cfg.lines {
            return Err(StallError::NoFreeLine);
        }
        let line = self.lines.entry(addr).or_default();
        if line.len() >= self.cfg.entries_per_line {
            return Err(StallError::LineFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        line.push(Waiter {
            warpts,
            seq,
            payload,
        });
        self.waiters_per_addr.observe(line.len() as f64);
        self.occupancy_max.observe(self.total_occupancy() as u64);
        Ok(())
    }

    /// Wakes the oldest (minimum `warpts`, ties broken by arrival order)
    /// waiter on `addr`, removing it from the buffer.
    pub fn wake_one(&mut self, addr: u64) -> Option<T> {
        let line = self.lines.get_mut(&addr)?;
        let best = line
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.warpts, w.seq))
            .map(|(i, _)| i)?;
        let waiter = line.remove(best);
        if line.is_empty() {
            self.lines.remove(&addr);
        }
        Some(waiter.payload)
    }

    /// Wakes *all* waiters on `addr` in oldest-first order.
    pub fn wake_all(&mut self, addr: u64) -> Vec<T> {
        let mut line = match self.lines.remove(&addr) {
            Some(l) => l,
            None => return Vec::new(),
        };
        line.sort_by_key(|w| (w.warpts, w.seq));
        line.into_iter().map(|w| w.payload).collect()
    }

    /// Whether any request is queued on `addr`.
    pub fn has_waiters(&self, addr: u64) -> bool {
        self.lines.contains_key(&addr)
    }

    /// Total queued requests across all addresses.
    pub fn total_occupancy(&self) -> usize {
        self.lines.values().map(Vec::len).sum()
    }

    /// Number of distinct addresses with waiters.
    pub fn addresses(&self) -> usize {
        self.lines.len()
    }

    /// High-water mark of total occupancy (Fig. 15 input).
    pub fn max_occupancy(&self) -> u64 {
        self.occupancy_max.max()
    }

    /// Mean concurrent waiters per address at enqueue time (Fig. 16 input).
    pub fn mean_waiters_per_addr(&self) -> f64 {
        self.waiters_per_addr.mean()
    }

    /// Drains everything (rollover flush), oldest-first per address.
    pub fn drain(&mut self) -> Vec<T> {
        let addrs: Vec<u64> = self.lines.keys().copied().collect();
        let mut out = Vec::new();
        for a in addrs {
            out.extend(self.wake_all(a));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn buf() -> StallBuffer<u32> {
        StallBuffer::new(StallConfig::default())
    }

    #[test]
    fn min_warpts_wakes_first() {
        let mut sb = buf();
        sb.enqueue(1, 30, 300).unwrap();
        sb.enqueue(1, 10, 100).unwrap();
        sb.enqueue(1, 20, 200).unwrap();
        assert_eq!(sb.wake_one(1), Some(100));
        assert_eq!(sb.wake_one(1), Some(200));
        assert_eq!(sb.wake_one(1), Some(300));
        assert_eq!(sb.wake_one(1), None);
        assert!(!sb.has_waiters(1));
    }

    #[test]
    fn ties_break_by_arrival_order() {
        let mut sb = buf();
        sb.enqueue(1, 5, 1).unwrap();
        sb.enqueue(1, 5, 2).unwrap();
        assert_eq!(sb.wake_one(1), Some(1));
        assert_eq!(sb.wake_one(1), Some(2));
    }

    #[test]
    fn line_capacity_enforced() {
        let mut sb = buf();
        for i in 0..4 {
            sb.enqueue(1, i, i as u32).unwrap();
        }
        assert_eq!(sb.enqueue(1, 9, 9), Err(StallError::LineFull));
    }

    #[test]
    fn line_count_enforced() {
        let mut sb = buf();
        for a in 0..4u64 {
            sb.enqueue(a, 0, a as u32).unwrap();
        }
        assert_eq!(sb.enqueue(99, 0, 0), Err(StallError::NoFreeLine));
        // Existing address still accepts.
        sb.enqueue(3, 1, 1).unwrap();
    }

    #[test]
    fn wake_frees_line_for_new_address() {
        let mut sb = buf();
        for a in 0..4u64 {
            sb.enqueue(a, 0, a as u32).unwrap();
        }
        assert_eq!(sb.wake_one(0), Some(0));
        sb.enqueue(99, 0, 42).unwrap();
        assert_eq!(sb.wake_one(99), Some(42));
    }

    #[test]
    fn wake_all_is_sorted() {
        let mut sb = buf();
        sb.enqueue(1, 3, 3).unwrap();
        sb.enqueue(1, 1, 1).unwrap();
        sb.enqueue(1, 2, 2).unwrap();
        assert_eq!(sb.wake_all(1), vec![1, 2, 3]);
        assert_eq!(sb.total_occupancy(), 0);
    }

    #[test]
    fn stats_track_occupancy() {
        let mut sb = buf();
        sb.enqueue(1, 0, 0).unwrap();
        sb.enqueue(1, 1, 1).unwrap();
        sb.enqueue(2, 0, 2).unwrap();
        assert_eq!(sb.max_occupancy(), 3);
        assert_eq!(sb.addresses(), 2);
        // waiters/addr observations were 1, 2, 1 -> mean 4/3
        assert!((sb.mean_waiters_per_addr() - 4.0 / 3.0).abs() < 1e-9);
        sb.wake_all(1);
        sb.wake_all(2);
        assert_eq!(sb.max_occupancy(), 3, "high-water mark persists");
    }

    #[test]
    fn drain_empties_everything() {
        let mut sb = buf();
        sb.enqueue(5, 2, 52).unwrap();
        sb.enqueue(5, 1, 51).unwrap();
        sb.enqueue(9, 0, 90).unwrap();
        let drained = sb.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(sb.total_occupancy(), 0);
        // Per-address oldest-first order preserved within each address.
        let pos51 = drained.iter().position(|&x| x == 51).unwrap();
        let pos52 = drained.iter().position(|&x| x == 52).unwrap();
        assert!(pos51 < pos52);
    }

    #[test]
    fn error_display() {
        assert!(StallError::NoFreeLine.to_string().contains("no free"));
        assert!(StallError::LineFull.to_string().contains("full"));
    }

    proptest! {
        /// Capacity invariants hold under arbitrary operation sequences and
        /// every enqueued payload is woken exactly once.
        #[test]
        fn conservation(ops in proptest::collection::vec((0u8..2, 0u64..6, 0u64..100), 1..200)) {
            let mut sb: StallBuffer<u64> = StallBuffer::new(StallConfig::default());
            let mut enqueued = 0u64;
            let mut woken = 0u64;
            let mut next_payload = 0u64;
            for (op, addr, ts) in ops {
                if op == 0 {
                    if sb.enqueue(addr, ts, next_payload).is_ok() {
                        enqueued += 1;
                        next_payload += 1;
                    }
                } else if sb.wake_one(addr).is_some() {
                    woken += 1;
                }
                prop_assert!(sb.addresses() <= 4);
                prop_assert!(sb.total_occupancy() <= 16);
            }
            let rest = sb.drain().len() as u64;
            prop_assert_eq!(enqueued, woken + rest);
        }
    }
}
