//! The H3 universal hash family.
//!
//! An H3 hash of a `w`-bit key is the XOR of the rows of a random binary
//! matrix selected by the set bits of the key. The family is cheap in
//! hardware (one XOR tree per output bit) and gives pairwise-independent
//! hashes, which is why transactional-memory signature work — and GETM's
//! metadata tables — use it.

use sim_core::DetRng;

/// One H3 hash function over 64-bit keys producing values in `[0, buckets)`.
#[derive(Debug, Clone)]
pub struct H3Hash {
    rows: [u64; 64],
    /// Fold mask: keeps the output bits needed to cover the bucket range.
    fold_mask: u64,
    buckets: u64,
    /// Power-of-two bucket counts reduce with a mask instead of a divide.
    buckets_pow2: bool,
}

impl H3Hash {
    /// Draws a random H3 function from `rng`, mapping keys to `[0, buckets)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn generate(rng: &mut DetRng, buckets: u64) -> Self {
        assert!(buckets > 0, "H3Hash requires at least one bucket");
        let mut rows = [0u64; 64];
        for row in rows.iter_mut() {
            *row = rng.next_u64();
        }
        // Number of output bits needed to cover the bucket range.
        let mask_bits = 64 - (buckets.saturating_sub(1)).leading_zeros();
        let fold_mask = if mask_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << mask_bits.max(1)) - 1
        };
        H3Hash {
            rows,
            fold_mask,
            buckets,
            buckets_pow2: buckets.is_power_of_two(),
        }
    }

    /// Hashes `key` into `[0, buckets)`.
    ///
    /// This sits on the simulator's hottest path (several calls per
    /// metadata access), so the XOR accumulation walks only the *set* bits
    /// of the key — data-dependent branches over every bit position cost
    /// far more in mispredicts than the popcount-bounded loop.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        let mut k = key;
        while k != 0 {
            acc ^= self.rows[k.trailing_zeros() as usize];
            k &= k - 1;
        }
        // Fold down to the needed bit width, then reduce modulo the bucket
        // count (power-of-two bucket counts reduce to a mask).
        let folded = acc & self.fold_mask;
        if self.buckets_pow2 {
            folded & (self.buckets - 1)
        } else {
            folded % self.buckets
        }
    }

    /// The output range of this hash.
    pub fn buckets(&self) -> u64 {
        self.buckets
    }
}

/// A family of independent H3 hash functions, one per way of a multi-way
/// structure (cuckoo table ways, Bloom filter ways).
#[derive(Debug, Clone)]
pub struct H3Family {
    hashes: Vec<H3Hash>,
}

impl H3Family {
    /// Generates `ways` independent hash functions into `[0, buckets)`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `buckets` is zero.
    pub fn generate(rng: &mut DetRng, ways: usize, buckets: u64) -> Self {
        assert!(ways > 0, "H3Family requires at least one way");
        let hashes = (0..ways)
            .map(|i| {
                let mut way_rng = rng.fork(i as u64 + 0x8333);
                H3Hash::generate(&mut way_rng, buckets)
            })
            .collect();
        H3Family { hashes }
    }

    /// Number of ways (hash functions).
    pub fn ways(&self) -> usize {
        self.hashes.len()
    }

    /// The bucket count each hash maps into.
    pub fn buckets(&self) -> u64 {
        self.hashes[0].buckets()
    }

    /// Hash of `key` in way `way`.
    #[inline]
    pub fn hash(&self, way: usize, key: u64) -> u64 {
        self.hashes[way].hash(key)
    }

    /// All way-indices for `key`, in way order.
    pub fn all(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        self.hashes.iter().map(move |h| h.hash(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rng() -> DetRng {
        DetRng::seeded(0x1234)
    }

    #[test]
    fn hash_is_deterministic() {
        let h = H3Hash::generate(&mut rng(), 1024);
        let h2 = H3Hash::generate(&mut rng(), 1024);
        for k in 0..1000u64 {
            assert_eq!(h.hash(k), h2.hash(k));
        }
    }

    #[test]
    fn hash_in_range() {
        for buckets in [1u64, 2, 3, 7, 256, 1000, 1 << 20] {
            let h = H3Hash::generate(&mut rng(), buckets);
            for k in 0..2000u64 {
                assert!(h.hash(k * 0x9e3779b9) < buckets);
            }
        }
    }

    #[test]
    fn hash_zero_key_is_zero_xor() {
        // H3 of the all-zero key XORs no rows: always bucket 0.
        let h = H3Hash::generate(&mut rng(), 512);
        assert_eq!(h.hash(0), 0);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = H3Hash::generate(&mut rng(), 64);
        let mut counts = HashMap::new();
        let n = 64_000u64;
        for k in 1..=n {
            *counts.entry(h.hash(k)).or_insert(0u64) += 1;
        }
        // Each bucket expects ~1000; allow generous slack.
        for (&b, &c) in &counts {
            assert!(b < 64);
            assert!(c > 500 && c < 1500, "bucket {b} has count {c}");
        }
    }

    #[test]
    fn family_ways_are_distinct() {
        let fam = H3Family::generate(&mut rng(), 4, 4096);
        assert_eq!(fam.ways(), 4);
        assert_eq!(fam.buckets(), 4096);
        // For a random key the four ways should rarely agree.
        let mut collisions = 0;
        for k in 1..1000u64 {
            let idx: Vec<u64> = fam.all(k).collect();
            if idx[0] == idx[1] && idx[1] == idx[2] && idx[2] == idx[3] {
                collisions += 1;
            }
        }
        assert!(collisions < 5);
    }

    #[test]
    fn family_linear_structure() {
        // H3 is linear over GF(2): h(a ^ b) == h(a) ^ h(b) before the
        // modulo. Verify on power-of-two bucket counts where the reduction
        // is a pure mask and linearity is preserved.
        let h = H3Hash::generate(&mut rng(), 4096);
        for (a, b) in [(3u64, 12u64), (0x55, 0xAA), (1 << 40, 1 << 3)] {
            assert_eq!(h.hash(a ^ b), h.hash(a) ^ h.hash(b));
        }
    }
}
