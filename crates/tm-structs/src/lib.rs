//! # tm-structs
//!
//! Hardware-inspired data structures used by the GETM validation and commit
//! units (HPCA 2018, Sec. V), modelled at the fidelity the paper's
//! evaluation needs:
//!
//! * [`h3`] — the H3 universal hash family used to index both the cuckoo
//!   table and the recency Bloom filter.
//! * [`cuckoo`] — the precise metadata table: a 4-way cuckoo hash table with
//!   a small fully associative stash and an unbounded overflow list, which
//!   reports the number of (validation-unit) cycles each operation took.
//! * [`bloom`] — the recency Bloom filter that approximately tracks `wts`
//!   and `rts` for addresses evicted from the precise table, with
//!   *overestimate-only* error.
//! * [`stall`] — the stall buffer that queues requests which passed the
//!   timestamp check but found their target line reserved by another
//!   transaction.
//! * [`coalesce`] — the commit-time write-coalescing buffer.
//!
//! All structures are deterministic given a seed and count the "hardware"
//! cycles they consume so the timing model can charge them faithfully.

#![warn(missing_docs)]

pub mod bloom;
pub mod coalesce;
pub mod cuckoo;
pub mod h3;
pub mod stall;

pub use bloom::RecencyBloom;
pub use coalesce::{CoalescedWrite, CoalescingBuffer};
pub use cuckoo::{CuckooConfig, CuckooTable, LockState};
pub use h3::H3Family;
pub use stall::{StallBuffer, StallConfig, StallError};
