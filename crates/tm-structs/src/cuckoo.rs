//! The precise metadata table: a multi-way cuckoo hash table with a stash
//! and an unbounded overflow list.
//!
//! GETM keeps *precise* `wts`/`rts`/`#writes`/`owner` metadata for every
//! location touched by an in-flight transaction (paper Sec. V-B1, Fig. 8).
//! The table is a four-way cuckoo hash indexed by four H3 hashes, extended
//! with a small fully associative stash; insertions that would cause long
//! swap chains terminate either by spilling to the stash, by evicting an
//! entry that is not locked by any transaction (the caller receives it and
//! folds it into the approximate table), or — as a last resort — by pushing
//! into an unbounded overflow region that models spilling to main memory.
//!
//! Every operation returns how many validation-unit cycles it consumed, so
//! Fig. 13 ("mean metadata access latency") can be regenerated.

use crate::h3::H3Family;
use sim_core::{DetRng, RatioStat};

/// Whether an entry is currently locked by an in-flight transaction and
/// therefore may not be evicted from the precise table.
pub trait LockState {
    /// `true` while a transaction holds a write reservation on this entry.
    fn is_locked(&self) -> bool;
}

/// Configuration for a [`CuckooTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuckooConfig {
    /// Number of ways (independent hash functions / banks). The paper uses 4.
    pub ways: usize,
    /// Total entries across all ways; must be a multiple of `ways`.
    pub total_entries: usize,
    /// Fully associative stash capacity. The paper uses 4.
    pub stash_entries: usize,
    /// Maximum displacement chain length before the insertion falls back to
    /// stash / eviction / overflow.
    pub max_kicks: usize,
    /// Cycles charged to access main-memory overflow (round trip to the LLC
    /// where the overflow list is cached).
    pub overflow_cycles: u32,
}

impl Default for CuckooConfig {
    fn default() -> Self {
        // Paper configuration: 4-way, 4K entries GPU-wide across six
        // partitions; per-partition tables divide this. 4-entry stash.
        CuckooConfig {
            ways: 4,
            total_entries: 4096,
            stash_entries: 4,
            max_kicks: 8,
            overflow_cycles: 20,
        }
    }
}

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
}

/// Outcome of an insert-or-update, carrying the cycle cost and any entry
/// that was evicted to make room (to be folded into the approximate table).
#[derive(Debug)]
pub struct AccessOutcome<V> {
    /// Validation-unit cycles consumed by the operation (>= 1).
    pub cycles: u32,
    /// An unlocked entry displaced from the table, if the insertion had to
    /// evict one. The caller must fold it into the approximate structure.
    pub evicted: Option<(u64, V)>,
}

/// A four-way cuckoo hash table with stash and overflow, keyed by `u64`
/// (a metadata-granularity address).
///
/// ```
/// use tm_structs::{CuckooTable, CuckooConfig, LockState};
/// use sim_core::DetRng;
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Meta { locked: bool }
/// impl LockState for Meta {
///     fn is_locked(&self) -> bool { self.locked }
/// }
///
/// let mut rng = DetRng::seeded(1);
/// let mut t = CuckooTable::new(CuckooConfig::default(), &mut rng);
/// let out = t.insert(0x40, Meta { locked: false });
/// assert!(out.cycles >= 1);
/// assert_eq!(t.get(0x40).map(|m| m.locked), Some(false));
/// ```
#[derive(Debug, Clone)]
pub struct CuckooTable<V> {
    cfg: CuckooConfig,
    hashes: H3Family,
    /// `ways[w][i]` — slot `i` of way `w`.
    ways: Vec<Vec<Option<Slot<V>>>>,
    stash: Vec<Slot<V>>,
    /// Unbounded spill region (models a linked list in main memory).
    overflow: Vec<Slot<V>>,
    /// Mean access-latency statistic (Fig. 13).
    access_cycles: RatioStat,
    occupancy: usize,
    max_overflow: usize,
}

impl<V: LockState + Clone> CuckooTable<V> {
    /// Creates an empty table with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero ways or entries, or
    /// `total_entries` not divisible by `ways`).
    pub fn new(cfg: CuckooConfig, rng: &mut DetRng) -> Self {
        assert!(cfg.ways > 0 && cfg.total_entries > 0);
        assert!(
            cfg.total_entries.is_multiple_of(cfg.ways),
            "total_entries must divide evenly across ways"
        );
        let per_way = cfg.total_entries / cfg.ways;
        let hashes = H3Family::generate(rng, cfg.ways, per_way as u64);
        CuckooTable {
            cfg,
            hashes,
            ways: (0..cfg.ways).map(|_| vec![None; per_way]).collect(),
            stash: Vec::with_capacity(cfg.stash_entries),
            overflow: Vec::new(),
            access_cycles: RatioStat::new(),
            occupancy: 0,
            max_overflow: 0,
        }
    }

    /// Entries per way.
    fn per_way(&self) -> usize {
        self.cfg.total_entries / self.cfg.ways
    }

    /// Looks up `key`, charging one cycle for the parallel way+stash probe
    /// (plus the overflow penalty if the key lives there).
    ///
    /// Returns the value and the cycle cost.
    pub fn lookup(&mut self, key: u64) -> (Option<&V>, u32) {
        let mut cycles = 1;
        // Borrow-checker friendly: find location first.
        let loc = self.locate(key);
        match loc {
            Some(Location::Way(w, i)) => {
                let v = self.ways[w][i].as_ref().map(|s| &s.value);
                self.access_cycles.observe(cycles as f64);
                (v, cycles)
            }
            Some(Location::Stash(i)) => {
                let v = Some(&self.stash[i].value);
                self.access_cycles.observe(cycles as f64);
                (v, cycles)
            }
            Some(Location::Overflow(i)) => {
                cycles += self.cfg.overflow_cycles;
                self.access_cycles.observe(cycles as f64);
                (Some(&self.overflow[i].value), cycles)
            }
            None => {
                self.access_cycles.observe(cycles as f64);
                (None, cycles)
            }
        }
    }

    /// Immutable peek without charging cycles (for assertions and stats).
    pub fn get(&self, key: u64) -> Option<&V> {
        match self.locate(key)? {
            Location::Way(w, i) => self.ways[w][i].as_ref().map(|s| &s.value),
            Location::Stash(i) => Some(&self.stash[i].value),
            Location::Overflow(i) => Some(&self.overflow[i].value),
        }
    }

    /// Mutable access to an existing entry; charges one cycle (plus the
    /// overflow penalty where applicable).
    pub fn get_mut(&mut self, key: u64) -> (Option<&mut V>, u32) {
        let mut cycles = 1;
        match self.locate(key) {
            Some(Location::Way(w, i)) => {
                self.access_cycles.observe(cycles as f64);
                (self.ways[w][i].as_mut().map(|s| &mut s.value), cycles)
            }
            Some(Location::Stash(i)) => {
                self.access_cycles.observe(cycles as f64);
                (Some(&mut self.stash[i].value), cycles)
            }
            Some(Location::Overflow(i)) => {
                cycles += self.cfg.overflow_cycles;
                self.access_cycles.observe(cycles as f64);
                (Some(&mut self.overflow[i].value), cycles)
            }
            None => {
                self.access_cycles.observe(cycles as f64);
                (None, cycles)
            }
        }
    }

    /// Inserts `value` under `key`, or overwrites the existing entry.
    ///
    /// The returned [`AccessOutcome`] carries the cycle cost and any entry
    /// that was evicted to the approximate table to terminate the insertion.
    pub fn insert(&mut self, key: u64, value: V) -> AccessOutcome<V> {
        let mut cycles = 1u32;

        // Overwrite in place if present.
        match self.locate(key) {
            Some(Location::Way(w, i)) => {
                self.ways[w][i] = Some(Slot { key, value });
                self.access_cycles.observe(cycles as f64);
                return AccessOutcome {
                    cycles,
                    evicted: None,
                };
            }
            Some(Location::Stash(i)) => {
                self.stash[i].value = value;
                self.access_cycles.observe(cycles as f64);
                return AccessOutcome {
                    cycles,
                    evicted: None,
                };
            }
            Some(Location::Overflow(i)) => {
                cycles += self.cfg.overflow_cycles;
                if value.is_locked() {
                    self.overflow[i].value = value;
                    self.access_cycles.observe(cycles as f64);
                    return AccessOutcome {
                        cycles,
                        evicted: None,
                    };
                }
                // The update unlocks the entry: eject it from the slow
                // overflow region into the approximate table so future
                // accesses are fast again.
                self.overflow.swap_remove(i);
                self.occupancy -= 1;
                self.access_cycles.observe(cycles as f64);
                return AccessOutcome {
                    cycles,
                    evicted: Some((key, value)),
                };
            }
            None => {}
        }

        // Fast path: an empty candidate slot in any way.
        for w in 0..self.cfg.ways {
            let i = self.hashes.hash(w, key) as usize;
            if self.ways[w][i].is_none() {
                self.ways[w][i] = Some(Slot { key, value });
                self.occupancy += 1;
                self.access_cycles.observe(cycles as f64);
                return AccessOutcome {
                    cycles,
                    evicted: None,
                };
            }
        }

        // Cuckoo displacement chain. Each swap costs a cycle (latency;
        // the banked table stays pipelined for throughput). A displaced
        // entry that finds an empty home terminates the chain; when the
        // chain runs out, an *unlocked* entry from the current candidate
        // set is evicted into the approximate table instead — retaining
        // precise entries as long as possible keeps the Bloom filter's
        // overestimation (and hence false aborts) low.
        let mut homeless = Slot { key, value };
        for kick in 0..self.cfg.max_kicks {
            let w = kick % self.cfg.ways;
            let i = self.hashes.hash(w, homeless.key) as usize;
            cycles += 1;
            let resident = self.ways[w][i].take().expect("chain only hits full slots");
            self.ways[w][i] = Some(homeless);
            homeless = resident;
            for w2 in 0..self.cfg.ways {
                let i2 = self.hashes.hash(w2, homeless.key) as usize;
                if self.ways[w2][i2].is_none() {
                    self.ways[w2][i2] = Some(homeless);
                    self.occupancy += 1;
                    self.access_cycles.observe(cycles as f64);
                    return AccessOutcome {
                        cycles,
                        evicted: None,
                    };
                }
            }
        }

        // Chain exhausted: evict an unlocked candidate of the homeless key.
        for w in 0..self.cfg.ways {
            let i = self.hashes.hash(w, homeless.key) as usize;
            if self.ways[w][i]
                .as_ref()
                .is_some_and(|s| !s.value.is_locked())
            {
                let victim = self.ways[w][i].take().expect("just checked");
                self.ways[w][i] = Some(homeless);
                cycles += 1;
                self.access_cycles.observe(cycles as f64);
                return AccessOutcome {
                    cycles,
                    evicted: Some((victim.key, victim.value)),
                };
            }
        }

        // Chain too long: stash the last displaced entry.
        if self.stash.len() < self.cfg.stash_entries {
            self.stash.push(homeless);
            self.occupancy += 1;
            self.access_cycles.observe(cycles as f64);
            return AccessOutcome {
                cycles,
                evicted: None,
            };
        }
        // Or displace an unlocked stash entry.
        if let Some(pos) = self.stash.iter().position(|s| !s.value.is_locked()) {
            let victim = self.stash.swap_remove(pos);
            self.stash.push(homeless);
            cycles += 1;
            self.access_cycles.observe(cycles as f64);
            return AccessOutcome {
                cycles,
                evicted: Some((victim.key, victim.value)),
            };
        }

        // Everything reachable is locked: spill to main memory.
        cycles += self.cfg.overflow_cycles;
        self.overflow.push(homeless);
        self.occupancy += 1;
        self.max_overflow = self.max_overflow.max(self.overflow.len());
        self.access_cycles.observe(cycles as f64);
        AccessOutcome {
            cycles,
            evicted: None,
        }
    }

    /// Removes `key` if present, returning its value and the cycle cost.
    pub fn remove(&mut self, key: u64) -> (Option<V>, u32) {
        let mut cycles = 1;
        match self.locate(key) {
            Some(Location::Way(w, i)) => {
                let v = self.ways[w][i].take().map(|s| s.value);
                self.occupancy -= 1;
                (v, cycles)
            }
            Some(Location::Stash(i)) => {
                let v = self.stash.swap_remove(i).value;
                self.occupancy -= 1;
                (Some(v), cycles)
            }
            Some(Location::Overflow(i)) => {
                cycles += self.cfg.overflow_cycles;
                let v = self.overflow.swap_remove(i).value;
                self.occupancy -= 1;
                (Some(v), cycles)
            }
            None => (None, cycles),
        }
    }

    /// Removes every entry for which `pred` returns true, returning the
    /// drained `(key, value)` pairs. Used by the rollover flush.
    pub fn drain_filter(&mut self, mut pred: impl FnMut(&u64, &V) -> bool) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for way in &mut self.ways {
            for slot in way.iter_mut() {
                if slot.as_ref().is_some_and(|s| pred(&s.key, &s.value)) {
                    let s = slot.take().expect("just matched");
                    out.push((s.key, s.value));
                }
            }
        }
        let mut i = 0;
        while i < self.stash.len() {
            if pred(&self.stash[i].key, &self.stash[i].value) {
                let s = self.stash.swap_remove(i);
                out.push((s.key, s.value));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.overflow.len() {
            if pred(&self.overflow[i].key, &self.overflow[i].value) {
                let s = self.overflow.swap_remove(i);
                out.push((s.key, s.value));
            } else {
                i += 1;
            }
        }
        self.occupancy -= out.len();
        out
    }

    /// Number of resident entries (including stash and overflow).
    pub fn len(&self) -> usize {
        self.occupancy
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// Entries currently spilled to the overflow region.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// High-water mark of the overflow region over the table's lifetime.
    pub fn max_overflow(&self) -> usize {
        self.max_overflow
    }

    /// Entries currently in the stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// The running mean of cycles per access (Fig. 13).
    pub fn mean_access_cycles(&self) -> f64 {
        self.access_cycles.mean()
    }

    /// Total accesses made against the table.
    pub fn accesses(&self) -> u64 {
        self.access_cycles.count()
    }

    /// Iterates over all `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.ways
            .iter()
            .flatten()
            .flatten()
            .chain(self.stash.iter())
            .chain(self.overflow.iter())
            .map(|s| (s.key, &s.value))
    }

    fn locate(&self, key: u64) -> Option<Location> {
        for w in 0..self.cfg.ways {
            let i = self.hashes.hash(w, key) as usize;
            debug_assert!(i < self.per_way());
            if self.ways[w][i].as_ref().is_some_and(|s| s.key == key) {
                return Some(Location::Way(w, i));
            }
        }
        if let Some(i) = self.stash.iter().position(|s| s.key == key) {
            return Some(Location::Stash(i));
        }
        if let Some(i) = self.overflow.iter().position(|s| s.key == key) {
            return Some(Location::Overflow(i));
        }
        None
    }
}

#[derive(Debug, Clone, Copy)]
enum Location {
    Way(usize, usize),
    Stash(usize),
    Overflow(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone, PartialEq)]
    struct M {
        v: u64,
        locked: bool,
    }
    impl LockState for M {
        fn is_locked(&self) -> bool {
            self.locked
        }
    }
    fn unlocked(v: u64) -> M {
        M { v, locked: false }
    }
    fn locked(v: u64) -> M {
        M { v, locked: true }
    }

    fn table(total: usize) -> CuckooTable<M> {
        let mut rng = DetRng::seeded(7);
        CuckooTable::new(
            CuckooConfig {
                total_entries: total,
                ..CuckooConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = table(64);
        for k in 0..32u64 {
            t.insert(k * 32, unlocked(k));
        }
        assert_eq!(t.len(), 32);
        for k in 0..32u64 {
            let (v, c) = t.lookup(k * 32);
            assert_eq!(v, Some(&unlocked(k)));
            assert!(c >= 1);
        }
        let (v, _) = t.lookup(9999);
        assert_eq!(v, None);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut t = table(64);
        t.insert(8, unlocked(1));
        t.insert(8, unlocked(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(8), Some(&unlocked(2)));
    }

    #[test]
    fn remove_returns_value() {
        let mut t = table(64);
        t.insert(8, unlocked(1));
        let (v, _) = t.remove(8);
        assert_eq!(v, Some(unlocked(1)));
        assert_eq!(t.len(), 0);
        let (v, _) = t.remove(8);
        assert_eq!(v, None);
    }

    #[test]
    fn fills_beyond_nominal_capacity_via_eviction() {
        // Insert far more unlocked entries than the table holds; every
        // insertion must terminate, producing evictions but never losing
        // the most recent key.
        let mut t = table(64);
        let mut evicted = 0;
        for k in 0..512u64 {
            let out = t.insert(k, unlocked(k));
            if let Some((ek, _)) = out.evicted {
                evicted += 1;
                // The victim may occasionally be the fresh key itself (it is
                // unlocked, so folding it straight into the approximate
                // table is legal); otherwise the fresh key must reside.
                if ek != k {
                    assert!(t.get(k).is_some(), "freshly inserted key {k} must reside");
                }
            } else {
                assert!(t.get(k).is_some(), "freshly inserted key {k} must reside");
            }
        }
        assert!(evicted > 0, "expected evictions under 8x oversubscription");
        assert!(t.len() <= 64 + 4);
    }

    #[test]
    fn locked_entries_are_never_evicted() {
        let mut t = table(16);
        // Fill with locked entries, then oversubscribe.
        for k in 0..16u64 {
            t.insert(k, locked(k));
        }
        let mut overflow_used = false;
        for k in 100..200u64 {
            let out = t.insert(k, locked(k));
            assert!(out.evicted.is_none(), "locked entries must not be evicted");
            overflow_used |= t.overflow_len() > 0;
        }
        // All locked keys still present.
        for k in 0..16u64 {
            assert!(t.get(k).is_some());
        }
        assert!(
            overflow_used,
            "saturated locked table must spill to overflow"
        );
        assert!(t.max_overflow() > 0);
    }

    #[test]
    fn overflow_access_costs_more() {
        let mut t = table(16);
        for k in 0..16u64 {
            t.insert(k, locked(k));
        }
        // Saturate stash too.
        for k in 20..40u64 {
            t.insert(k, locked(k));
        }
        assert!(t.overflow_len() > 0);
        // Find an overflow-resident key and check its lookup cost.
        let overflow_key = (20..40u64).find(|&k| {
            // keys in ways/stash cost 1; overflow costs more
            let cfg_overflow = CuckooConfig::default().overflow_cycles;
            let mut t2 = t.clone();
            let (_, c) = t2.lookup(k);
            c > cfg_overflow
        });
        assert!(overflow_key.is_some());
    }

    #[test]
    fn mean_access_cycles_close_to_one_at_low_load() {
        let mut t = table(4096);
        for k in 0..256u64 {
            t.insert(k * 32, unlocked(k));
        }
        for k in 0..256u64 {
            t.lookup(k * 32);
        }
        let m = t.mean_access_cycles();
        assert!((1.0..1.2).contains(&m), "mean {m} should be ~1 at low load");
    }

    #[test]
    fn drain_filter_flushes() {
        let mut t = table(64);
        for k in 0..32u64 {
            t.insert(k, unlocked(k));
        }
        let drained = t.drain_filter(|&k, _| k % 2 == 0);
        assert_eq!(drained.len(), 16);
        assert_eq!(t.len(), 16);
        for k in 0..32u64 {
            assert_eq!(t.get(k).is_some(), k % 2 == 1);
        }
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut t = table(16);
        for k in 0..40u64 {
            t.insert(k, locked(k)); // force stash + overflow use
        }
        let mut keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..40u64).collect::<Vec<_>>());
    }

    proptest! {
        /// The cuckoo table must agree with a HashMap model under random
        /// insert/remove/update sequences of unlocked entries.
        #[test]
        fn model_equivalence(ops in proptest::collection::vec((0u8..3, 0u64..128, 0u64..1000), 1..400)) {
            let mut t = table(64);
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        let out = t.insert(key, unlocked(val));
                        model.insert(key, val);
                        if let Some((ek, _)) = out.evicted {
                            // Evicted entries leave the precise table; the
                            // model drops them too (they move to the
                            // approximate table in the real system).
                            model.remove(&ek);
                        }
                    }
                    1 => {
                        t.remove(key);
                        model.remove(&key);
                    }
                    _ => {
                        let (got, _) = t.lookup(key);
                        match model.get(&key) {
                            Some(&v) => prop_assert_eq!(got.map(|m| m.v), Some(v)),
                            None => prop_assert!(got.is_none()),
                        }
                    }
                }
                prop_assert_eq!(t.len(), model.len());
            }
        }

        /// Locked entries survive arbitrary insertion pressure.
        #[test]
        fn locked_entries_persist(extra in proptest::collection::vec(200u64..10_000, 0..300)) {
            let mut t = table(32);
            for k in 0..20u64 {
                t.insert(k, locked(k));
            }
            for k in extra {
                t.insert(k, unlocked(k));
            }
            for k in 0..20u64 {
                prop_assert_eq!(t.get(k), Some(&locked(k)));
            }
        }
    }
}
