//! The partition-side atomic unit.
//!
//! GPUs execute global atomics at the memory partition that owns the line,
//! which is what makes spin locks viable without cache coherence. The unit
//! applies one atomic per cycle against the committed memory image and
//! returns the old value to the requesting lane.

use gpu_mem::Addr;

/// An atomic operation as it arrives at the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// Compare-and-swap: store `new` iff the current value equals `expect`.
    Cas {
        /// Target word.
        addr: Addr,
        /// Expected current value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
    /// Fetch-and-add.
    Add {
        /// Target word.
        addr: Addr,
        /// Addend.
        delta: u64,
    },
}

impl AtomicOp {
    /// The word this atomic targets.
    pub fn addr(&self) -> Addr {
        match self {
            AtomicOp::Cas { addr, .. } | AtomicOp::Add { addr, .. } => *addr,
        }
    }
}

/// Statistics kept by an atomic unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtomicStats {
    /// CAS operations that swapped.
    pub cas_success: u64,
    /// CAS operations that failed the comparison.
    pub cas_fail: u64,
    /// Fetch-and-add operations.
    pub adds: u64,
}

/// One partition's atomic unit.
#[derive(Debug, Clone, Default)]
pub struct AtomicUnit {
    stats: AtomicStats,
}

impl AtomicUnit {
    /// Creates an idle unit.
    pub fn new() -> Self {
        AtomicUnit::default()
    }

    /// Executes `op` against memory exposed through `read`/`write`
    /// closures, returning the *old* value (CUDA semantics).
    pub fn execute(
        &mut self,
        op: AtomicOp,
        read: impl FnOnce(Addr) -> u64,
        write: impl FnOnce(Addr, u64),
    ) -> u64 {
        match op {
            AtomicOp::Cas { addr, expect, new } => {
                let old = read(addr);
                if old == expect {
                    write(addr, new);
                    self.stats.cas_success += 1;
                } else {
                    self.stats.cas_fail += 1;
                }
                old
            }
            AtomicOp::Add { addr, delta } => {
                let old = read(addr);
                write(addr, old.wrapping_add(delta));
                self.stats.adds += 1;
                old
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AtomicStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;

    fn run(unit: &mut AtomicUnit, mem: &RefCell<HashMap<u64, u64>>, op: AtomicOp) -> u64 {
        unit.execute(
            op,
            |a| mem.borrow().get(&a.0).copied().unwrap_or(0),
            |a, v| {
                mem.borrow_mut().insert(a.0, v);
            },
        )
    }

    #[test]
    fn cas_success_swaps_and_returns_old() {
        let mem = RefCell::new(HashMap::new());
        let mut u = AtomicUnit::new();
        let old = run(
            &mut u,
            &mem,
            AtomicOp::Cas {
                addr: Addr(8),
                expect: 0,
                new: 1,
            },
        );
        assert_eq!(old, 0);
        assert_eq!(mem.borrow()[&8], 1);
        assert_eq!(u.stats().cas_success, 1);
    }

    #[test]
    fn cas_failure_leaves_memory() {
        let mem = RefCell::new(HashMap::from([(8u64, 5u64)]));
        let mut u = AtomicUnit::new();
        let old = run(
            &mut u,
            &mem,
            AtomicOp::Cas {
                addr: Addr(8),
                expect: 0,
                new: 1,
            },
        );
        assert_eq!(old, 5);
        assert_eq!(mem.borrow()[&8], 5);
        assert_eq!(u.stats().cas_fail, 1);
    }

    #[test]
    fn add_returns_old_and_wraps() {
        let mem = RefCell::new(HashMap::from([(8u64, u64::MAX)]));
        let mut u = AtomicUnit::new();
        let old = run(
            &mut u,
            &mem,
            AtomicOp::Add {
                addr: Addr(8),
                delta: 2,
            },
        );
        assert_eq!(old, u64::MAX);
        assert_eq!(mem.borrow()[&8], 1);
        assert_eq!(u.stats().adds, 1);
    }

    #[test]
    fn addr_accessor() {
        assert_eq!(
            AtomicOp::Cas {
                addr: Addr(3),
                expect: 0,
                new: 1
            }
            .addr(),
            Addr(3)
        );
        assert_eq!(
            AtomicOp::Add {
                addr: Addr(4),
                delta: 1
            }
            .addr(),
            Addr(4)
        );
    }

    #[test]
    fn lock_handoff_sequence() {
        // Two contenders on one lock: only one CAS wins per round.
        let mem = RefCell::new(HashMap::new());
        let mut u = AtomicUnit::new();
        let cas = AtomicOp::Cas {
            addr: Addr(0),
            expect: 0,
            new: 1,
        };
        assert_eq!(run(&mut u, &mem, cas), 0); // A wins
        assert_eq!(run(&mut u, &mem, cas), 1); // B fails
        mem.borrow_mut().insert(0, 0); // A releases
        assert_eq!(run(&mut u, &mem, cas), 0); // B wins
        assert_eq!(
            u.stats(),
            AtomicStats {
                cas_success: 2,
                cas_fail: 1,
                adds: 0
            }
        );
    }
}
