//! # fglock
//!
//! The fine-grained-lock execution mode used as the paper's non-TM
//! baseline. Workloads express their critical sections with per-location
//! spin locks acquired via `atomicCAS` at the LLC, following the SIMT-safe
//! pattern of the paper's Fig. 1: locks are acquired in a global order to
//! avoid deadlock, a failed inner acquisition releases everything and
//! retries, and the retry loop is driven by a flag rather than control-flow
//! divergence (which could deadlock a lockstep warp).
//!
//! * [`LockAcquirer`] — the per-thread acquire/release state machine that
//!   workload programs embed.
//! * [`AtomicUnit`] — the partition-side unit that executes atomics against
//!   the committed memory image.

#![warn(missing_docs)]

pub mod acquire;
pub mod atomic;

pub use acquire::{LockAcquirer, LockPhase};
pub use atomic::{AtomicOp, AtomicUnit};
