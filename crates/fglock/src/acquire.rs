//! The per-thread lock acquire/release state machine.
//!
//! Implements the deadlock-free, SIMT-safe acquisition discipline of the
//! paper's Fig. 1, generalized from two locks to any number:
//!
//! * locks are acquired in ascending address order (a global order prevents
//!   deadlock between threads),
//! * a failed `atomicCAS` on lock *k* releases the `k` locks already held
//!   and restarts the whole sequence (the two-lock case reduces exactly to
//!   "release outer, retry"),
//! * the loop is driven by a done-flag, not divergent control flow.

use gpu_mem::Addr;
use gpu_simt::{Op, OpResult};

/// Phase of the acquisition state machine, as seen by the embedding
/// program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPhase {
    /// The returned op must be issued; feed its result to the next `step`.
    Issue(Op),
    /// All locks are held; the critical section may run.
    Acquired,
    /// All locks have been released; the sequence is complete.
    Released,
}

/// The lock value a holder writes.
pub const LOCKED: u64 = 1;
/// The lock value when free.
pub const UNLOCKED: u64 = 0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Spinning back off before retrying the first lock.
    Backoff,
    /// Trying to take lock `next`; `issued` is true once its CAS is out.
    Acquiring { next: usize, issued: bool },
    /// A CAS failed while holding `held` locks; locks `held-remaining..held`
    /// still need releasing (we release from the top down), then retry.
    Backout { remaining: usize },
    /// Critical section in progress.
    Held,
    /// Releasing after the critical section; `released` locks done so far.
    Releasing { released: usize },
    /// Fully released.
    Done,
}

/// The acquire/release state machine over a sorted, deduplicated lock set.
///
/// ```
/// use fglock::{LockAcquirer, LockPhase};
/// use gpu_mem::Addr;
/// use gpu_simt::{Op, OpResult};
///
/// let mut la = LockAcquirer::new(vec![Addr(16), Addr(8), Addr(16)]);
/// // First op: CAS on the lowest lock address (8).
/// let LockPhase::Issue(Op::AtomicCas { addr, .. }) = la.step(OpResult::None) else { panic!() };
/// assert_eq!(addr, Addr(8));
/// // CAS returned 0 (old value) => acquired; next lock is 16.
/// let LockPhase::Issue(Op::AtomicCas { addr, .. }) = la.step(OpResult::Value(0)) else { panic!() };
/// assert_eq!(addr, Addr(16));
/// assert_eq!(la.step(OpResult::Value(0)), LockPhase::Acquired);
/// ```
#[derive(Debug, Clone)]
pub struct LockAcquirer {
    locks: Vec<Addr>,
    state: State,
    attempts: u64,
    /// Per-thread salt decorrelating contenders' backoff delays.
    salt: u64,
    /// Consecutive failed acquisition attempts (reset on success).
    fails: u32,
}

impl LockAcquirer {
    /// Creates an acquirer for the given lock addresses. Addresses are
    /// sorted and deduplicated (the global acquisition order).
    ///
    /// # Panics
    ///
    /// Panics if no lock addresses are supplied.
    pub fn new(mut lock_addrs: Vec<Addr>) -> Self {
        assert!(!lock_addrs.is_empty(), "need at least one lock");
        lock_addrs.sort_unstable();
        lock_addrs.dedup();
        LockAcquirer {
            locks: lock_addrs,
            state: State::Acquiring {
                next: 0,
                issued: false,
            },
            attempts: 0,
            salt: 0,
            fails: 0,
        }
    }

    /// Like [`LockAcquirer::new`] with a per-thread salt that decorrelates
    /// the exponential backoff between contenders — hand-optimized GPU
    /// lock code always backs off, or spinners crush the atomic unit.
    pub fn new_salted(lock_addrs: Vec<Addr>, salt: u64) -> Self {
        let mut la = LockAcquirer::new(lock_addrs);
        la.salt = salt;
        la
    }

    /// Deterministic jittered backoff delay for the current retry.
    fn backoff_delay(&self) -> u32 {
        let window = 16u64 << self.fails.min(6);
        let mut z = self
            .salt
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.attempts);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        ((z ^ (z >> 27)) % window) as u32 + 1
    }

    /// Advances the machine with the result of the previously issued op.
    ///
    /// Call once with [`OpResult::None`] to get the first op; thereafter
    /// feed each op's result until [`LockPhase::Acquired`]. After the
    /// critical section, call [`LockAcquirer::begin_release`] and keep
    /// stepping until [`LockPhase::Released`].
    pub fn step(&mut self, prev: OpResult) -> LockPhase {
        match self.state {
            State::Backoff => {
                self.state = State::Acquiring {
                    next: 0,
                    issued: false,
                };
                LockPhase::Issue(Op::Compute(self.backoff_delay()))
            }
            State::Acquiring { next, issued } => {
                if !issued {
                    if next == 0 {
                        self.attempts += 1;
                    }
                    self.state = State::Acquiring { next, issued: true };
                    return LockPhase::Issue(Op::AtomicCas {
                        addr: self.locks[next],
                        expect: UNLOCKED,
                        new: LOCKED,
                    });
                }
                if prev.value() == UNLOCKED {
                    // Acquired lock `next`.
                    if next + 1 == self.locks.len() {
                        self.state = State::Held;
                        self.fails = 0;
                        return LockPhase::Acquired;
                    }
                    self.state = State::Acquiring {
                        next: next + 1,
                        issued: false,
                    };
                    self.step(OpResult::None)
                } else if next == 0 {
                    // Nothing held yet: back off, then retry the first lock.
                    self.fails = self.fails.saturating_add(1);
                    self.state = State::Backoff;
                    self.step(OpResult::None)
                } else {
                    // Holding `next` locks: release them all, then retry.
                    self.fails = self.fails.saturating_add(1);
                    self.state = State::Backout { remaining: next };
                    self.step(OpResult::None)
                }
            }
            State::Backout { remaining } => {
                if remaining > 0 {
                    // Release from the highest-held lock downward.
                    let addr = self.locks[remaining - 1];
                    self.state = State::Backout {
                        remaining: remaining - 1,
                    };
                    LockPhase::Issue(Op::Store(addr, UNLOCKED))
                } else {
                    self.state = State::Backoff;
                    self.step(OpResult::None)
                }
            }
            State::Held => LockPhase::Acquired,
            State::Releasing { released } => {
                if released < self.locks.len() {
                    // Release inner-to-outer (reverse acquisition order),
                    // matching Fig. 1's `locks[inner] = 0; locks[outer] = 0`.
                    let idx = self.locks.len() - 1 - released;
                    self.state = State::Releasing {
                        released: released + 1,
                    };
                    LockPhase::Issue(Op::Store(self.locks[idx], UNLOCKED))
                } else {
                    self.state = State::Done;
                    LockPhase::Released
                }
            }
            State::Done => LockPhase::Released,
        }
    }

    /// Switches to the release phase after the critical section.
    ///
    /// # Panics
    ///
    /// Panics unless all locks are currently held.
    pub fn begin_release(&mut self) {
        assert_eq!(self.state, State::Held, "release without holding locks");
        self.state = State::Releasing { released: 0 };
    }

    /// Full acquisition attempts made (1 = no contention).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// The sorted lock set.
    pub fn locks(&self) -> &[Addr] {
        &self.locks
    }

    /// Whether all locks are currently held.
    pub fn is_held(&self) -> bool {
        self.state == State::Held
    }

    /// Resets to acquire the same set again (a new critical section).
    pub fn reset(&mut self) {
        self.state = State::Acquiring {
            next: 0,
            issued: false,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_until_acquired(la: &mut LockAcquirer, free: impl Fn(Addr) -> bool) -> Vec<Op> {
        let mut issued = Vec::new();
        let mut prev = OpResult::None;
        loop {
            match la.step(prev) {
                LockPhase::Issue(op) => {
                    issued.push(op);
                    prev = match op {
                        Op::AtomicCas { addr, .. } => {
                            OpResult::Value(if free(addr) { UNLOCKED } else { LOCKED })
                        }
                        Op::Store(..) => OpResult::None,
                        other => panic!("unexpected op {other:?}"),
                    };
                }
                LockPhase::Acquired => return issued,
                LockPhase::Released => panic!("released before acquired"),
            }
        }
    }

    fn drive_release(la: &mut LockAcquirer) -> Vec<Addr> {
        la.begin_release();
        let mut rel = Vec::new();
        let mut prev = OpResult::None;
        loop {
            match la.step(prev) {
                LockPhase::Issue(Op::Store(a, v)) => {
                    assert_eq!(v, UNLOCKED);
                    rel.push(a);
                    prev = OpResult::None;
                }
                LockPhase::Released => return rel,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn sorted_acquisition_order() {
        let mut la = LockAcquirer::new(vec![Addr(64), Addr(8), Addr(32)]);
        let ops = drive_until_acquired(&mut la, |_| true);
        let addrs: Vec<Addr> = ops
            .iter()
            .map(|op| match op {
                Op::AtomicCas { addr, .. } => *addr,
                _ => panic!(),
            })
            .collect();
        assert_eq!(addrs, vec![Addr(8), Addr(32), Addr(64)]);
        assert_eq!(la.attempts(), 1);
        assert!(la.is_held());
    }

    #[test]
    fn duplicate_locks_deduplicated() {
        let la = LockAcquirer::new(vec![Addr(8), Addr(8)]);
        assert_eq!(la.locks(), &[Addr(8)]);
    }

    #[test]
    fn release_is_reverse_order() {
        let mut la = LockAcquirer::new(vec![Addr(8), Addr(32)]);
        drive_until_acquired(&mut la, |_| true);
        assert_eq!(drive_release(&mut la), vec![Addr(32), Addr(8)]);
    }

    #[test]
    fn inner_failure_releases_outer_and_retries() {
        // Lock 32 is busy the first time, free afterwards.
        let mut busy_once = true;
        let mut la = LockAcquirer::new(vec![Addr(8), Addr(32)]);
        let mut issued = Vec::new();
        let mut prev = OpResult::None;
        loop {
            match la.step(prev) {
                LockPhase::Issue(op) => {
                    issued.push(op);
                    prev = match op {
                        Op::AtomicCas { addr: Addr(32), .. } if busy_once => {
                            busy_once = false;
                            OpResult::Value(LOCKED)
                        }
                        Op::AtomicCas { .. } => OpResult::Value(UNLOCKED),
                        Op::Store(..) | Op::Compute(_) => OpResult::None,
                        other => panic!("unexpected {other:?}"),
                    };
                }
                LockPhase::Acquired => break,
                LockPhase::Released => panic!(),
            }
        }
        // Expected: CAS 8 (ok), CAS 32 (fail), release 8, backoff
        // compute, CAS 8 (ok), CAS 32 (ok).
        let no_compute: Vec<&Op> = issued
            .iter()
            .filter(|o| !matches!(o, Op::Compute(_)))
            .collect();
        assert_eq!(no_compute.len(), 5);
        assert!(matches!(no_compute[2], Op::Store(Addr(8), UNLOCKED)));
        assert_eq!(issued.len(), 6, "one backoff compute expected");
        assert_eq!(la.attempts(), 2);
    }

    #[test]
    fn three_lock_backout_releases_all_held() {
        // Third lock busy once: both held locks must be released.
        let mut busy_once = true;
        let mut la = LockAcquirer::new(vec![Addr(8), Addr(16), Addr(24)]);
        let mut issued = Vec::new();
        let mut prev = OpResult::None;
        loop {
            match la.step(prev) {
                LockPhase::Issue(op) => {
                    issued.push(op);
                    prev = match op {
                        Op::AtomicCas { addr: Addr(24), .. } if busy_once => {
                            busy_once = false;
                            OpResult::Value(LOCKED)
                        }
                        Op::AtomicCas { .. } => OpResult::Value(UNLOCKED),
                        Op::Store(..) | Op::Compute(_) => OpResult::None,
                        other => panic!("unexpected {other:?}"),
                    };
                }
                LockPhase::Acquired => break,
                LockPhase::Released => panic!(),
            }
        }
        // CAS 8, CAS 16, CAS 24(fail), store 16, store 8, backoff,
        // CAS 8, 16, 24.
        let no_compute: Vec<&Op> = issued
            .iter()
            .filter(|o| !matches!(o, Op::Compute(_)))
            .collect();
        assert_eq!(no_compute.len(), 8);
        assert!(matches!(no_compute[3], Op::Store(Addr(16), UNLOCKED)));
        assert!(matches!(no_compute[4], Op::Store(Addr(8), UNLOCKED)));
    }

    #[test]
    fn first_lock_failure_backs_off_then_retries() {
        let mut cas_count = 0;
        let mut backoffs = 0;
        let mut la = LockAcquirer::new_salted(vec![Addr(8)], 7);
        let mut prev = OpResult::None;
        loop {
            match la.step(prev) {
                LockPhase::Issue(Op::AtomicCas { .. }) => {
                    cas_count += 1;
                    prev = OpResult::Value(if cas_count < 3 { LOCKED } else { UNLOCKED });
                }
                LockPhase::Issue(Op::Compute(d)) => {
                    assert!(d >= 1);
                    backoffs += 1;
                    prev = OpResult::None;
                }
                LockPhase::Issue(other) => panic!("unexpected {other:?}"),
                LockPhase::Acquired => break,
                LockPhase::Released => panic!(),
            }
        }
        assert_eq!(cas_count, 3);
        assert_eq!(backoffs, 2, "each failed CAS is followed by a backoff");
        assert_eq!(la.attempts(), 3);
    }

    #[test]
    fn backoff_windows_grow_with_failures() {
        let mut la = LockAcquirer::new_salted(vec![Addr(8)], 3);
        la.fails = 0;
        let d0_window = 16;
        assert!(la.backoff_delay() as u64 <= d0_window);
        la.fails = 6;
        // Window is 16 << 6 = 1024; at least occasionally the delay must
        // exceed the base window.
        let mut any_large = false;
        for a in 0..64 {
            la.attempts = a;
            if la.backoff_delay() as u64 > d0_window {
                any_large = true;
            }
        }
        assert!(any_large);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut la = LockAcquirer::new(vec![Addr(8)]);
        drive_until_acquired(&mut la, |_| true);
        drive_release(&mut la);
        la.reset();
        let ops = drive_until_acquired(&mut la, |_| true);
        assert_eq!(ops.len(), 1);
        assert_eq!(la.attempts(), 2);
    }

    #[test]
    #[should_panic(expected = "release without holding")]
    fn release_before_acquire_panics() {
        let mut la = LockAcquirer::new(vec![Addr(8)]);
        la.begin_release();
    }
}
