//! Criterion end-to-end benchmark: wall-clock throughput of the full
//! cycle-level simulator on a small hashtable kernel under each TM system
//! (simulated cycles are reported by the figure binaries; this measures
//! the *simulator's* speed, which gates how large a sweep is practical).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gputm::config::{GpuConfig, TmSystem};
use gputm::runner::Sim;
use workloads::hashtable::HashTable;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let mut cfg = GpuConfig::fermi_15core();
    cfg.cores = 4;
    cfg.warps_per_core = 8;
    cfg.warp_width = 16;
    cfg.partitions = 3;

    for system in [TmSystem::FgLock, TmSystem::WarpTmLL, TmSystem::Getm] {
        g.bench_with_input(
            BenchmarkId::new("ht_insert_512", system.label()),
            &system,
            |b, &system| {
                b.iter(|| {
                    let w = HashTable::new("HT-B", 512, 512, 17);
                    let m = Sim::new(&cfg).system(system).run(&w).expect("run");
                    m.assert_correct();
                    std::hint::black_box(m.cycles)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
