//! Criterion benchmarks of the tracing layer: what the disabled gate
//! costs on the hot path (the zero-cost-when-off claim), what recording
//! into the ring costs, and the end-to-end disabled-vs-enabled gap on a
//! real simulated cell.

use bench::traceview;
use criterion::{criterion_group, criterion_main, Criterion};
use gputm::config::{GpuConfig, TmSystem};
use gputm::sweep::CellSpec;
use sim_core::{Recorder, SimEvent, Stamp};
use std::hint::black_box;
use workloads::suite::{Benchmark, Scale};

fn small_cell() -> CellSpec {
    CellSpec::new(
        Benchmark::Atm,
        Scale::Fast,
        TmSystem::Getm,
        GpuConfig::tiny_test(),
    )
}

/// The per-event cost of `Recorder::emit`: disabled (a branch on `None`,
/// the closure never built) versus recording into the ring.
fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("emit");

    g.bench_function("disabled", |b| {
        let rec = Recorder::off();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            rec.emit(|| {
                (
                    Stamp::warp(black_box(cycle), 3, 17),
                    SimEvent::TxAbort {
                        cause: sim_core::AbortCause::War,
                        lanes: 32,
                    },
                )
            });
        });
    });

    g.bench_function("recording", |b| {
        let rec = Recorder::recording(1 << 16);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            rec.emit(|| {
                (
                    Stamp::warp(black_box(cycle), 3, 17),
                    SimEvent::TxAbort {
                        cause: sim_core::AbortCause::War,
                        lanes: 32,
                    },
                )
            });
        });
    });
    g.finish();
}

/// End-to-end: the same small cell untraced (recorder off throughout the
/// engine) versus traced into a large ring. The `untraced` number is the
/// one the <2% disabled-overhead budget is stated against.
fn bench_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell");
    g.sample_size(10);
    let cell = small_cell();

    g.bench_function("untraced", |b| {
        b.iter(|| black_box(cell.run().expect("run")));
    });

    g.bench_function("traced", |b| {
        b.iter(|| black_box(traceview::capture(&cell, 1 << 20)));
    });
    g.finish();
}

criterion_group!(benches, bench_emit, bench_cell);
criterion_main!(benches);
