//! Criterion micro-benchmarks of the hardware-inspired data structures:
//! throughput of the cuckoo metadata table, the recency Bloom filter, and
//! the stall buffer, at paper-like occupancies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use getm::TxMetadata;
use sim_core::DetRng;
use tm_structs::{CuckooConfig, CuckooTable, RecencyBloom, StallBuffer, StallConfig};

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo");

    g.bench_function("lookup_hit_full_table", |b| {
        let mut rng = DetRng::seeded(1);
        let mut t: CuckooTable<TxMetadata> = CuckooTable::new(CuckooConfig::default(), &mut rng);
        for k in 0..4096u64 {
            t.insert(k, TxMetadata::from_approx(k, k));
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 4096;
            std::hint::black_box(t.lookup(k).0.copied())
        });
    });

    g.bench_function("insert_with_eviction_pressure", |b| {
        let rng = DetRng::seeded(2);
        b.iter_batched(
            || {
                let mut t: CuckooTable<TxMetadata> =
                    CuckooTable::new(CuckooConfig::default(), &mut rng.fork(7));
                for k in 0..4096u64 {
                    t.insert(k, TxMetadata::from_approx(1, 1));
                }
                t
            },
            |mut t| {
                for k in 5000..5256u64 {
                    std::hint::black_box(t.insert(k, TxMetadata::from_approx(2, 2)));
                }
                t
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("recency_bloom");
    let mut rng = DetRng::seeded(3);
    let mut f = RecencyBloom::new(4, 256, &mut rng);
    for k in 0..100_000u64 {
        f.insert(k, k % 997, k % 991);
    }
    let mut k = 0u64;
    g.bench_function("lookup", |b| {
        b.iter(|| {
            k += 1;
            std::hint::black_box(f.lookup(k))
        })
    });
    g.bench_function("insert", |b| {
        b.iter(|| {
            k += 1;
            f.insert(k, k, k);
        })
    });
    g.finish();
}

fn bench_stall(c: &mut Criterion) {
    let mut g = c.benchmark_group("stall_buffer");
    g.bench_function("enqueue_wake_cycle", |b| {
        let mut sb: StallBuffer<u64> = StallBuffer::new(StallConfig::default());
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            let _ = sb.enqueue(ts % 4, ts, ts);
            std::hint::black_box(sb.wake_one(ts % 4));
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cuckoo, bench_bloom, bench_stall
}
criterion_main!(benches);
