//! Criterion micro-benchmarks of the protocol units: GETM validation-unit
//! access throughput (the Fig. 6 flowchart over the metadata tables) and
//! WarpTM value-based validation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use getm::vu::GetmConfig;
use getm::{AccessKind, AccessRequest, ValidationUnit};
use gpu_mem::{Addr, Geometry, Granule};
use gpu_simt::GlobalWarpId;
use sim_core::DetRng;
use warptm::{LaneEntry, ValidationJob, WarptmValidator};

fn bench_getm_vu(c: &mut Criterion) {
    let mut g = c.benchmark_group("getm_vu");

    g.bench_function("eager_check_load", |b| {
        let mut rng = DetRng::seeded(11);
        let mut vu = ValidationUnit::new(GetmConfig::default(), &mut rng);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let req = AccessRequest {
                granule: Granule(i % 2048),
                addr: Addr((i % 2048) * 32),
                wid: GlobalWarpId((i % 64) as u32),
                warpts: i,
                kind: AccessKind::Load,
                token: i,
            };
            std::hint::black_box(vu.access(req, || 0).cycles)
        });
    });

    g.bench_function("reserve_and_release", |b| {
        let mut rng = DetRng::seeded(12);
        let mut vu = ValidationUnit::new(GetmConfig::default(), &mut rng);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let gsel = Granule(i % 512);
            let req = AccessRequest {
                granule: gsel,
                addr: Addr(gsel.raw() * 32),
                wid: GlobalWarpId((i % 64) as u32),
                warpts: i * 2,
                kind: AccessKind::Store,
                token: i,
            };
            let out = vu.access(req, || 0);
            if out
                .reply
                .is_some_and(|r| r.kind == getm::ReplyKind::Success)
            {
                std::hint::black_box(vu.release(gsel, 1, |_| 0).1);
            }
        });
    });
    g.finish();
}

fn bench_warptm_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("warptm");
    g.bench_function("validate_32_entry_job", |b| {
        let geom = Geometry::paper_default();
        let mut v = WarptmValidator::new(geom);
        let mut token = 0u64;
        b.iter(|| {
            token += 1;
            let job = ValidationJob {
                wid: GlobalWarpId(1),
                token,
                reads: (0..16)
                    .map(|l| LaneEntry {
                        lane: l,
                        addr: Addr((token * 64 + l as u64) * 32),
                        value: 0,
                    })
                    .collect(),
                writes: (0..16)
                    .map(|l| LaneEntry {
                        lane: l,
                        addr: Addr((token * 64 + 32 + l as u64) * 32),
                        value: 1,
                    })
                    .collect(),
            };
            let verdict = v.validate(job, |_| 0);
            v.commit(token, verdict.failed_lanes);
            std::hint::black_box(verdict.cycles)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_getm_vu, bench_warptm_validate
}
criterion_main!(benches);
