//! Certification harness: run workloads with the transaction-history
//! recorder attached and the serializability/opacity oracle applied,
//! printing one verdict row per workload x system.
//!
//! ```text
//! cargo run -p bench --release --bin verify -- [BENCH|SHAPE ...] \
//!     [--all-systems] [--system NAME] [--tiny] [--fuzz] [--seed N] \
//!     [--trace PATH] [--paper-scale]
//! ```
//!
//! With no positionals the whole benchmark suite runs; `--fuzz` adds the
//! adversarial fuzz shapes; positionals filter by benchmark or shape
//! name. `--system` picks one system (repeatable), `--all-systems` runs
//! every system in the paper's lineup. `--tiny` certifies on the small
//! test machine instead of the 15-core Fermi (what CI's verify-smoke
//! uses). On the first violation `--trace PATH` exports the minimized
//! counterexample as a Chrome/Perfetto trace. Exit status is nonzero if
//! any cell fails certification.

use gputm::prelude::*;
use gputm::verify::export_counterexample;
use std::path::Path;
use std::process::ExitCode;
use workloads::fuzz::{Fuzz, FuzzShape};

fn parse_system(name: &str) -> TmSystem {
    name.parse().unwrap_or_else(|e| panic!("{e}"))
}

/// One workload to certify: either a suite benchmark (run through
/// [`CellSpec`]) or a fuzz shape (run through [`Sim`] directly).
enum Subject {
    Bench(Benchmark),
    Fuzz(FuzzShape, u64),
}

impl Subject {
    fn label(&self) -> String {
        match self {
            Subject::Bench(b) => b.name().to_string(),
            Subject::Fuzz(s, seed) => format!("fuzz/{s}#{seed:x}"),
        }
    }

    fn run(
        &self,
        system: TmSystem,
        scale: workloads::suite::Scale,
        tiny: bool,
        exec: ExecMode,
    ) -> Result<VerifiedRun, SimError> {
        let base = if tiny {
            GpuConfig::tiny_test()
        } else {
            GpuConfig::fermi_15core()
        };
        match self {
            Subject::Bench(b) => {
                let cfg = base.with_concurrency(bench::optimal_concurrency(system, *b));
                CellSpec::new(*b, scale, system, cfg)
                    .with_exec(exec)
                    .run_verified()
            }
            Subject::Fuzz(shape, seed) => {
                let threads = if tiny { 24 } else { 96 };
                let w = Fuzz::new(*shape, threads, 3, *seed);
                let out = Sim::new(&base)
                    .system(system)
                    .run_with(&w, &RunOptions::default().verify(true).exec(exec))?;
                Ok(VerifiedRun {
                    metrics: out.metrics,
                    verdict: out.verdict.expect("verified runs always carry a verdict"),
                })
            }
        }
    }
}

fn main() -> ExitCode {
    // Strip the verify-specific flags, hand the rest to the shared parser.
    let mut all_systems = false;
    let mut tiny = false;
    let mut fuzz = false;
    let mut seed = 0xF0_57u64;
    let mut systems: Vec<TmSystem> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-systems" => all_systems = true,
            "--tiny" => tiny = true,
            "--fuzz" => fuzz = true,
            "--system" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("--system needs a value"));
                systems.push(parse_system(&v));
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| panic!("--seed needs a value"));
                seed = v
                    .parse()
                    .unwrap_or_else(|e| panic!("--seed needs an integer: {e}"));
            }
            other => rest.push(other.to_string()),
        }
    }
    let args = bench::cli::Args::parse_from(rest)
        .unwrap_or_else(|e| panic!("{e}\n\n{}", bench::cli::USAGE));

    if all_systems {
        systems = TmSystem::ALL.to_vec();
    } else if systems.is_empty() {
        systems = vec![TmSystem::Getm];
    }

    let mut subjects: Vec<Subject> = Vec::new();
    let explicit = !args.positional.is_empty();
    for name in &args.positional {
        if let Ok(b) = name.parse::<Benchmark>() {
            subjects.push(Subject::Bench(b));
        } else if let Ok(s) = name.parse::<FuzzShape>() {
            subjects.push(Subject::Fuzz(s, seed));
        } else {
            panic!("unknown benchmark or fuzz shape {name:?}");
        }
    }
    if !explicit {
        subjects.extend(Benchmark::ALL.into_iter().map(Subject::Bench));
    }
    if fuzz {
        subjects.extend(FuzzShape::ALL.into_iter().map(|s| Subject::Fuzz(s, seed)));
    }

    // Verified runs record history and therefore execute serially
    // whatever the mode, but the flag must plumb through cleanly (and
    // stay observational) like everywhere else.
    let exec = ExecMode::from_threads(args.cell_threads);

    let mut failures = 0usize;
    let mut exported = false;
    for subject in &subjects {
        for &system in &systems {
            let run = subject
                .run(system, args.scale, tiny, exec)
                .unwrap_or_else(|e| panic!("{} under {system}: {e}", subject.label()));
            let status = if run.verdict.ok() { "ok  " } else { "FAIL" };
            println!(
                "{status} {:<14} {:<9} {}",
                subject.label(),
                system.label(),
                run.verdict.summary()
            );
            if !run.verdict.ok() {
                failures += 1;
                if let (Some(path), false) = (&args.trace, exported) {
                    write_counterexample(&run, path);
                    exported = true;
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("verify: {failures} cell(s) FAILED certification");
        ExitCode::FAILURE
    } else {
        println!(
            "verify: all {} cell(s) certified",
            subjects.len() * systems.len()
        );
        ExitCode::SUCCESS
    }
}

fn write_counterexample(run: &VerifiedRun, path: &Path) {
    let v = run
        .verdict
        .violations
        .first()
        .expect("failed verdict has a violation");
    let mut out = Vec::new();
    export_counterexample(v, &mut out).expect("in-memory export cannot fail");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("verify: counterexample trace written to {}", path.display());
}
