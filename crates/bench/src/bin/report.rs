//! Cross-run regression differ.
//!
//! Compares two runs of the same experiment campaign and renders a
//! pass/fail table, so "did anything drift since the last known-good
//! run" is one command instead of eyeballing JSON:
//!
//! ```text
//! cargo run -p bench --release --bin report -- OLD NEW
//! ```
//!
//! The mode is auto-detected from the arguments:
//!
//! * **Two directories** — sweep-cache compare. Every `<key>.metrics`
//!   entry in OLD must exist in NEW and parse to identical deterministic
//!   metrics, with **zero tolerance**: the simulator is deterministic, so
//!   any drift in a simulated quantity is a real behavior change, not
//!   noise. Host-profile attribution lines are excluded (wall-clock is
//!   observational). Entries only in NEW are informational; OLD entries
//!   in a stale cache format are skipped with a note (they cannot be
//!   compared, but are not evidence of regression).
//! * **Two files** — `enginebench` snapshot compare
//!   (`BENCH_engine.json`). Rows are matched by name; a row regresses
//!   when its speedup drops below 80% of the old one — the same slack
//!   the `enginebench --check` gate applies, absorbing scheduler noise
//!   on shared hosts. Rows missing from NEW fail; extra rows in NEW are
//!   informational.
//!
//! Exit status: 0 when nothing regressed, 1 on any regression or missing
//! entry, 2 on usage or I/O errors.

use gputm::sweep::{parse_metrics, serialize_metrics};
use gputm::Metrics;
use std::collections::BTreeMap;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old, new) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) if args.len() == 2 => (Path::new(a), Path::new(b)),
        _ => {
            eprintln!("usage: report OLD NEW  (two cache dirs or two BENCH_engine.json files)");
            std::process::exit(2);
        }
    };
    let mut out = String::new();
    let verdict = if old.is_dir() && new.is_dir() {
        compare_caches(old, new, &mut out)
    } else {
        match (std::fs::read_to_string(old), std::fs::read_to_string(new)) {
            (Ok(o), Ok(n)) => Ok(compare_snapshots(&o, &n, &mut out)),
            (Err(e), _) => Err(format!("cannot read {}: {e}", old.display())),
            (_, Err(e)) => Err(format!("cannot read {}: {e}", new.display())),
        }
    };
    print!("{out}");
    match verdict {
        Ok(true) => {}
        Ok(false) => {
            eprintln!("report: regression detected");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("report: {e}");
            std::process::exit(2);
        }
    }
}

/// The `"name"` → `"speedup"` rows of an `enginebench` snapshot. The
/// snapshot is only ever written by `enginebench --write`, so a
/// two-marker scan is all the parsing it needs (same contract as the
/// `--check` gate's reader).
fn snapshot_rows(json: &str) -> Vec<(String, f64)> {
    json.split('{')
        .filter_map(|chunk| {
            let name = chunk.split("\"name\": \"").nth(1)?.split('"').next()?;
            let speedup = chunk
                .split("\"speedup\":")
                .nth(1)?
                .trim()
                .split([',', '}'])
                .next()?
                .trim()
                .parse()
                .ok()?;
            Some((name.to_string(), speedup))
        })
        .collect()
}

/// Diffs two `enginebench` snapshots; `true` means nothing regressed.
fn compare_snapshots(old_json: &str, new_json: &str, out: &mut String) -> bool {
    let old = snapshot_rows(old_json);
    let new: BTreeMap<String, f64> = snapshot_rows(new_json).into_iter().collect();
    let mut ok = true;
    out.push_str(&format!(
        "{:<20} {:>9} {:>9} {:>9}  verdict\n",
        "row", "old", "new", "floor"
    ));
    for (name, old_speedup) in &old {
        let floor = old_speedup * 0.8;
        match new.get(name) {
            None => {
                ok = false;
                out.push_str(&format!(
                    "{name:<20} {old_speedup:>8.2}x {:>9} {floor:>8.2}x  MISSING\n",
                    "-"
                ));
            }
            Some(&new_speedup) => {
                let pass = new_speedup >= floor;
                ok &= pass;
                out.push_str(&format!(
                    "{name:<20} {old_speedup:>8.2}x {new_speedup:>8.2}x {floor:>8.2}x  {}\n",
                    if pass { "ok" } else { "REGRESSED" }
                ));
            }
        }
    }
    for name in new.keys() {
        if !old.iter().any(|(n, _)| n == name) {
            out.push_str(&format!("{name:<20} (only in NEW — informational)\n"));
        }
    }
    ok
}

/// The deterministic `key=value` lines of a serialized metrics entry:
/// everything except the format header and the host-profile attribution
/// (host wall-clock is observational, never a regression).
fn deterministic_lines(m: &Metrics) -> BTreeMap<String, String> {
    serialize_metrics(m)
        .lines()
        .filter_map(|l| l.split_once('='))
        .filter(|(k, _)| !k.starts_with("host_profile/"))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Diffs two sweep-cache directories; `Ok(true)` means no drift.
///
/// # Errors
///
/// Unreadable directories (not unreadable entries — a stale-format OLD
/// entry is a skip, a corrupt NEW entry is a regression).
fn compare_caches(old_dir: &Path, new_dir: &Path, out: &mut String) -> Result<bool, String> {
    let keys = |dir: &Path| -> Result<Vec<String>, String> {
        let rd =
            std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let mut keys: Vec<String> = rd
            .filter_map(Result::ok)
            .filter_map(|e| {
                let p = e.path();
                (p.extension()? == "metrics").then(|| p.file_stem()?.to_str().map(String::from))?
            })
            .collect();
        keys.sort();
        Ok(keys)
    };
    let old_keys = keys(old_dir)?;
    let new_keys = keys(new_dir)?;
    let mut ok = true;
    let (mut matched, mut skipped) = (0usize, 0usize);
    for key in &old_keys {
        let old_text = std::fs::read_to_string(old_dir.join(format!("{key}.metrics")))
            .map_err(|e| format!("cannot read OLD entry {key}: {e}"))?;
        let Some(old_m) = parse_metrics(&old_text) else {
            skipped += 1;
            out.push_str(&format!("{key}  skipped (OLD entry in a stale format)\n"));
            continue;
        };
        let new_path = new_dir.join(format!("{key}.metrics"));
        let Ok(new_text) = std::fs::read_to_string(&new_path) else {
            ok = false;
            out.push_str(&format!("{key}  MISSING in NEW\n"));
            continue;
        };
        let Some(new_m) = parse_metrics(&new_text) else {
            ok = false;
            out.push_str(&format!("{key}  UNPARSEABLE in NEW (corrupt entry)\n"));
            continue;
        };
        let old_lines = deterministic_lines(&old_m);
        let new_lines = deterministic_lines(&new_m);
        if old_lines == new_lines {
            matched += 1;
            continue;
        }
        ok = false;
        out.push_str(&format!("{key}  DRIFTED:\n"));
        for (k, ov) in &old_lines {
            match new_lines.get(k) {
                Some(nv) if nv == ov => {}
                Some(nv) => out.push_str(&format!("  {k}: {ov} -> {nv}\n")),
                None => out.push_str(&format!("  {k}: {ov} -> (absent)\n")),
            }
        }
        for (k, nv) in &new_lines {
            if !old_lines.contains_key(k) {
                out.push_str(&format!("  {k}: (absent) -> {nv}\n"));
            }
        }
    }
    let only_new = new_keys.iter().filter(|k| !old_keys.contains(k)).count();
    out.push_str(&format!(
        "{matched} identical, {skipped} skipped, {} compared, {only_new} only in NEW\n",
        old_keys.len() - skipped
    ));
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputm::sweep::ResultCache;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("getm-report-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const OLD_SNAPSHOT: &str = r#"{
  "rows": [
    {"name": "atm-contended", "walk_ms": 10.0, "skip_ms": 5.0, "speedup": 2.000},
    {"name": "idle-sparse", "walk_ms": 9.0, "skip_ms": 3.0, "speedup": 3.000}
  ]
}
"#;

    #[test]
    fn snapshot_self_compare_passes() {
        let mut out = String::new();
        assert!(compare_snapshots(OLD_SNAPSHOT, OLD_SNAPSHOT, &mut out));
        assert!(out.contains("atm-contended"));
        assert!(!out.contains("REGRESSED"));
    }

    #[test]
    fn snapshot_seeded_regression_fails() {
        // idle-sparse collapses from 3.0x to 1.0x: far below the 80% floor.
        let new = OLD_SNAPSHOT.replace("\"speedup\": 3.000", "\"speedup\": 1.000");
        let mut out = String::new();
        assert!(!compare_snapshots(OLD_SNAPSHOT, &new, &mut out));
        assert!(out.contains("REGRESSED"));
        // Noise within the slack passes: 2.0x -> 1.9x is not a regression.
        let noisy = OLD_SNAPSHOT.replace("\"speedup\": 2.000", "\"speedup\": 1.900");
        let mut out = String::new();
        assert!(compare_snapshots(OLD_SNAPSHOT, &noisy, &mut out));
    }

    #[test]
    fn snapshot_missing_row_fails_and_extra_rows_inform() {
        let new = r#"{"rows": [
            {"name": "atm-contended", "speedup": 2.000},
            {"name": "brand-new-row", "speedup": 1.000}
        ]}"#;
        let mut out = String::new();
        assert!(!compare_snapshots(OLD_SNAPSHOT, new, &mut out));
        assert!(out.contains("MISSING"));
        assert!(out.contains("only in NEW"));
    }

    #[test]
    fn cache_self_compare_passes_and_drift_fails() {
        let old_dir = temp_dir("cache-old");
        let new_dir = temp_dir("cache-new");
        let old = ResultCache::new(&old_dir);
        let new = ResultCache::new(&new_dir);
        let m = Metrics {
            cycles: 1000,
            commits: 64,
            check: Some(Ok(())),
            ..Metrics::default()
        };
        old.store("aaaa", &m).unwrap();
        new.store("aaaa", &m).unwrap();

        let mut out = String::new();
        assert_eq!(compare_caches(&old_dir, &new_dir, &mut out), Ok(true));
        assert!(out.contains("1 identical"));

        // Zero tolerance: a single deterministic field off by one fails.
        let drifted = Metrics {
            commits: 65,
            ..m.clone()
        };
        new.store("aaaa", &drifted).unwrap();
        let mut out = String::new();
        assert_eq!(compare_caches(&old_dir, &new_dir, &mut out), Ok(false));
        assert!(out.contains("DRIFTED"), "{out}");
        assert!(out.contains("commits: 64 -> 65"), "{out}");

        std::fs::remove_dir_all(&old_dir).ok();
        std::fs::remove_dir_all(&new_dir).ok();
    }

    #[test]
    fn cache_host_profile_drift_is_not_a_regression() {
        use gputm::{HostProfile, ShardProfile};
        let old_dir = temp_dir("prof-old");
        let new_dir = temp_dir("prof-new");
        let m = Metrics {
            cycles: 7,
            check: Some(Ok(())),
            ..Metrics::default()
        };
        let profiled = Metrics {
            host_profile: HostProfile {
                shards: vec![ShardProfile {
                    work_ns: 9,
                    barrier_ns: 9,
                    merge_ns: 9,
                }],
                windows: 3,
            },
            ..m.clone()
        };
        // OLD unprofiled, NEW profiled: wall-clock attribution differs,
        // deterministic metrics do not.
        ResultCache::new(&old_dir).store("bbbb", &m).unwrap();
        ResultCache::new(&new_dir).store("bbbb", &profiled).unwrap();
        let mut out = String::new();
        assert_eq!(compare_caches(&old_dir, &new_dir, &mut out), Ok(true));
        std::fs::remove_dir_all(&old_dir).ok();
        std::fs::remove_dir_all(&new_dir).ok();
    }

    #[test]
    fn cache_missing_entry_fails_and_stale_format_skips() {
        let old_dir = temp_dir("miss-old");
        let new_dir = temp_dir("miss-new");
        let m = Metrics {
            check: Some(Ok(())),
            ..Metrics::default()
        };
        let old = ResultCache::new(&old_dir);
        old.store("gone", &m).unwrap();
        // A stale-format OLD entry is skipped, not failed.
        let stale = serialize_metrics(&m).replacen("v5", "v4", 1);
        std::fs::write(old_dir.join("stale.metrics"), stale).unwrap();
        std::fs::create_dir_all(&new_dir).unwrap();

        let mut out = String::new();
        assert_eq!(compare_caches(&old_dir, &new_dir, &mut out), Ok(false));
        assert!(out.contains("gone  MISSING in NEW"), "{out}");
        assert!(out.contains("stale format"), "{out}");

        std::fs::remove_dir_all(&old_dir).ok();
        std::fs::remove_dir_all(&new_dir).ok();
    }
}
