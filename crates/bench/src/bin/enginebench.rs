//! Wall-clock gate for the engine hot loop.
//!
//! Two families of rows:
//!
//! * **Loop-path rows** run a workload once with the engine walking every
//!   cycle and once with idle skip-ahead, assert the metrics are
//!   identical, and report the skip path's speedup.
//! * **Shard rows** run a workload once on the serial loop and once
//!   sharded across N host threads (`ExecMode::Sharded`), assert the
//!   metrics are bit-identical, and report the parallel speedup.
//!
//! After the rows, each shard workload runs once more with the host
//! profiler on and prints per-shard work / barrier-wait / merge
//! attribution (observational — never part of the gate).
//!
//! The committed baseline (`crates/bench/BENCH_engine.json`) stores the
//! speedups this machine class is expected to reach. Loop-path rows gate
//! on *ratios* against the recorded baseline (stable across host
//! speeds); shard rows carry an absolute `floor` and a `threads`
//! requirement, and the gate skips them on hosts with fewer cores than
//! the row shards across (the bit-identity assertion still runs
//! everywhere — only the wall-clock expectation is hardware-gated):
//!
//! ```text
//! cargo run -p bench --release --bin enginebench                  # print
//! cargo run -p bench --release --bin enginebench -- --write FILE  # rebase
//! cargo run -p bench --release --bin enginebench -- --check FILE  # gate
//! ```
//!
//! `--check` fails (exit 1) if any loop-path speedup drops below 80% of
//! the baseline's, or any shard speedup (on a capable host) below its
//! floor. The slack absorbs scheduler noise on shared CI hosts; a
//! genuine regression collapses the ratio far below any plausible jitter.

use bench::idle::IdleHeavy;
use gputm::config::{GpuConfig, TmSystem};
use gputm::engine::Engine;
use gputm::exec::ExecMode;
use gputm::metrics::Metrics;
use std::time::Instant;
use workloads::suite::{Benchmark, Scale};
use workloads::Workload;

/// Best-of-N wall-clock for one engine setup, plus the metrics it
/// produced.
fn time_path(
    w: &dyn Workload,
    cfg: &GpuConfig,
    exec: ExecMode,
    idle_skip: bool,
    reps: u32,
) -> (Metrics, f64) {
    let mut best = f64::INFINITY;
    let mut metrics = None;
    for _ in 0..reps {
        let mut e = Engine::new(w, TmSystem::Getm, cfg).expect("engine builds");
        e.set_idle_skip(idle_skip);
        e.set_exec(exec);
        let t0 = Instant::now();
        let m = e.run().expect("run completes");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        metrics = Some(m);
    }
    (metrics.expect("at least one rep"), best)
}

/// One profiled sharded run: prints where each host shard's wall-time
/// went (work vs. barrier-wait vs. merge). This is the measurement
/// ROADMAP item 1 asked for — if barrier fractions dominate as thread
/// count grows, the per-cycle lockstep barrier is what caps scaling, not
/// the partition work itself. Profiling is observational (metrics stay
/// bit-identical), so the run is separate from the timed rows above: the
/// committed baseline keeps gating on unprofiled wall-clock.
fn profile_shard(name: &str, w: &dyn Workload, cfg: &GpuConfig, threads: usize) {
    let mut e = Engine::new(w, TmSystem::Getm, cfg).expect("engine builds");
    e.set_idle_skip(true);
    e.set_exec(ExecMode::Sharded { threads });
    e.set_host_profiling(true);
    let m = e.run().expect("run completes");
    println!(
        "{name} host attribution ({} barrier windows):",
        m.host_profile.windows
    );
    for line in m.host_profile.render().lines() {
        println!("  {line}");
    }
}

struct Row {
    name: &'static str,
    walk_ms: f64,
    skip_ms: f64,
    speedup: f64,
    /// `Some((threads, floor))` marks a shard row: gate `speedup >=
    /// floor`, but only on hosts with at least `threads` cores.
    shard: Option<(usize, f64)>,
}

fn measure(name: &'static str, w: &dyn Workload, cfg: &GpuConfig) -> Row {
    let (m_walk, walk_ms) = time_path(w, cfg, ExecMode::Serial, false, 3);
    let (m_skip, skip_ms) = time_path(w, cfg, ExecMode::Serial, true, 3);
    assert_eq!(
        m_walk, m_skip,
        "{name}: loop paths disagree on metrics — refusing to benchmark a broken engine"
    );
    Row {
        name,
        walk_ms,
        skip_ms,
        speedup: walk_ms / skip_ms,
        shard: None,
    }
}

fn measure_shard(
    name: &'static str,
    w: &dyn Workload,
    cfg: &GpuConfig,
    threads: usize,
    floor: f64,
) -> Row {
    let (m_serial, serial_ms) = time_path(w, cfg, ExecMode::Serial, true, 2);
    let (m_shard, shard_ms) = time_path(w, cfg, ExecMode::Sharded { threads }, true, 2);
    assert_eq!(
        m_serial, m_shard,
        "{name}: sharded metrics diverged from serial — determinism contract broken"
    );
    Row {
        name,
        walk_ms: serial_ms,
        skip_ms: shard_ms,
        speedup: serial_ms / shard_ms,
        shard: Some((threads, floor)),
    }
}

fn render(rows: &[Row]) -> String {
    let mut s = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let shard = match r.shard {
            Some((threads, floor)) => format!(", \"threads\": {threads}, \"floor\": {floor:.3}"),
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"walk_ms\": {:.3}, \"skip_ms\": {:.3}, \"speedup\": {:.3}{}}}{}\n",
            r.name,
            r.walk_ms,
            r.skip_ms,
            r.speedup,
            shard,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `"<field>": <num>` out of the baseline row named `name`. The
/// baseline is written only by `--write` above, so a two-key scan is all
/// the parsing it needs.
fn baseline_field(json: &str, name: &str, field: &str) -> Option<f64> {
    let row = json
        .split('{')
        .find(|s| s.contains(&format!("\"name\": \"{name}\"")))?;
    let tail = row.split(&format!("\"{field}\":")).nth(1)?;
    tail.trim().split([',', '}']).next()?.trim().parse().ok()
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = GpuConfig::tiny_test();
    let atm = Benchmark::Atm.build(Scale::Fast);
    let idle = IdleHeavy {
        threads: 32,
        rounds: 40,
        spin: 5000,
    };
    let fz = workloads::fuzz::Fuzz::new(workloads::fuzz::FuzzShape::SingleCell, 32, 6, 7);
    // The shard scaling rows: the paper's 56-core machine is the case
    // sharding exists for (Fig. 17 cells dominate sweep wall clock); the
    // tiny-machine row keeps the bit-identity assertion cheap enough to
    // run anywhere. Floors are deliberately conservative — barrier costs
    // on a 4-core tiny machine cap the win well below linear.
    let big = GpuConfig::large_56core();
    let atm_big = Benchmark::Atm.build(Scale::Fast);
    let rows = vec![
        measure("atm-contended", atm.as_ref(), &cfg),
        measure("fuzz-singlecell", &fz, &cfg),
        measure("idle-sparse", &idle, &cfg),
        measure_shard("shard-atm-x4", atm.as_ref(), &cfg, 4, 1.2),
        measure_shard("shard-large56-x8", atm_big.as_ref(), &big, 8, 3.0),
    ];
    for r in &rows {
        let (a, b) = match r.shard {
            Some(..) => ("serial", "shard"),
            None => ("walk", "skip"),
        };
        println!(
            "{:<16} {a} {:>9.3} ms   {b} {:>9.3} ms   speedup {:>6.2}x",
            r.name, r.walk_ms, r.skip_ms, r.speedup
        );
    }
    profile_shard("shard-atm-x4", atm.as_ref(), &cfg, 4);
    profile_shard("shard-large56-x8", atm_big.as_ref(), &big, 8);

    match args.first().map(String::as_str) {
        Some("--write") => {
            let path = args.get(1).expect("--write FILE");
            std::fs::write(path, render(&rows)).expect("write baseline");
            println!("baseline written to {path}");
        }
        Some("--check") => {
            let path = args.get(1).expect("--check FILE");
            let json = std::fs::read_to_string(path).expect("read baseline");
            let host = host_threads();
            let mut failed = false;
            for r in &rows {
                if let Some((threads, _)) = r.shard {
                    // Shard rows gate on the absolute floor committed in
                    // the baseline, and only on hosts that can actually
                    // host the shards.
                    let floor = baseline_field(&json, r.name, "floor")
                        .unwrap_or_else(|| panic!("baseline {path} has no floor for {}", r.name));
                    if host < threads {
                        println!(
                            "{:<16} floor {:>6.2}x   now {:>6.2}x   skipped ({host}-core host, needs {threads})",
                            r.name, floor, r.speedup
                        );
                        continue;
                    }
                    let ok = r.speedup >= floor;
                    println!(
                        "{:<16} floor {:>6.2}x   now {:>6.2}x   {}",
                        r.name,
                        floor,
                        r.speedup,
                        if ok { "ok" } else { "REGRESSED" }
                    );
                    failed |= !ok;
                    continue;
                }
                let base = baseline_field(&json, r.name, "speedup")
                    .unwrap_or_else(|| panic!("baseline {path} has no row named {}", r.name));
                let floor = base * 0.8;
                let ok = r.speedup >= floor;
                println!(
                    "{:<16} baseline {:>6.2}x   floor {:>6.2}x   now {:>6.2}x   {}",
                    r.name,
                    base,
                    floor,
                    r.speedup,
                    if ok { "ok" } else { "REGRESSED" }
                );
                failed |= !ok;
            }
            if failed {
                eprintln!("engine loop speedup regressed below 80% of baseline");
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("unknown flag {other}; use --write FILE or --check FILE");
            std::process::exit(2);
        }
        None => {}
    }
}
