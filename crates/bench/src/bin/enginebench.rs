//! Wall-clock gate for the engine hot loop.
//!
//! Runs two workloads — a high-contention benchmark and a sparse
//! idle-heavy synthetic — once with the engine walking every cycle and
//! once with idle skip-ahead, asserts the metrics are identical, and
//! reports the wall-clock speedup of the skip path.
//!
//! The committed baseline (`crates/bench/BENCH_engine.json`) stores the
//! speedups this machine class is expected to reach. The gate compares
//! *ratios*, not absolute times, so it is stable across host speeds:
//!
//! ```text
//! cargo run -p bench --release --bin enginebench                  # print
//! cargo run -p bench --release --bin enginebench -- --write FILE  # rebase
//! cargo run -p bench --release --bin enginebench -- --check FILE  # gate
//! ```
//!
//! `--check` fails (exit 1) if any workload's speedup drops below 80% of
//! the baseline's. The slack absorbs scheduler noise on shared CI hosts; a
//! genuine skip-path regression collapses the idle-sparse ratio to ~1x,
//! far below any plausible jitter.

use bench::idle::IdleHeavy;
use gputm::config::{GpuConfig, TmSystem};
use gputm::engine::Engine;
use gputm::metrics::Metrics;
use std::time::Instant;
use workloads::suite::{Benchmark, Scale};
use workloads::Workload;

/// Best-of-N wall-clock for one loop path, plus the metrics it produced.
fn time_path(w: &dyn Workload, cfg: &GpuConfig, idle_skip: bool, reps: u32) -> (Metrics, f64) {
    let mut best = f64::INFINITY;
    let mut metrics = None;
    for _ in 0..reps {
        let mut e = Engine::new(w, TmSystem::Getm, cfg).expect("engine builds");
        e.set_idle_skip(idle_skip);
        let t0 = Instant::now();
        let m = e.run().expect("run completes");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        metrics = Some(m);
    }
    (metrics.expect("at least one rep"), best)
}

struct Row {
    name: &'static str,
    walk_ms: f64,
    skip_ms: f64,
    speedup: f64,
}

fn measure(name: &'static str, w: &dyn Workload, cfg: &GpuConfig) -> Row {
    let (m_walk, walk_ms) = time_path(w, cfg, false, 3);
    let (m_skip, skip_ms) = time_path(w, cfg, true, 3);
    assert_eq!(
        m_walk, m_skip,
        "{name}: loop paths disagree on metrics — refusing to benchmark a broken engine"
    );
    Row {
        name,
        walk_ms,
        skip_ms,
        speedup: walk_ms / skip_ms,
    }
}

fn render(rows: &[Row]) -> String {
    let mut s = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"walk_ms\": {:.3}, \"skip_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.walk_ms,
            r.skip_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `"speedup": <num>` out of the baseline row named `name`. The
/// baseline is written only by `--write` above, so a two-key scan is all
/// the parsing it needs.
fn baseline_speedup(json: &str, name: &str) -> Option<f64> {
    let row = json
        .split('{')
        .find(|s| s.contains(&format!("\"name\": \"{name}\"")))?;
    let tail = row.split("\"speedup\":").nth(1)?;
    tail.trim()
        .trim_end_matches(|c: char| !c.is_ascii_digit())
        .parse()
        .ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = GpuConfig::tiny_test();
    let atm = Benchmark::Atm.build(Scale::Fast);
    let idle = IdleHeavy {
        threads: 32,
        rounds: 40,
        spin: 5000,
    };
    let fz = workloads::fuzz::Fuzz::new(workloads::fuzz::FuzzShape::SingleCell, 32, 6, 7);
    let rows = vec![
        measure("atm-contended", atm.as_ref(), &cfg),
        measure("fuzz-singlecell", &fz, &cfg),
        measure("idle-sparse", &idle, &cfg),
    ];
    for r in &rows {
        println!(
            "{:<14} walk {:>9.3} ms   skip {:>9.3} ms   speedup {:>6.2}x",
            r.name, r.walk_ms, r.skip_ms, r.speedup
        );
    }

    match args.first().map(String::as_str) {
        Some("--write") => {
            let path = args.get(1).expect("--write FILE");
            std::fs::write(path, render(&rows)).expect("write baseline");
            println!("baseline written to {path}");
        }
        Some("--check") => {
            let path = args.get(1).expect("--check FILE");
            let json = std::fs::read_to_string(path).expect("read baseline");
            let mut failed = false;
            for r in &rows {
                let base = baseline_speedup(&json, r.name)
                    .unwrap_or_else(|| panic!("baseline {path} has no row named {}", r.name));
                let floor = base * 0.8;
                let ok = r.speedup >= floor;
                println!(
                    "{:<14} baseline {:>6.2}x   floor {:>6.2}x   now {:>6.2}x   {}",
                    r.name,
                    base,
                    floor,
                    r.speedup,
                    if ok { "ok" } else { "REGRESSED" }
                );
                failed |= !ok;
            }
            if failed {
                eprintln!("engine loop speedup regressed below 80% of baseline");
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("unknown flag {other}; use --write FILE or --check FILE");
            std::process::exit(2);
        }
        None => {}
    }
}
