//! Fig. 11: total execution time (transactional and non-transactional
//! parts) normalized to the fine-grained-lock baseline, for WarpTM,
//! idealized EAPG, and GETM at optimal concurrency.
//!
//! ```text
//! cargo run -p bench --release --bin fig11 [--paper-scale]
//! ```

use bench::{banner, print_header, print_row, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 11", "total execution time normalized to FGLock");

    let fgl: Vec<f64> = BENCHES
        .iter()
        .map(|b| cache.run_optimal(b, TmSystem::FgLock, scale, &base).cycles as f64)
        .collect();

    print_header("system", true);
    print_row("FGLock", &vec![1.0; BENCHES.len()], true);
    for system in [TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm] {
        let series: Vec<f64> = BENCHES
            .iter()
            .enumerate()
            .map(|(i, b)| {
                cache.run_optimal(b, system, scale, &base).cycles as f64 / fgl[i].max(1.0)
            })
            .collect();
        print_row(system.label(), &series, true);
    }
    println!(
        "\nPaper shape: GETM gmean ~1.2x faster than WarpTM and within ~7% \
         of FGLock; the largest wins are on high-contention workloads."
    );
}
