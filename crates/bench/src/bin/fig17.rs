//! Fig. 17: scalability — total execution time in the 15-core and 56-core
//! configurations, every system, normalized to 15-core WarpTM.
//!
//! ```text
//! cargo run -p bench --release --bin fig17 [--paper-scale]
//! ```

use bench::{banner, print_header, print_row, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let small = GpuConfig::fermi_15core();
    let large = GpuConfig::large_56core();
    banner("Fig. 17", "15-core vs 56-core, normalized to 15-core WarpTM");

    let wtm15: Vec<f64> = BENCHES
        .iter()
        .map(|b| {
            cache
                .run_optimal(b, TmSystem::WarpTmLL, scale, &small)
                .cycles as f64
        })
        .collect();

    print_header("config", true);
    for (tag, cfg) in [("", &small), ("-56Core", &large)] {
        for system in [TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm] {
            let series: Vec<f64> = BENCHES
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    cache.run_optimal(b, system, scale, cfg).cycles as f64
                        / wtm15[i].max(1.0)
                })
                .collect();
            print_row(&format!("{}{tag}", system.label()), &series, true);
        }
    }
    println!(
        "\nPaper shape: the 56-core trends mirror the 15-core setup — more \
         cores speed everything up, with GETM keeping its relative edge."
    );
}
