//! Distributed sweep driver: the same grid `sweep` runs, spread across
//! worker processes that rendezvous over a Unix socket.
//!
//! ```text
//! # one-command fleet: coordinator + 4 spawned workers
//! cargo run -p bench --release --bin campaign -- coordinate --spawn 4 \
//!     [BENCH ...] [--system NAME]... [--tiny] [common flags]
//!
//! # or launch the pieces yourself (any mix of both styles works):
//! campaign coordinate --socket /tmp/c.sock --tiny &
//! campaign work --socket /tmp/c.sock --tiny &
//! campaign work --socket /tmp/c.sock --tiny &
//! ```
//!
//! The coordinator owns the report: stdout is byte-identical to `sweep`
//! over the same grid, however many workers ran, died, or were SIGKILLed
//! along the way. Workers are disposable — lost leases are detected by
//! socket EOF, missed heartbeats, or a hard per-lease deadline, and
//! their cells are reassigned. A SIGKILLed *coordinator* restarted with
//! `--resume` recalls completed cells from its fsynced journal and the
//! shared result cache, and still prints the identical table.
//!
//! Coordinator-only flags:
//!
//! ```text
//! --socket PATH      rendezvous socket (default: $TMPDIR/getm-campaign.sock)
//! --spawn N          also fork N worker processes wired to the socket
//! --heartbeat-ms MS  worker heartbeat interval (default 2000)
//! --lease-ms MS      hard wall-clock bound per lease (default 120000)
//! --chunk N          cells granted per lease (default 1)
//! --max-deaths N     reassignments before a cell is abandoned (default 5)
//! ```
//!
//! `campaign work` takes `--socket PATH` plus the same grid/common flags
//! as the coordinator — both sides must describe the same grid (the
//! handshake verifies this by digest).

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    unix::main()
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("campaign: distributed campaigns need Unix domain sockets");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use bench::grid::{render_report, GridArgs, GRID_USAGE};
    use gputm::campaign::{coordinate, work, CampaignOptions};
    use std::path::PathBuf;
    use std::process::ExitCode;
    use std::time::Duration;

    const USAGE: &str = "usage: campaign <coordinate|work> [flags]\n\
        coordinate: --socket PATH --spawn N --heartbeat-ms MS --lease-ms MS \
        --chunk N --max-deaths N + grid/common flags\n\
        work:       --socket PATH + grid/common flags";

    /// Coordinator-only flags, stripped before the shared parsers run.
    struct CampaignArgs {
        socket: PathBuf,
        spawn: usize,
        heartbeat: Duration,
        lease_timeout: Duration,
        chunk: usize,
        max_deaths: u32,
    }

    fn default_socket() -> PathBuf {
        std::env::temp_dir().join("getm-campaign.sock")
    }

    /// Strips `--socket`/`--spawn`/`--heartbeat-ms`/`--lease-ms`/
    /// `--chunk`/`--max-deaths` out of `argv`, returning them plus the
    /// remaining (grid + common) arguments.
    fn strip_campaign_flags(argv: Vec<String>) -> Result<(CampaignArgs, Vec<String>), String> {
        let mut out = CampaignArgs {
            socket: default_socket(),
            spawn: 0,
            heartbeat: Duration::from_millis(2000),
            lease_timeout: Duration::from_millis(120_000),
            chunk: 1,
            max_deaths: 5,
        };
        let mut rest = Vec::new();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            let mut num = |flag: &str| -> Result<u64, String> {
                let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                v.parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("{flag} needs a positive integer, got {v:?}"))
            };
            match arg.as_str() {
                "--socket" => {
                    out.socket = it
                        .next()
                        .map(PathBuf::from)
                        .ok_or("--socket needs a value")?;
                }
                "--spawn" => out.spawn = num("--spawn")? as usize,
                "--heartbeat-ms" => out.heartbeat = Duration::from_millis(num("--heartbeat-ms")?),
                "--lease-ms" => out.lease_timeout = Duration::from_millis(num("--lease-ms")?),
                "--chunk" => out.chunk = num("--chunk")? as usize,
                "--max-deaths" => out.max_deaths = num("--max-deaths")? as u32,
                other => rest.push(other.to_string()),
            }
        }
        Ok((out, rest))
    }

    /// The arguments a spawned worker gets: the coordinator's grid and
    /// common flags, minus the coordinator-only concerns (telemetry
    /// sinks, resume, the live dashboard — the coordinator owns all
    /// three).
    fn worker_argv(shared: &[String], socket: &std::path::Path) -> Vec<String> {
        let mut out = vec!["work".to_string()];
        let mut it = shared.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--telemetry" => {
                    it.next();
                }
                "--live" | "--resume" => {}
                other => out.push(other.to_string()),
            }
        }
        out.push("--socket".to_string());
        out.push(socket.display().to_string());
        out
    }

    pub fn main() -> ExitCode {
        let mut argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.is_empty() {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
        let sub = argv.remove(0);
        let result = match sub.as_str() {
            "coordinate" => coordinate_main(argv),
            "work" => work_main(argv),
            other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
        };
        result.unwrap_or_else(|e| {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        })
    }

    fn coordinate_main(argv: Vec<String>) -> Result<ExitCode, String> {
        let (campaign, shared) = strip_campaign_flags(argv)?;
        let (grid, rest) =
            GridArgs::strip_from(shared.clone()).map_err(|e| format!("{e}\n{GRID_USAGE}"))?;
        let args = bench::cli::Args::parse_from(rest)
            .map_err(|e| format!("{e}\n\n{}", bench::cli::USAGE))?;
        let spec = grid.build_spec(&args)?;
        let opts = args.sweep_options();

        // Workers first: they retry the connect long enough to cover the
        // coordinator still binding the socket.
        let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
        let wargv = worker_argv(&shared, &campaign.socket);
        let mut children = Vec::new();
        for _ in 0..campaign.spawn {
            let child = std::process::Command::new(&exe)
                .args(&wargv)
                .spawn()
                .map_err(|e| format!("cannot spawn worker: {e}"))?;
            children.push(child);
        }

        let cfg = CampaignOptions::at(&campaign.socket)
            .heartbeat(campaign.heartbeat)
            .lease_timeout(campaign.lease_timeout)
            .chunk(campaign.chunk)
            .max_deaths(campaign.max_deaths)
            .workers_hint(campaign.spawn);
        let report = coordinate(spec.cells(), &opts, &cfg).map_err(|e| e.to_string())?;

        for mut child in children {
            match child.wait() {
                Ok(status) if !status.success() => {
                    // A worker that died or erred is survivable by design;
                    // the report above already accounts for its cells.
                    eprintln!("campaign: spawned worker exited with {status}");
                }
                Ok(_) => {}
                Err(e) => eprintln!("campaign: could not reap worker: {e}"),
            }
        }
        Ok(render_report(&report, spec.len(), "campaign"))
    }

    fn work_main(argv: Vec<String>) -> Result<ExitCode, String> {
        let mut socket = None;
        let mut rest = Vec::new();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--socket" => {
                    socket = Some(PathBuf::from(it.next().ok_or("--socket needs a value")?));
                }
                other => rest.push(other.to_string()),
            }
        }
        let socket = socket.unwrap_or_else(default_socket);
        let (grid, rest) = GridArgs::strip_from(rest).map_err(|e| format!("{e}\n{GRID_USAGE}"))?;
        let args = bench::cli::Args::parse_from(rest)
            .map_err(|e| format!("{e}\n\n{}", bench::cli::USAGE))?;
        let spec = grid.build_spec(&args)?;
        let opts = args.sweep_options();
        work(spec.cells(), &opts, &socket).map_err(|e| e.to_string())?;
        Ok(ExitCode::SUCCESS)
    }
}
