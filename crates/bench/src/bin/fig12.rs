//! Fig. 12: total crossbar traffic normalized to WarpTM, at optimal
//! concurrency.
//!
//! ```text
//! cargo run -p bench --release --bin fig12 [--paper-scale]
//! ```

use bench::{banner, print_header, print_row, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 12", "crossbar traffic normalized to WarpTM");

    let wtm: Vec<f64> = BENCHES
        .iter()
        .map(|b| {
            cache
                .run_optimal(b, TmSystem::WarpTmLL, scale, &base)
                .xbar_bytes as f64
        })
        .collect();

    print_header("system", true);
    for system in [TmSystem::FgLock, TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm] {
        let series: Vec<f64> = BENCHES
            .iter()
            .enumerate()
            .map(|(i, b)| {
                cache.run_optimal(b, system, scale, &base).xbar_bytes as f64
                    / wtm[i].max(1.0)
            })
            .collect();
        print_row(system.label(), &series, true);
    }
    println!(
        "\nPaper shape: GETM costs somewhat more traffic than WarpTM (it \
         contacts the LLC for stores too, and aborts more), EAPG costs the \
         most (broadcasts)."
    );
}
