//! Fig. 4: WarpTM with lazy (LL) versus idealized eager (EL) conflict
//! detection, compared against hand-optimized fine-grained locks, at each
//! configuration's optimal concurrency.
//!
//! Top panel: transaction-only cycles (exec + wait) normalized to
//! WarpTM-LL per benchmark. Bottom panel: total execution time normalized
//! to the FGLock baseline.
//!
//! ```text
//! cargo run -p bench --release --bin fig4 [--paper-scale]
//! ```

use bench::{banner, print_header, print_row, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 4", "WarpTM-LL vs WarpTM-EL vs FGLock (optimal concurrency)");

    // Top: tx-only cycles normalized to WarpTM-LL.
    println!("\n-- transaction cycles (exec+wait) normalized to WarpTM-LL --");
    print_header("system", false);
    let ll: Vec<f64> = BENCHES
        .iter()
        .map(|b| {
            cache
                .run_optimal(b, TmSystem::WarpTmLL, scale, &base)
                .total_tx_cycles() as f64
        })
        .collect();
    print_row("WarpTM-LL", &vec![1.0; BENCHES.len()], false);
    let el: Vec<f64> = BENCHES
        .iter()
        .enumerate()
        .map(|(i, b)| {
            cache
                .run_optimal(b, TmSystem::WarpTmEL, scale, &base)
                .total_tx_cycles() as f64
                / ll[i].max(1.0)
        })
        .collect();
    print_row("WarpTM-EL", &el, false);

    // Bottom: total execution time normalized to FGLock.
    println!("\n-- total execution time normalized to FGLock --");
    print_header("system", true);
    let fgl: Vec<f64> = BENCHES
        .iter()
        .map(|b| cache.run_optimal(b, TmSystem::FgLock, scale, &base).cycles as f64)
        .collect();
    for system in [TmSystem::WarpTmLL, TmSystem::WarpTmEL] {
        let series: Vec<f64> = BENCHES
            .iter()
            .enumerate()
            .map(|(i, b)| {
                cache.run_optimal(b, system, scale, &base).cycles as f64 / fgl[i].max(1.0)
            })
            .collect();
        print_row(system.label(), &series, true);
    }
    println!(
        "\nPaper shape: EL cuts transactional cycles well below LL on \
         contended benchmarks and narrows the gap to fine-grained locks."
    );
}
