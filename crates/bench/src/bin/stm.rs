//! STM-vs-HTM comparison harness: run the same backend-neutral
//! transactional programs on the cycle-level GPU simulator (hardware-TM
//! models) and on the host-threaded TL2 software TM, printing one
//! throughput/abort-rate row per program x backend, every row certified by
//! the serializability/opacity oracle.
//!
//! ```text
//! cargo run -p bench --release --bin stm -- [BENCH|SHAPE ...] \
//!     [--threads N] [--fuzz] [--seed N] [--tiny] [--gpu fermi|volta] \
//!     [--system NAME] [--all-systems]
//! ```
//!
//! With no positionals the first-wave suite programs (HT-H, ATM) run;
//! positionals filter by benchmark or fuzz-shape name and `--fuzz` adds
//! the adversarial fuzz shapes. `--tiny` substitutes small instances (what
//! CI's stm-smoke uses). `--threads` sets the TL2 worker count (and the
//! simulator's shard count — observationally transparent there).
//! `--system` picks the simulated system(s) to compare against (default
//! GETM) and `--gpu volta` swaps the simulated machine for the
//! Volta-class memory tier (sectored L1, hashed banked LLC, HBM timing). Exit status is nonzero if any row fails certification or its
//! workload invariant check.
//!
//! Apples-to-apples caveat: the simulator's throughput column is
//! commits-per-simulated-kilocycle on a modelled GPU; TL2's is
//! commits-per-wall-millisecond on the host. The comparable columns are
//! the abort rates and the oracle verdicts, which is the point — same
//! programs, eager-HTM vs lazy-STM conflict detection, one oracle.

use gputm::prelude::*;
use std::process::ExitCode;
use workloads::atm::Atm;
use workloads::fuzz::{Fuzz, FuzzShape};
use workloads::hashtable::HashTable;

/// One program to run on every backend.
struct Subject {
    label: String,
    prog: TxProgram,
}

fn bench_subject(b: Benchmark, tiny: bool, seed: u64) -> Subject {
    let prog = if tiny {
        match b {
            Benchmark::HtH => HashTable::new("HT-H", 384, 384, seed).tx_program(),
            Benchmark::HtM => HashTable::new("HT-M", 3_840, 384, seed).tx_program(),
            Benchmark::HtL => HashTable::new("HT-L", 38_400, 384, seed).tx_program(),
            Benchmark::Atm => Atm::new(4_096, 384, 2, seed).tx_program(),
            other => panic!("{other} is not expressible as a TxProgram yet"),
        }
    } else {
        b.tx_program(Scale::Fast)
            .unwrap_or_else(|| panic!("{b} is not expressible as a TxProgram yet"))
    };
    Subject {
        label: b.name().to_string(),
        prog,
    }
}

fn fuzz_subject(shape: FuzzShape, tiny: bool, seed: u64) -> Subject {
    let threads = if tiny { 24 } else { 96 };
    Subject {
        label: format!("fuzz/{shape}#{seed:x}"),
        prog: Fuzz::new(shape, threads, 3, seed).tx_program(),
    }
}

struct Row {
    failed: bool,
}

fn run_row(subject: &Subject, backend: &dyn TmBackend, opts: &BackendOptions) -> Row {
    let out = backend
        .execute(&subject.prog, opts)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", subject.label, backend.name()));
    let verdict = out
        .verdict(&subject.prog, backend.guarantees_opacity())
        .expect("recording runs always carry a history");
    let check = out.check(&subject.prog);
    let m = &out.metrics;
    // Simulated backends report commits per simulated kilocycle; TL2
    // reports commits per host millisecond. Labelled so rows can't be
    // misread as one unit.
    let (thr, unit) = if backend.name().contains("sim") {
        (m.commits as f64 * 1000.0 / m.cycles.max(1) as f64, "c/kcyc")
    } else {
        (
            m.commits as f64 / out.wall.as_secs_f64().max(1e-9) / 1000.0,
            "c/ms  ",
        )
    };
    let failed = !verdict.ok() || check.is_err();
    let status = if failed { "FAIL" } else { "ok  " };
    println!(
        "{status} {:<16} {:<18} {:>8} commits {:>8} aborts {:>7.1} ab/1k {:>9.2} {unit} {}",
        subject.label,
        backend.name(),
        m.commits,
        m.aborts,
        m.aborts_per_1k_commits(),
        thr,
        verdict.summary(),
    );
    if let Err(e) = check {
        println!("     {:<16} workload invariant FAILED: {e}", subject.label);
    }
    Row { failed }
}

fn main() -> ExitCode {
    let mut threads = 8usize;
    let mut fuzz = false;
    let mut tiny = false;
    let mut seed = 0x57_11u64;
    let mut systems: Vec<TmSystem> = Vec::new();
    let mut all_systems = false;
    let mut volta = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("--threads needs a value"));
                threads = v
                    .parse()
                    .unwrap_or_else(|e| panic!("--threads needs an integer: {e}"));
            }
            "--fuzz" => fuzz = true,
            "--tiny" => tiny = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| panic!("--seed needs a value"));
                seed = v
                    .parse()
                    .unwrap_or_else(|e| panic!("--seed needs an integer: {e}"));
            }
            "--system" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("--system needs a value"));
                systems.push(v.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--all-systems" => all_systems = true,
            "--gpu" => {
                let v = it.next().unwrap_or_else(|| panic!("--gpu needs a value"));
                volta = match v.to_ascii_lowercase().as_str() {
                    "fermi" => false,
                    "volta" => true,
                    other => panic!("unknown gpu {other:?} (known: fermi, volta)"),
                };
            }
            other if other.starts_with("--") => panic!("unknown flag {other:?}"),
            other => positional.push(other.to_string()),
        }
    }
    if all_systems {
        systems = TmSystem::ALL.to_vec();
    } else if systems.is_empty() {
        systems = vec![TmSystem::Getm];
    }

    let mut subjects: Vec<Subject> = Vec::new();
    for name in &positional {
        if let Ok(b) = name.parse::<Benchmark>() {
            subjects.push(bench_subject(b, tiny, seed));
        } else if let Ok(s) = name.parse::<FuzzShape>() {
            subjects.push(fuzz_subject(s, tiny, seed));
        } else {
            panic!("unknown benchmark or fuzz shape {name:?}");
        }
    }
    if positional.is_empty() {
        subjects.push(bench_subject(Benchmark::HtH, tiny, seed));
        subjects.push(bench_subject(Benchmark::Atm, tiny, seed));
    }
    if fuzz {
        subjects.extend(
            FuzzShape::ALL
                .into_iter()
                .map(|s| fuzz_subject(s, tiny, seed)),
        );
    }

    let cfg = match (tiny, volta) {
        (true, false) => GpuConfig::tiny_test(),
        (true, true) => GpuConfig::tiny_volta(),
        (false, false) => GpuConfig::fermi_15core(),
        (false, true) => GpuConfig::volta_80core(),
    };
    let mut backends: Vec<Box<dyn TmBackend>> = systems
        .iter()
        .map(|&s| Box::new(SimBackend::new(cfg.clone(), s)) as Box<dyn TmBackend>)
        .collect();
    backends.push(Box::new(Tl2Backend::new()));

    let opts = BackendOptions::default()
        .record_history(true)
        .threads(threads)
        .seed(seed);

    let mut failures = 0usize;
    let mut rows = 0usize;
    for subject in &subjects {
        for backend in &backends {
            if run_row(subject, backend.as_ref(), &opts).failed {
                failures += 1;
            }
            rows += 1;
        }
    }

    if failures > 0 {
        eprintln!("stm: {failures} of {rows} row(s) FAILED certification");
        ExitCode::FAILURE
    } else {
        println!("stm: all {rows} row(s) certified");
        ExitCode::SUCCESS
    }
}
