//! Reproduces one figure/table; see `bench::figures` for the experiment
//! definition and `bench::cli` for the shared flags.
//!
//! ```text
//! cargo run -p bench --release --bin volta [--paper-scale] [--jobs N] ...
//! ```

fn main() {
    bench::figures::run_standalone("volta");
}
