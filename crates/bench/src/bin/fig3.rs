//! Fig. 3: per-transaction exec / wait / total cycles of WarpTM-LL versus
//! the idealized eager-lazy variant (WarpTM-EL) as the per-core
//! transactional-concurrency limit grows, on the HT-H workload.
//!
//! The paper's finding: with lazy validation, more concurrency means more
//! (and more expensive) retries, so per-transaction cycles climb steeply;
//! the eager variant stays flat and its wait time *falls* as extra warps
//! hide latency. Values are normalized to the highest data point, like the
//! paper's plot.
//!
//! ```text
//! cargo run -p bench --release --bin fig3 [--paper-scale]
//! ```

use bench::{banner, scale_from_args, RunCache};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    let limits: [(&str, Option<u32>); 6] = [
        ("1", Some(1)),
        ("2", Some(2)),
        ("4", Some(4)),
        ("8", Some(8)),
        ("16", Some(16)),
        ("NL", None),
    ];
    banner("Fig. 3", "tx cycles vs concurrency limit, HT-H (normalized to max)");

    let mut rows: Vec<(&str, Vec<f64>, Vec<f64>, Vec<f64>)> = Vec::new();
    for system in [TmSystem::WarpTmLL, TmSystem::WarpTmEL] {
        let mut exec = Vec::new();
        let mut wait = Vec::new();
        let mut total = Vec::new();
        for &(_, limit) in &limits {
            let cfg = base.clone().with_concurrency(limit);
            let m = cache.run("HT-H", system, scale, &cfg);
            let per_tx = |v: u64| v as f64 / m.commits.max(1) as f64;
            exec.push(per_tx(m.tx_exec_cycles));
            wait.push(per_tx(m.tx_wait_cycles));
            total.push(per_tx(m.total_tx_cycles()));
        }
        rows.push((system.label(), exec, wait, total));
    }

    for (metric, pick) in [
        ("tx exec cycles", 0usize),
        ("tx wait cycles", 1),
        ("total tx cycles", 2),
    ] {
        println!("\n-- {metric} (per committed tx, normalized to max) --");
        print!("{:<14}", "limit");
        for (name, _) in &limits {
            print!(" {name:>8}");
        }
        println!();
        let max = rows
            .iter()
            .flat_map(|r| match pick {
                0 => r.1.iter(),
                1 => r.2.iter(),
                _ => r.3.iter(),
            })
            .fold(1e-9f64, |a, &b| a.max(b));
        for r in &rows {
            let series = match pick {
                0 => &r.1,
                1 => &r.2,
                _ => &r.3,
            };
            print!("{:<14}", r.0);
            for v in series {
                print!(" {:>8.3}", v / max);
            }
            println!();
        }
    }
    println!(
        "\nPaper shape: LL's exec and total climb with concurrency; EL stays \
         flat with wait falling, supporting much higher concurrency."
    );
}
