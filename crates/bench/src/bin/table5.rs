//! Table V: silicon area and power of the TM hardware structures for
//! WarpTM, EAPG, and GETM, from the analytical SRAM model (the paper used
//! CACTI 6.5 at 32 nm; our model is a linear fit to its scaling laws —
//! absolute values are fit constants, the structure inventory and the
//! ratios are the reproduction target).
//!
//! ```text
//! cargo run -p bench --release --bin table5
//! ```

use bench::banner;
use gputm::silicon::{eapg_inventory, getm_inventory, table5, warptm_inventory};

fn main() {
    banner("Table V", "TM hardware area and power (analytical SRAM model)");

    for inv in [warptm_inventory(), eapg_inventory(), getm_inventory()] {
        println!("\n{}:", inv.name);
        println!(
            "  {:<32} {:>10} {:>12} {:>12}",
            "structure", "bytes", "area mm^2", "power mW"
        );
        for s in &inv.structures {
            println!(
                "  {:<32} {:>10} {:>12.3} {:>12.2}",
                s.name,
                s.total_bytes(),
                s.area_mm2(),
                s.power_mw()
            );
        }
        println!(
            "  {:<32} {:>10} {:>12.3} {:>12.2}",
            "TOTAL",
            "",
            inv.area_mm2(),
            inv.power_mw()
        );
    }

    let rows = table5();
    let (wa, wp) = (rows[0].1, rows[0].2);
    let (ea, ep) = (rows[1].1, rows[1].2);
    let (ga, gp) = (rows[2].1, rows[2].2);
    println!("\nRatios vs GETM (paper: WarpTM 3.6x area / 2.2x power; EAPG 4.9x / 3.6x):");
    println!("  WarpTM / GETM : {:.1}x area, {:.1}x power", wa / ga, wp / gp);
    println!("  EAPG   / GETM : {:.1}x area, {:.1}x power", ea / ga, ep / gp);
}
