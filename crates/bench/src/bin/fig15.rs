//! Reproduces one figure/table; see `bench::figures` for the experiment
//! definition and `bench::cli` for the shared flags.
//!
//! ```text
//! cargo run -p bench --release --bin fig15 [--paper-scale] [--jobs N] ...
//! ```

fn main() {
    bench::figures::run_standalone("fig15");
}
