//! Fig. 15: maximum total stall-buffer occupancy across all partitions at
//! any instant (GETM).
//!
//! ```text
//! cargo run -p bench --release --bin fig15 [--paper-scale]
//! ```

use bench::{banner, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 15", "max total stall-buffer occupancy (requests)");

    print!("{:<14}", "");
    for b in BENCHES {
        print!(" {b:>8}");
    }
    println!();
    print!("{:<14}", "GETM");
    for b in BENCHES {
        let m = cache.run_optimal(b, TmSystem::Getm, scale, &base);
        print!(" {:>8}", m.max_stall_occupancy);
    }
    println!();
    println!(
        "\nPaper shape: small in absolute terms (never above 12 in the \
         paper's runs) — a few addresses with a few waiters suffice."
    );
}
