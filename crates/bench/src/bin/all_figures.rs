//! Runs every figure and table reproduction in one process, sharing the
//! simulation cache across experiments (Figs. 10-12 and 15-16 reuse the
//! same runs, so this is much faster than invoking each binary).
//!
//! ```text
//! cargo run -p bench --release --bin all_figures [--paper-scale]
//! ```

use std::process::Command;

const BINS: [&str; 13] = [
    "fig3", "fig4", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "table4", "table5", "ablation",
];

fn main() {
    let pass_scale: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in BINS {
        println!("\n############ {bin} ############");
        let status = Command::new(exe_dir.join(bin))
            .args(&pass_scale)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
