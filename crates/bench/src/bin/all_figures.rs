//! Runs every figure and table reproduction in one process.
//!
//! The union of every figure's [`bench::figures::Figure::spec`] is
//! deduplicated and executed as ONE parallel, disk-cached sweep; rendering
//! then reads everything back from the in-memory memo. Overlapping cells
//! (Figs. 10-12 and 15-16 reuse the same optimal-concurrency runs)
//! simulate exactly once, and a rerun with a warm cache simulates nothing.
//!
//! ```text
//! cargo run -p bench --release --bin all_figures [--paper-scale] [--jobs N]
//! ```

use gputm::prelude::*;

fn main() {
    let harness = bench::Harness::from_cli();
    let mut union = ExperimentSpec::default();
    for f in &bench::figures::ALL {
        union.extend((f.spec)(harness.scale()));
    }
    union.dedup();
    eprintln!("all_figures: {} distinct cells", union.len());
    harness.prefetch(&union);
    for f in &bench::figures::ALL {
        println!("\n############ {} ############", f.id);
        (f.render)(&harness);
    }
}
