//! Standalone tracer: run one benchmark under one system with event
//! tracing on, and dump every view of the capture.
//!
//! ```text
//! cargo run -p bench --release --bin trace -- [BENCH] [SYSTEM] \
//!     [--trace PATH] [--probe METRIC] [--paper-scale]
//! ```
//!
//! `BENCH` defaults to HT-H and `SYSTEM` to GETM. Without `--trace` the
//! Chrome JSON goes to `target/trace.json`. The flamegraph-style text
//! summary and the probe time series (all four probes unless `--probe`
//! narrows it) print to stdout.

use bench::traceview;
use gputm::prelude::*;
use std::path::PathBuf;

fn parse_system(name: &str) -> TmSystem {
    TmSystem::ALL
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = TmSystem::ALL.iter().map(|s| s.label()).collect();
            panic!("unknown system {name:?} (known: {})", known.join(", "))
        })
}

fn main() {
    let args = bench::cli::Args::parse();
    let bench: Benchmark = args
        .positional
        .first()
        .map(|name| name.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(Benchmark::HtH);
    let system = args
        .positional
        .get(1)
        .map(|s| parse_system(s))
        .unwrap_or(TmSystem::Getm);
    let path = args
        .trace
        .clone()
        .unwrap_or_else(|| PathBuf::from("target").join("trace.json"));

    let cfg = GpuConfig::fermi_15core().with_concurrency(bench::optimal_concurrency(system, bench));
    let cell = CellSpec::new(bench, args.scale, system, cfg);
    eprintln!("trace: running {} with tracing on...", cell.label());
    let (bus, metrics) = traceview::capture(&cell, 1 << 22);

    traceview::write_chrome(&bus, &cell, &path);
    println!(
        "{}: {} cycles, {} commits, {} aborts",
        cell.label(),
        metrics.cycles,
        metrics.commits,
        metrics.aborts
    );
    if metrics.metadata_latency.count() > 0 {
        println!(
            "metadata latency p50={} p95={} p99={} max={} cycles (n={})",
            metrics.metadata_latency.p50(),
            metrics.metadata_latency.p95(),
            metrics.metadata_latency.p99(),
            metrics.metadata_latency.max().unwrap_or(0),
            metrics.metadata_latency.count()
        );
    }

    let mut flame = Vec::new();
    traceview::write_flame(&bus, &mut flame).expect("in-memory export cannot fail");
    println!("\n{}", String::from_utf8_lossy(&flame));

    match &args.probe {
        Some(p) => traceview::print_probe(&bus, p),
        None => {
            for p in traceview::PROBES {
                traceview::print_probe(&bus, p);
            }
        }
    }
}
