//! Table IV: optimal transactional-concurrency setting (warps per core)
//! and abort rate (aborts per 1000 commits) for every benchmark and
//! system. The harness *finds* the optimum by sweeping 1/2/4/8/16/NL and
//! reports both the discovered optimum and the paper's.
//!
//! ```text
//! cargo run -p bench --release --bin table4 [--paper-scale]
//! ```

use bench::{banner, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

/// The paper's Table IV: (concurrency, aborts/1K commits) per system, in
/// WTM / EAPG / WTM-EL / GETM order. `None` concurrency = unlimited.
#[allow(clippy::type_complexity)]
fn paper_row(bench: &str) -> ([(Option<u32>, u32); 4], ()) {
    let r = match bench {
        "HT-H" => [(Some(2), 119), (Some(2), 113), (Some(8), 122), (Some(8), 460)],
        "HT-M" => [(Some(8), 98), (Some(4), 84), (Some(8), 83), (Some(8), 172)],
        "HT-L" => [(Some(8), 80), (Some(4), 78), (Some(8), 78), (Some(8), 207)],
        "ATM" => [(Some(4), 27), (Some(4), 26), (Some(4), 25), (Some(4), 114)],
        "CL" => [(Some(2), 93), (Some(2), 91), (Some(4), 119), (Some(4), 205)],
        "CLto" => [(Some(4), 110), (Some(2), 61), (Some(4), 72), (Some(4), 176)],
        "BH" => [(None, 93), (Some(2), 86), (Some(2), 145), (Some(8), 865)],
        "CC" => [(None, 6), (None, 5), (None, 1), (None, 38)],
        "AP" => [(Some(1), 231), (Some(1), 237), (Some(1), 204), (Some(1), 9188)],
        other => panic!("unknown benchmark {other}"),
    };
    (r, ())
}

const SYSTEMS: [TmSystem; 4] = [
    TmSystem::WarpTmLL,
    TmSystem::Eapg,
    TmSystem::WarpTmEL,
    TmSystem::Getm,
];

fn fmt_limit(l: Option<u32>) -> String {
    match l {
        Some(n) => n.to_string(),
        None => "inf".into(),
    }
}

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner(
        "Table IV",
        "optimal concurrency (swept) and aborts per 1K commits",
    );

    println!(
        "{:<8} | {:>22} | {:>22}",
        "bench", "best concurrency", "aborts / 1K commits"
    );
    print!("{:<8} |", "");
    for s in SYSTEMS {
        print!(" {:>9}", s.label().replace("WarpTM", "WTM"));
    }
    print!(" |");
    for s in SYSTEMS {
        print!(" {:>9}", s.label().replace("WarpTM", "WTM"));
    }
    println!();

    for b in BENCHES {
        let mut best: Vec<(Option<u32>, u64, f64)> = Vec::new();
        for system in SYSTEMS {
            let mut found: Option<(Option<u32>, u64, f64)> = None;
            for limit in [Some(1), Some(2), Some(4), Some(8), Some(16), None] {
                let cfg = base.clone().with_concurrency(limit);
                let m = cache.run(b, system, scale, &cfg);
                if found.is_none() || m.cycles < found.as_ref().expect("set").1 {
                    found = Some((limit, m.cycles, m.aborts_per_1k_commits()));
                }
            }
            best.push(found.expect("swept at least one limit"));
        }
        print!("{b:<8} |");
        for (limit, _, _) in &best {
            print!(" {:>9}", fmt_limit(*limit));
        }
        print!(" |");
        for (_, _, rate) in &best {
            print!(" {:>9.0}", rate);
        }
        println!();
        let (paper, ()) = paper_row(b);
        print!("{:<8} |", " paper");
        for (limit, _) in paper {
            print!(" {:>9}", fmt_limit(limit));
        }
        print!(" |");
        for (_, rate) in paper {
            print!(" {:>9}", rate);
        }
        println!();
    }
    println!(
        "\nPaper shape: GETM tolerates higher concurrency than WarpTM on \
         contended benchmarks and sustains higher abort rates profitably."
    );
}
