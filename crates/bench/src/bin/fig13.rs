//! Fig. 13: mean validation-unit cycles per metadata-table access under
//! GETM (>= 1.0; the cuckoo table plus stash keeps insertions cheap even
//! at high load factors).
//!
//! ```text
//! cargo run -p bench --release --bin fig13 [--paper-scale]
//! ```

use bench::{banner, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 13", "mean GETM metadata access latency (cycles)");

    print!("{:<14}", "");
    for b in BENCHES {
        print!(" {b:>8}");
    }
    println!(" {:>8}", "AVG");
    print!("{:<14}", "GETM");
    let mut vals = Vec::new();
    for b in BENCHES {
        let m = cache.run_optimal(b, TmSystem::Getm, scale, &base);
        vals.push(m.mean_metadata_access_cycles);
        print!(" {:>8.2}", m.mean_metadata_access_cycles);
    }
    println!(
        " {:>8.2}",
        vals.iter().sum::<f64>() / vals.len() as f64
    );
    println!(
        "\nPaper shape: close to 1.0 everywhere — long insertion chains are \
         rare because unlocked entries evict to the approximate table."
    );
}
