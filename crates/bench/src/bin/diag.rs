//! Diagnostic: detailed metric dump for one benchmark under every system.
//!
//! ```text
//! cargo run -p bench --release --bin diag [BENCH] [--paper-scale]
//! ```

use bench::{scale_from_args, RunCache};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let bench = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "HT-H".to_owned());
    let scale = scale_from_args();
    let cache = RunCache::new();
    let cfg = GpuConfig::fermi_15core();

    println!("benchmark {bench} ({scale:?})");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7}",
        "system", "cycles", "commits", "aborts", "silent",
        "tx_exec", "tx_wait", "xbarKB", "mdacc", "stallmx", "l2hit"
    );
    for system in TmSystem::ALL {
        let m = cache.run_optimal(&bench, system, scale, &cfg);
        println!(
            "{:<10} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7.2} {:>7} {:>6.2}",
            system.label(),
            m.cycles,
            m.commits,
            m.aborts,
            m.silent_commits,
            m.tx_exec_cycles,
            m.tx_wait_cycles,
            m.xbar_bytes / 1024,
            m.mean_metadata_access_cycles,
            m.max_stall_occupancy,
            m.llc_hit_rate,
        );
        for (k, v) in &m.xbar_by_category {
            print!("    {k}={v} ");
        }
        println!();
        println!(
            "    access_rt={:.1} rounds/region={:.2} queued={} overflow_peak={} vu_qdelay={:.1} data_lat={:.1}",
            m.mean_access_rt, m.mean_rounds_per_region, m.stall_queued, m.metadata_overflow_peak,
            m.mean_vu_queue_delay, m.mean_data_latency
        );
        if m.getm_aborts_load + m.getm_aborts_store > 0 {
            println!(
                "    getm aborts: load={} store={} approx={} max_cause={}",
                m.getm_aborts_load, m.getm_aborts_store, m.getm_aborts_approx, m.getm_max_cause_ts
            );
        }
    }
}
