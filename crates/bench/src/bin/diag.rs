//! Diagnostic: detailed metric dump for one benchmark under every system.
//!
//! ```text
//! cargo run -p bench --release --bin diag [BENCH] [--paper-scale]
//! ```

use bench::{cli, Harness};
use gputm::prelude::*;

fn main() {
    let args = cli::Args::parse();
    let bench: Benchmark = args
        .positional
        .first()
        .map(|name| name.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(Benchmark::HtH);
    let harness = Harness::new(args.scale, args.sweep_options());
    let cfg = GpuConfig::fermi_15core();

    // Prefetch the five optimal-concurrency cells in one parallel sweep.
    let spec = ExperimentSpec::from_cells(
        TmSystem::ALL
            .iter()
            .map(|&s| {
                let c = cfg
                    .clone()
                    .with_concurrency(bench::optimal_concurrency(s, bench));
                CellSpec::new(bench, args.scale, s, c)
            })
            .collect(),
    );
    harness.prefetch(&spec);

    println!("benchmark {bench} ({:?})", args.scale);
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7}",
        "system",
        "cycles",
        "commits",
        "aborts",
        "silent",
        "tx_exec",
        "tx_wait",
        "xbarKB",
        "mdacc",
        "stallmx",
        "l2hit"
    );
    for system in TmSystem::ALL {
        let m = harness.run_optimal(bench, system, &cfg);
        let mdacc = match m.mean_metadata_access_cycles {
            Some(v) => format!("{v:.2}"),
            None => "-".into(),
        };
        println!(
            "{:<10} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7} {:>7} {:>6.2}",
            system.label(),
            m.cycles,
            m.commits,
            m.aborts,
            m.silent_commits,
            m.tx_exec_cycles,
            m.tx_wait_cycles,
            m.xbar_bytes / 1024,
            mdacc,
            m.max_stall_occupancy,
            m.llc_hit_rate,
        );
        if m.metadata_latency.count() > 0 {
            println!(
                "    metadata latency p50={} p95={} p99={} max={} (n={})",
                m.metadata_latency.p50(),
                m.metadata_latency.p95(),
                m.metadata_latency.p99(),
                m.metadata_latency.max().unwrap_or(0),
                m.metadata_latency.count()
            );
        }
        for (k, v) in &m.xbar_by_category {
            print!("    {k}={v} ");
        }
        println!();
        println!(
            "    access_rt={:.1} rounds/region={:.2} queued={} overflow_peak={} vu_qdelay={:.1} data_lat={:.1}",
            m.mean_access_rt, m.mean_rounds_per_region, m.stall_queued, m.metadata_overflow_peak,
            m.mean_vu_queue_delay, m.mean_data_latency
        );
        if m.getm_aborts_load + m.getm_aborts_store > 0 {
            println!(
                "    getm aborts: load={} store={} approx={} max_cause={}",
                m.getm_aborts_load, m.getm_aborts_store, m.getm_aborts_approx, m.getm_max_cause_ts
            );
        }
        if m.degraded {
            println!(
                "    watchdog: DEGRADED run (backoff escalations={}, serialized commits={}) \
                 — timing reflects the forward-progress fallback, not free-running execution",
                m.watchdog_escalations, m.serialized_commits
            );
        }
    }
}
