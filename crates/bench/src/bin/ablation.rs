//! Ablation study of GETM's two key validation-unit design choices, both
//! called out in the paper (Sec. V-B):
//!
//! * **Recency Bloom filter vs. max registers** — the paper first tried a
//!   single pair of registers holding the maximum evicted `wts`/`rts` and
//!   found "version numbers increased very quickly and caused many
//!   aborts"; the Bloom filter discriminates between evicted addresses.
//! * **Stall buffer vs. abort-on-lock** — queueing logically-younger
//!   requests behind a write reservation avoids aborts that pure eager
//!   conflict detection would pay.
//!
//! ```text
//! cargo run -p bench --release --bin ablation [--paper-scale]
//! ```

use bench::{banner, optimal_concurrency, scale_from_args, RunCache};
use getm::ApproxMode;
use gputm::config::{GpuConfig, TmSystem};

const BENCHES: [&str; 4] = ["HT-H", "HT-L", "ATM", "AP"];

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    banner("Ablation", "GETM design choices (cycles and aborts/1K commits)");

    println!(
        "{:<10} {:>22} {:>22} {:>22}",
        "bench", "GETM (full)", "max-registers", "no stall buffer"
    );
    for b in BENCHES {
        let limit = optimal_concurrency(TmSystem::Getm, b);

        let full = {
            let cfg = GpuConfig::fermi_15core().with_concurrency(limit);
            cache.run(b, TmSystem::Getm, scale, &cfg)
        };
        let maxreg = {
            let mut cfg = GpuConfig::fermi_15core().with_concurrency(limit);
            cfg.getm.approx_mode = ApproxMode::MaxRegisters;
            cache.run(b, TmSystem::Getm, scale, &cfg)
        };
        let nostall = {
            let mut cfg = GpuConfig::fermi_15core().with_concurrency(limit);
            cfg.getm.disable_stall_buffer = true;
            cache.run(b, TmSystem::Getm, scale, &cfg)
        };

        println!(
            "{:<10} {:>12} ({:>6.0}) {:>13} ({:>6.0}) {:>13} ({:>6.0})",
            b,
            full.cycles,
            full.aborts_per_1k_commits(),
            maxreg.cycles,
            maxreg.aborts_per_1k_commits(),
            nostall.cycles,
            nostall.aborts_per_1k_commits(),
        );
    }
    println!(
        "\nExpected: the max-register approximation inflates abort rates \
         (most visibly on large-footprint benchmarks where evictions are \
         constant), and removing the stall buffer converts queueing into \
         extra aborts under write contention."
    );
}
