//! Generic crash-safe sweep driver: run an arbitrary benchmarks x systems
//! grid with the fault-isolated executor and print one deterministic row
//! per completed cell.
//!
//! ```text
//! cargo run -p bench --release --bin sweep -- [BENCH ...] \
//!     [--system NAME]... [--all-systems] [--tiny] [common flags]
//! ```
//!
//! With no positionals the whole benchmark suite runs under GETM; `--tiny`
//! sweeps the small test machine instead of the 15-core Fermi. All the
//! shared flags apply — notably `--failures collect-all` to survive
//! poisoned cells, `--cell-timeout S` to bound runaway ones, and
//! `--resume` to continue a killed campaign from its journal (completed
//! cells are recalled from the result cache; the final stdout is
//! byte-identical to an uninterrupted run's). Row format:
//!
//! ```text
//! label  cycles  commits  aborts  degraded
//! ```
//!
//! Rows go to stdout in spec order; progress and failures go to stderr.
//! Exit status is nonzero if any cell failed or was skipped. The same
//! grid distributed across worker processes is the `campaign` binary —
//! its stdout is byte-identical to this one's for the same grid.

use bench::grid::{render_report, GridArgs, GRID_USAGE};
use gputm::sweep::run_sweep_report;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Strip the grid flags, hand the rest to the shared parser.
    let (grid, rest) = GridArgs::strip_from(std::env::args().skip(1))
        .unwrap_or_else(|e| panic!("{e}\n\n{GRID_USAGE}"));
    let args = bench::cli::Args::parse_from(rest)
        .unwrap_or_else(|e| panic!("{e}\n\n{}", bench::cli::USAGE));
    let spec = grid
        .build_spec(&args)
        .unwrap_or_else(|e| panic!("{e}\n\n{GRID_USAGE}"));

    let report = run_sweep_report(&spec, &args.sweep_options());
    render_report(&report, spec.len(), "sweep")
}
