//! Generic crash-safe sweep driver: run an arbitrary benchmarks x systems
//! grid with the fault-isolated executor and print one deterministic row
//! per completed cell.
//!
//! ```text
//! cargo run -p bench --release --bin sweep -- [BENCH ...] \
//!     [--system NAME]... [--all-systems] [--tiny] [common flags]
//! ```
//!
//! With no positionals the whole benchmark suite runs under GETM; `--tiny`
//! sweeps the small test machine instead of the 15-core Fermi. All the
//! shared flags apply — notably `--failures collect-all` to survive
//! poisoned cells, `--cell-timeout S` to bound runaway ones, and
//! `--resume` to continue a killed campaign from its journal (completed
//! cells are recalled from the result cache; the final stdout is
//! byte-identical to an uninterrupted run's). Row format:
//!
//! ```text
//! label  cycles  commits  aborts  degraded
//! ```
//!
//! Rows go to stdout in spec order; progress and failures go to stderr.
//! Exit status is nonzero if any cell failed or was skipped.

use gputm::prelude::*;
use std::process::ExitCode;

fn parse_system(name: &str) -> TmSystem {
    TmSystem::ALL
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = TmSystem::ALL.iter().map(|s| s.label()).collect();
            panic!("unknown system {name:?} (known: {})", known.join(", "))
        })
}

fn main() -> ExitCode {
    // Strip the sweep-specific flags, hand the rest to the shared parser.
    let mut tiny = false;
    let mut all_systems = false;
    let mut systems: Vec<TmSystem> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tiny" => tiny = true,
            "--all-systems" => all_systems = true,
            "--system" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("--system needs a value"));
                systems.push(parse_system(&v));
            }
            other => rest.push(other.to_string()),
        }
    }
    let args = bench::cli::Args::parse_from(rest)
        .unwrap_or_else(|e| panic!("{e}\n\n{}", bench::cli::USAGE));

    if all_systems {
        systems = TmSystem::ALL.to_vec();
    } else if systems.is_empty() {
        systems = vec![TmSystem::Getm];
    }
    let benchmarks: Vec<Benchmark> = if args.positional.is_empty() {
        Benchmark::ALL.to_vec()
    } else {
        args.positional
            .iter()
            .map(|name| name.parse().unwrap_or_else(|e| panic!("{e}")))
            .collect()
    };
    let base = if tiny {
        GpuConfig::tiny_test()
    } else {
        GpuConfig::fermi_15core()
    };

    let spec = ExperimentSpec::grid()
        .benchmarks(benchmarks)
        .systems(systems)
        .scale(args.scale)
        .base(base)
        .build();
    let report = run_sweep_report(&spec, &args.sweep_options());

    println!(
        "{:<18} {:>12} {:>9} {:>9} {:>9}",
        "cell", "cycles", "commits", "aborts", "degraded"
    );
    for o in &report.outcomes {
        println!(
            "{:<18} {:>12} {:>9} {:>9} {:>9}",
            o.cell.label(),
            o.metrics.cycles,
            o.metrics.commits,
            o.metrics.aborts,
            o.metrics.degraded
        );
    }
    for f in &report.failures {
        eprintln!("sweep: FAILED {f}");
    }
    if report.skipped > 0 {
        eprintln!(
            "sweep: {} cell(s) skipped after the first failure",
            report.skipped
        );
    }
    if report.is_complete() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sweep: {} of {} cell(s) did not complete",
            report.failures.len() + report.skipped,
            spec.len()
        );
        ExitCode::FAILURE
    }
}
