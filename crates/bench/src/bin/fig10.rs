//! Fig. 10: transaction-only execution and wait time for WarpTM, idealized
//! EAPG, and GETM, normalized to WarpTM, at each system's optimal
//! concurrency.
//!
//! ```text
//! cargo run -p bench --release --bin fig10 [--paper-scale]
//! ```

use bench::{banner, print_header, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 10", "tx exec+wait normalized to WarpTM (optimal concurrency)");

    let wtm: Vec<f64> = BENCHES
        .iter()
        .map(|b| {
            cache
                .run_optimal(b, TmSystem::WarpTmLL, scale, &base)
                .total_tx_cycles() as f64
        })
        .collect();

    println!("\n{:<14} {:>8} {:>8}", "", "EXEC", "WAIT");
    print_header("system", true);
    for system in [TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm] {
        let mut exec_w = Vec::new();
        let mut wait_w = Vec::new();
        let mut total = Vec::new();
        for (i, b) in BENCHES.iter().enumerate() {
            let m = cache.run_optimal(b, system, scale, &base);
            let denom = wtm[i].max(1.0);
            exec_w.push(m.tx_exec_cycles as f64 / denom);
            wait_w.push(m.tx_wait_cycles as f64 / denom);
            total.push(m.total_tx_cycles() as f64 / denom);
        }
        bench::print_row(&format!("{} total", system.label()), &total, true);
        bench::print_row(&format!("{}  exec", system.label()), &exec_w, false);
        bench::print_row(&format!("{}  wait", system.label()), &wait_w, false);
    }
    println!(
        "\nPaper shape: GETM reduces both exec and wait on most workloads; \
         EAPG tracks WarpTM or slightly worse."
    );
}
