//! Fig. 14: GETM sensitivity to metadata-table size (2K / 4K / 8K entries
//! GPU-wide, top panel) and to metadata granularity (16 / 32 / 64 / 128
//! bytes, bottom panel). Execution time is normalized to the WarpTM
//! baseline at its optimal concurrency.
//!
//! ```text
//! cargo run -p bench --release --bin fig14 [--paper-scale]
//! ```

use bench::{banner, print_header, print_row, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 14", "GETM sensitivity to metadata size and granularity");

    let wtm: Vec<f64> = BENCHES
        .iter()
        .map(|b| {
            cache
                .run_optimal(b, TmSystem::WarpTmLL, scale, &base)
                .cycles as f64
        })
        .collect();

    println!("\n-- metadata entries GPU-wide (normalized to WarpTM) --");
    print_header("entries", true);
    for entries in [2048usize, 4096, 8192] {
        let series: Vec<f64> = BENCHES
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let cfg = base.clone().with_metadata_entries(entries);
                cache.run_optimal_cfg(b, TmSystem::Getm, scale, &cfg) as f64
                    / wtm[i].max(1.0)
            })
            .collect();
        print_row(&format!("GETM-{}K", entries / 1024), &series, true);
    }

    println!("\n-- metadata granularity in bytes (normalized to WarpTM) --");
    print_header("granularity", true);
    for bytes in [16u64, 32, 64, 128] {
        let series: Vec<f64> = BENCHES
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let cfg = base.clone().with_granularity(bytes);
                cache.run_optimal_cfg(b, TmSystem::Getm, scale, &cfg) as f64
                    / wtm[i].max(1.0)
            })
            .collect();
        print_row(&format!("GETM-{bytes}B"), &series, true);
    }
    println!(
        "\nPaper shape: 2K entries hurts under abundant parallelism, 8K \
         barely beats 4K; finer granularity helps (less false sharing) \
         until table pressure bites."
    );
}
