//! Fig. 16: average number of requests concurrently queued per stalled
//! address in GETM's stall buffers.
//!
//! ```text
//! cargo run -p bench --release --bin fig16 [--paper-scale]
//! ```

use bench::{banner, scale_from_args, RunCache, BENCHES};
use gputm::config::{GpuConfig, TmSystem};

fn main() {
    let scale = scale_from_args();
    let cache = RunCache::new();
    let base = GpuConfig::fermi_15core();
    banner("Fig. 16", "mean queued requests per stalled address");

    print!("{:<14}", "");
    for b in BENCHES {
        print!(" {b:>8}");
    }
    println!(" {:>8}", "AVG");
    print!("{:<14}", "GETM");
    let mut vals = Vec::new();
    for b in BENCHES {
        let m = cache.run_optimal(b, TmSystem::Getm, scale, &base);
        vals.push(m.mean_stall_waiters_per_addr);
        print!(" {:>8.2}", m.mean_stall_waiters_per_addr);
    }
    println!(" {:>8.2}", vals.iter().sum::<f64>() / vals.len() as f64);
    println!("\nPaper shape: close to 1 — addresses rarely have multiple waiters.");
}
