//! Command-line flags shared by every figure binary.
//!
//! All 15 binaries accept the same sweep-controlling flags, parsed here
//! once instead of ad hoc per binary:
//!
//! ```text
//! --paper-scale      use the paper's full benchmark sizes (default: fast)
//! --jobs N | -j N    worker threads for the sweep (default: all cores)
//! --serial           shorthand for --jobs 1
//! --threads N        shard each simulation across N host threads
//!                    (deterministic: metrics are bit-identical to
//!                    serial; default 1). Useful for a handful of big
//!                    cells; --jobs parallelism is better for grids.
//! --no-cache         don't read or write the on-disk result cache
//! --cache-dir PATH   result-cache location (default: $GETM_SWEEP_CACHE
//!                    or target/sweep-cache)
//! --quiet            suppress per-cell progress lines on stderr
//! --resume           honor the sweep journal: recall cells a killed run
//!                    completed, recompute only the rest (needs the cache)
//! --failures POLICY  fail-fast (default) | collect-all | retry:N
//! --cell-timeout S   cancel any cell running longer than S wall seconds
//! --trace PATH       re-run the figure's representative cell with event
//!                    tracing on and write a Chrome trace-event JSON file
//!                    (open in Perfetto / chrome://tracing)
//! --probe METRIC     with tracing, print the windowed time series of one
//!                    probe gauge (vu-backlog, cu-backlog,
//!                    stall-occupancy, up-xbar-backlog)
//! --telemetry PATH   stream campaign telemetry as JSON Lines to PATH and
//!                    keep a Prometheus-style snapshot at PATH.prom
//! --live             render a live in-place campaign dashboard on stderr
//!                    (implies --quiet: both share the terminal)
//! ```
//!
//! Remaining non-flag arguments are collected as positionals (the `diag`
//! binary takes a benchmark name).

use gputm::sweep::{FailurePolicy, ResultCache, SweepOptions};
use gputm::telemetry::{DashboardSink, JsonlSink, PromSink, Telemetry, TelemetrySink};
use std::path::PathBuf;
use std::time::Duration;
use workloads::suite::Scale;

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Benchmark sizing.
    pub scale: Scale,
    /// Sweep worker threads (0 = one per core).
    pub jobs: usize,
    /// Intra-cell shard threads (1 = serial engine loop).
    pub cell_threads: usize,
    /// Whether the on-disk result cache is enabled.
    pub cache: bool,
    /// Cache location override (`None` = default resolution).
    pub cache_dir: Option<PathBuf>,
    /// Per-cell progress lines on stderr.
    pub progress: bool,
    /// Honor the sweep journal of a killed run (requires the cache).
    pub resume: bool,
    /// What the sweep does with failing cells.
    pub failures: FailurePolicy,
    /// Wall-clock budget per cell, if any.
    pub cell_timeout: Option<Duration>,
    /// Write a Chrome trace-event JSON of the representative cell here.
    pub trace: Option<PathBuf>,
    /// Print the windowed time series of this probe gauge (implies a
    /// traced re-run, like [`Args::trace`]).
    pub probe: Option<String>,
    /// Stream campaign telemetry as JSON Lines to this file (plus a
    /// Prometheus-style snapshot next to it).
    pub telemetry: Option<PathBuf>,
    /// Render the live in-place campaign dashboard on stderr.
    pub live: bool,
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Fast,
            jobs: 0,
            cell_threads: 1,
            cache: true,
            cache_dir: None,
            progress: true,
            resume: false,
            failures: FailurePolicy::FailFast,
            cell_timeout: None,
            trace: None,
            probe: None,
            telemetry: None,
            live: false,
            positional: Vec::new(),
        }
    }
}

impl Args {
    /// Parses the process's arguments.
    ///
    /// # Panics
    ///
    /// Exits with a usage message on unknown or malformed flags: every
    /// figure binary shares one flag vocabulary, and a typo silently
    /// ignored would run the wrong experiment.
    pub fn parse() -> Self {
        Args::parse_from(std::env::args().skip(1)).unwrap_or_else(|e| panic!("{e}\n\n{USAGE}"))
    }

    /// Parses an explicit argument list (testable core of [`Args::parse`]).
    ///
    /// # Errors
    ///
    /// Describes the first unknown flag or missing/malformed flag value.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper-scale" => out.scale = Scale::Paper,
                "--serial" => out.jobs = 1,
                "--no-cache" => out.cache = false,
                "--quiet" => out.progress = false,
                "--resume" => out.resume = true,
                "--failures" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    out.failures = parse_failure_policy(&v)?;
                }
                "--cell-timeout" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    let secs = v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("{arg} needs a positive number of seconds, got {v:?}")
                    })?;
                    out.cell_timeout = Some(Duration::from_secs(secs));
                }
                "--jobs" | "-j" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    out.jobs = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("{arg} needs a positive integer, got {v:?}"))?;
                }
                "--threads" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    out.cell_threads = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("{arg} needs a positive integer, got {v:?}"))?;
                }
                "--cache-dir" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    out.cache_dir = Some(PathBuf::from(v));
                }
                "--trace" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    out.trace = Some(PathBuf::from(v));
                }
                "--probe" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    out.probe = Some(v);
                }
                "--telemetry" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    out.telemetry = Some(PathBuf::from(v));
                }
                "--live" => out.live = true,
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag {flag:?}"));
                }
                _ => out.positional.push(arg),
            }
        }
        if out.resume && !out.cache {
            return Err("--resume needs the result cache (conflicts with --no-cache)".into());
        }
        Ok(out)
    }

    /// The telemetry hub these arguments describe: a JSONL stream plus a
    /// Prometheus snapshot for `--telemetry PATH`, the live dashboard for
    /// `--live`, off when neither flag was given.
    ///
    /// # Errors
    ///
    /// Describes a `--telemetry` file that could not be created.
    pub fn telemetry(&self) -> Result<Telemetry, String> {
        let mut sinks: Vec<Box<dyn TelemetrySink>> = Vec::new();
        if let Some(path) = &self.telemetry {
            let jsonl = JsonlSink::create(path)
                .map_err(|e| format!("--telemetry: cannot create {}: {e}", path.display()))?;
            sinks.push(Box::new(jsonl));
            let mut prom = path.clone().into_os_string();
            prom.push(".prom");
            sinks.push(Box::new(PromSink::at(PathBuf::from(prom))));
        }
        if self.live {
            sinks.push(Box::new(DashboardSink::to_stderr()));
        }
        Ok(if sinks.is_empty() {
            Telemetry::off()
        } else {
            Telemetry::to_sinks(sinks)
        })
    }

    /// The sweep options these arguments describe.
    ///
    /// # Panics
    ///
    /// Exits with a message when the `--telemetry` file cannot be
    /// created: telemetry silently lost is worse than no run at all.
    pub fn sweep_options(&self) -> SweepOptions {
        let mut opts = SweepOptions::new()
            .threads(self.jobs)
            // The dashboard repaints stderr in place; per-cell progress
            // lines would shred it, so --live wins over the default.
            .progress(self.progress && !self.live)
            .failure_policy(self.failures)
            .resume(self.resume)
            .telemetry(self.telemetry().unwrap_or_else(|e| panic!("{e}")));
        if self.cell_threads > 1 {
            opts = opts.cell_exec(gputm::ExecMode::from_threads(self.cell_threads));
        }
        if let Some(limit) = self.cell_timeout {
            opts = opts.cell_timeout(limit);
        }
        if self.cache {
            opts = opts.cache(match &self.cache_dir {
                Some(dir) => ResultCache::new(dir.clone()),
                None => ResultCache::at_default_dir(),
            });
        }
        opts
    }
}

/// Parses `--failures` values: `fail-fast`, `collect-all`, or `retry:N`.
fn parse_failure_policy(v: &str) -> Result<FailurePolicy, String> {
    match v {
        "fail-fast" => Ok(FailurePolicy::FailFast),
        "collect-all" => Ok(FailurePolicy::CollectAll),
        _ => {
            let attempts = v
                .strip_prefix("retry:")
                .and_then(|n| n.parse::<u32>().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| {
                    format!("--failures takes fail-fast, collect-all, or retry:N, got {v:?}")
                })?;
            Ok(FailurePolicy::Retry { attempts })
        }
    }
}

/// The shared usage text.
pub const USAGE: &str = "\
common flags (all figure binaries):
  --paper-scale      use the paper's full benchmark sizes (default: fast)
  --jobs N | -j N    worker threads for the sweep (default: all cores)
  --serial           shorthand for --jobs 1
  --threads N        shard each simulation across N host threads
                     (deterministic; bit-identical to serial)
  --no-cache         don't read or write the on-disk result cache
  --cache-dir PATH   result-cache location (default: $GETM_SWEEP_CACHE
                     or target/sweep-cache)
  --quiet            suppress per-cell progress lines on stderr
  --resume           honor the sweep journal: recall cells a killed run
                     completed, recompute only the rest (needs the cache)
  --failures POLICY  fail-fast (default) | collect-all | retry:N
  --cell-timeout S   cancel any cell running longer than S wall seconds
  --trace PATH       write a Chrome trace-event JSON of the figure's
                     representative cell (open in Perfetto)
  --probe METRIC     print the windowed time series of one probe gauge
                     (vu-backlog, cu-backlog, stall-occupancy,
                     up-xbar-backlog)
  --telemetry PATH   stream campaign telemetry as JSON Lines to PATH and
                     keep a Prometheus-style snapshot at PATH.prom
  --live             render a live in-place campaign dashboard on stderr
                     (implies --quiet: both share the terminal)";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_parallel_cached_fast() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, Args::default());
        let opts = a.sweep_options();
        assert_eq!(opts.threads, 0);
        assert!(opts.result_cache.is_some());
        assert!(opts.progress);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&[
            "--paper-scale",
            "-j",
            "4",
            "--no-cache",
            "--quiet",
            "HT-H",
            "--cache-dir",
            "/tmp/c",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.jobs, 4);
        assert!(!a.cache);
        assert!(!a.progress);
        assert_eq!(a.positional, vec!["HT-H".to_string()]);
        assert_eq!(a.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/c")));
        assert!(a.sweep_options().result_cache.is_none());
    }

    #[test]
    fn serial_means_one_job() {
        assert_eq!(parse(&["--serial"]).unwrap().jobs, 1);
    }

    #[test]
    fn threads_flag_shards_every_cell() {
        let a = parse(&["--threads", "4"]).unwrap();
        assert_eq!(a.cell_threads, 4);
        assert_eq!(
            a.sweep_options().cell_exec,
            Some(gputm::ExecMode::Sharded { threads: 4 })
        );
        // One thread is the serial engine: no override at all.
        let one = parse(&["--threads", "1"]).unwrap();
        assert_eq!(one.sweep_options().cell_exec, None);
        assert!(parse(&["--threads", "0"]).unwrap_err().contains("positive"));
    }

    #[test]
    fn trace_and_probe_parse() {
        let a = parse(&["--trace", "/tmp/t.json", "--probe", "vu-backlog"]).unwrap();
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert_eq!(a.probe.as_deref(), Some("vu-backlog"));
        assert!(parse(&["--trace"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--probe"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn cache_dir_overrides_default_location() {
        let a = parse(&["--cache-dir", "/tmp/xyz"]).unwrap();
        let opts = a.sweep_options();
        assert_eq!(
            opts.result_cache.unwrap().dir(),
            std::path::Path::new("/tmp/xyz")
        );
    }

    #[test]
    fn robustness_flags_parse() {
        let a = parse(&["--resume", "--failures", "retry:3", "--cell-timeout", "120"]).unwrap();
        assert!(a.resume);
        assert_eq!(a.failures, FailurePolicy::Retry { attempts: 3 });
        assert_eq!(a.cell_timeout, Some(Duration::from_secs(120)));
        let opts = a.sweep_options();
        assert!(opts.resume);
        assert_eq!(opts.failure_policy, FailurePolicy::Retry { attempts: 3 });
        assert_eq!(opts.cell_timeout, Some(Duration::from_secs(120)));

        assert_eq!(
            parse(&["--failures", "collect-all"]).unwrap().failures,
            FailurePolicy::CollectAll
        );
        assert_eq!(
            parse(&["--failures", "fail-fast"]).unwrap().failures,
            FailurePolicy::FailFast
        );
        assert!(parse(&["--failures", "retry:0"])
            .unwrap_err()
            .contains("retry:N"));
        assert!(parse(&["--failures", "shrug"])
            .unwrap_err()
            .contains("retry:N"));
        assert!(parse(&["--cell-timeout", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--resume", "--no-cache"])
            .unwrap_err()
            .contains("--resume needs the result cache"));
    }

    #[test]
    fn telemetry_and_live_parse() {
        let dir = std::env::temp_dir().join(format!("getm-cli-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let a = parse(&["--telemetry", path.to_str().unwrap(), "--live"]).unwrap();
        assert_eq!(a.telemetry.as_deref(), Some(path.as_path()));
        assert!(a.live);
        assert!(a.telemetry().unwrap().is_on());
        // The dashboard owns stderr: per-cell progress lines are forced off.
        let opts = a.sweep_options();
        assert!(!opts.progress);
        assert!(opts.telemetry.is_on());
        assert!(parse(&["--telemetry"])
            .unwrap_err()
            .contains("needs a value"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_off_by_default_and_unwritable_path_is_an_error() {
        let a = parse(&[]).unwrap();
        assert!(!a.telemetry().unwrap().is_on());
        assert!(!a.sweep_options().telemetry.is_on());
        let bad = parse(&["--telemetry", "/nonexistent-dir/zzz/out.jsonl"]).unwrap();
        assert!(bad.telemetry().unwrap_err().contains("cannot create"));
    }

    #[test]
    fn live_alone_builds_a_dashboard_hub() {
        let a = parse(&["--live"]).unwrap();
        assert!(a.live);
        assert!(a.telemetry.is_none());
        assert!(a.telemetry().unwrap().is_on());
    }

    #[test]
    fn bad_flags_are_errors() {
        assert!(parse(&["--jobs"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--jobs", "zero"]).unwrap_err().contains("positive"));
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
    }
}
