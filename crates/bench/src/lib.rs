//! # bench
//!
//! The experiment harness: one binary per figure and table of the GETM
//! paper's evaluation (Sec. VI), plus criterion micro-benchmarks of the
//! hardware structures.
//!
//! Every binary prints the same rows/series the paper reports, normalized
//! the same way, so EXPERIMENTS.md can record paper-vs-measured side by
//! side. Run them with:
//!
//! ```text
//! cargo run -p bench --release --bin fig10
//! cargo run -p bench --release --bin all_figures   # everything
//! ```
//!
//! Pass `--paper-scale` to use the paper's full benchmark sizes instead of
//! the fast (ratio-preserving) defaults.

#![warn(missing_docs)]

use gputm::config::{GpuConfig, TmSystem};
use gputm::metrics::Metrics;
use gputm::runner::run_workload;
use std::collections::HashMap;
use std::sync::Mutex;
use workloads::suite::{by_name, Scale};

/// The benchmark names in the paper's presentation order.
pub const BENCHES: [&str; 9] = [
    "HT-H", "HT-M", "HT-L", "ATM", "CL", "CLto", "BH", "CC", "AP",
];

/// Parses the common CLI flags of the figure binaries.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--paper-scale") {
        Scale::Paper
    } else {
        Scale::Fast
    }
}

/// The optimal transactional-concurrency setting per system and benchmark.
/// `None` means unlimited.
///
/// The paper's methodology picks the optimum *for each configuration*
/// (its Table IV lists the values its simulator found); these are the
/// optima the `table4` sweep finds on THIS simulator. They differ from
/// the paper's in places — EXPERIMENTS.md records both side by side.
pub fn optimal_concurrency(system: TmSystem, bench: &str) -> Option<u32> {
    use TmSystem::*;
    let (wtm, eapg, el, getm) = match bench {
        "HT-H" => (Some(4), Some(4), Some(4), Some(2)),
        "HT-M" => (Some(4), Some(4), Some(4), Some(2)),
        "HT-L" => (Some(2), Some(4), Some(2), Some(4)),
        "ATM" => (Some(16), Some(16), Some(4), Some(4)),
        "CL" => (Some(16), None, Some(16), None),
        "CLto" => (None, None, None, None),
        "BH" => (Some(2), Some(4), Some(16), Some(8)),
        "CC" => (None, None, None, None),
        "AP" => (Some(1), Some(1), Some(1), Some(1)),
        _ => (Some(8), Some(8), Some(8), Some(8)),
    };
    match system {
        WarpTmLL => wtm,
        Eapg => eapg,
        WarpTmEL => el,
        Getm => getm,
        FgLock => None,
    }
}

/// A memoizing run cache: several figures share the same underlying runs,
/// and `all_figures` reuses results across binaries executed in-process.
#[derive(Default)]
pub struct RunCache {
    cache: Mutex<HashMap<(String, TmSystem, String), Metrics>>,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        RunCache::default()
    }

    /// Runs (or recalls) `bench` under `system` with `cfg`, asserting the
    /// workload invariants.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails or the invariants are violated — a
    /// figure must never be built from a broken run.
    pub fn run(&self, bench: &str, system: TmSystem, scale: Scale, cfg: &GpuConfig) -> Metrics {
        let key = (bench.to_owned(), system, format!("{cfg:?}|{scale:?}"));
        if let Some(m) = self.cache.lock().expect("cache lock").get(&key) {
            return m.clone();
        }
        let workload = by_name(bench, scale);
        let m = run_workload(workload.as_ref(), system, cfg)
            .unwrap_or_else(|e| panic!("{bench} under {system}: {e}"));
        m.assert_correct();
        self.cache.lock().expect("cache lock").insert(key, m.clone());
        m
    }

    /// Like [`RunCache::run`] with the Table IV optimal concurrency
    /// applied for the `(system, bench)` pair.
    pub fn run_optimal(
        &self,
        bench: &str,
        system: TmSystem,
        scale: Scale,
        base: &GpuConfig,
    ) -> Metrics {
        let cfg = base.clone().with_concurrency(optimal_concurrency(system, bench));
        self.run(bench, system, scale, &cfg)
    }

    /// [`RunCache::run_optimal`] on a customized machine configuration,
    /// returning just the cycle count (sensitivity sweeps).
    pub fn run_optimal_cfg(
        &self,
        bench: &str,
        system: TmSystem,
        scale: Scale,
        cfg: &GpuConfig,
    ) -> u64 {
        self.run_optimal(bench, system, scale, cfg).cycles
    }
}

/// Prints a header for a figure/table reproduction.
pub fn banner(id: &str, caption: &str) {
    println!("=== {id}: {caption} ===");
}

/// Prints one normalized data series as a row: `label v1 v2 ... gmean`.
pub fn print_row(label: &str, values: &[f64], with_gmean: bool) {
    print!("{label:<14}");
    for v in values {
        print!(" {v:>8.3}");
    }
    if with_gmean {
        print!(" {:>8.3}", sim_core::stats::gmean(values));
    }
    println!();
}

/// Prints the benchmark-name column header.
pub fn print_header(first: &str, with_gmean: bool) {
    print!("{first:<14}");
    for b in BENCHES {
        print!(" {b:>8}");
    }
    if with_gmean {
        print!(" {:>8}", "GMEAN");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_concurrency_is_defined_for_all_cells() {
        for b in BENCHES {
            for s in TmSystem::ALL {
                // Every cell resolves (None = unlimited is legal).
                let _ = optimal_concurrency(s, b);
            }
        }
        assert_eq!(optimal_concurrency(TmSystem::Getm, "AP"), Some(1));
        assert_eq!(optimal_concurrency(TmSystem::FgLock, "ATM"), None);
    }

    #[test]
    fn bench_list_matches_suite() {
        assert_eq!(BENCHES, workloads::suite::NAMES);
    }
}
