//! # bench
//!
//! The experiment harness: one binary per figure and table of the GETM
//! paper's evaluation (Sec. VI), plus criterion micro-benchmarks of the
//! hardware structures.
//!
//! Every binary prints the same rows/series the paper reports, normalized
//! the same way, so EXPERIMENTS.md can record paper-vs-measured side by
//! side. Run them with:
//!
//! ```text
//! cargo run -p bench --release --bin fig10
//! cargo run -p bench --release --bin all_figures   # everything
//! ```
//!
//! Each binary declares its cells as an [`gputm::sweep::ExperimentSpec`]
//! (see [`figures`]), prefetches them through the parallel sweep executor,
//! then renders from the [`Harness`]'s memo — so figures use every core
//! and `all_figures` simulates each distinct cell exactly once. Finished
//! cells persist in an on-disk result cache keyed by a stable hash of the
//! full cell description, making reruns nearly free. See [`cli`] for the
//! shared flags (`--paper-scale`, `--jobs`, `--serial`, `--no-cache`,
//! `--cache-dir`, `--quiet`).

#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod grid;
pub mod idle;
pub mod traceview;

use gputm::config::{GpuConfig, TmSystem};
use gputm::metrics::Metrics;
use gputm::sweep::{run_sweep, run_sweep_report, CellSpec, ExperimentSpec, SweepOptions};
use std::collections::HashMap;
use std::sync::Mutex;
use workloads::suite::{Benchmark, Scale};

/// The optimal transactional-concurrency setting per system and benchmark.
/// `None` means unlimited.
///
/// The paper's methodology picks the optimum *for each configuration*
/// (its Table IV lists the values its simulator found); these are the
/// optima the `table4` sweep finds on THIS simulator. They differ from
/// the paper's in places — EXPERIMENTS.md records both side by side.
pub fn optimal_concurrency(system: TmSystem, bench: Benchmark) -> Option<u32> {
    use Benchmark::*;
    use TmSystem::*;
    let (wtm, eapg, el, getm) = match bench {
        HtH => (Some(4), Some(4), Some(4), Some(2)),
        HtM => (Some(4), Some(4), Some(4), Some(2)),
        HtL => (Some(2), Some(4), Some(2), Some(4)),
        Atm => (Some(16), Some(16), Some(4), Some(4)),
        Cl => (Some(16), None, Some(16), None),
        ClTo => (None, None, None, None),
        Bh => (Some(2), Some(4), Some(16), Some(8)),
        Cc => (None, None, None, None),
        Ap => (Some(1), Some(1), Some(1), Some(1)),
    };
    match system {
        WarpTmLL => wtm,
        Eapg => eapg,
        WarpTmEL => el,
        Getm => getm,
        FgLock => None,
    }
}

/// The experiment front end shared by every figure binary: a scale, the
/// sweep options parsed from the command line, and a process-wide memo of
/// finished cells.
///
/// The intended flow is [`Harness::prefetch`] with the figure's full
/// [`ExperimentSpec`] (one parallel, disk-cached sweep), then any number
/// of [`Harness::run`] calls from the render code, which hit the memo.
/// Cells a render requests without prefetching still work — they simulate
/// on demand (serially) — so specs are a performance contract, not a
/// correctness one.
pub struct Harness {
    scale: Scale,
    opts: SweepOptions,
    trace: Option<std::path::PathBuf>,
    probe: Option<String>,
    memo: Mutex<HashMap<String, Metrics>>,
}

impl Harness {
    /// A harness with explicit settings (no trace or probe request).
    pub fn new(scale: Scale, opts: SweepOptions) -> Self {
        Harness {
            scale,
            opts,
            trace: None,
            probe: None,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// A harness configured from the process's command line (see [`cli`]).
    pub fn from_cli() -> Self {
        let args = cli::Args::parse();
        let mut h = Harness::new(args.scale, args.sweep_options());
        h.trace = args.trace;
        h.probe = args.probe;
        h
    }

    /// The benchmark scale every run uses.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Runs every cell of `spec` through the parallel sweep executor and
    /// memoizes the results, asserting workload invariants on each.
    ///
    /// # Panics
    ///
    /// Panics if any cell fails or violates its workload's invariants — a
    /// figure must never be built from a broken run. Before panicking,
    /// every cell failure (not just the first) is printed to stderr, so a
    /// long sweep's postmortem starts with the full casualty list.
    pub fn prefetch(&self, spec: &ExperimentSpec) {
        let report = run_sweep_report(spec, &self.opts);
        if !report.is_complete() {
            for f in &report.failures {
                eprintln!("sweep: {f}");
            }
            panic!(
                "sweep failed: {} of {} cells failed ({} skipped)",
                report.failures.len(),
                spec.len(),
                report.skipped
            );
        }
        let mut memo = self.memo.lock().expect("memo lock");
        for o in report.outcomes {
            o.metrics.assert_correct();
            memo.insert(o.cell.cache_key(), o.metrics);
        }
    }

    /// Runs (or recalls) `bench` under `system` with `cfg` at the harness
    /// scale, asserting the workload invariants.
    ///
    /// # Panics
    ///
    /// See [`Harness::prefetch`].
    pub fn run(&self, bench: Benchmark, system: TmSystem, cfg: &GpuConfig) -> Metrics {
        let cell = CellSpec::new(bench, self.scale, system, cfg.clone());
        let key = cell.cache_key();
        if let Some(m) = self.memo.lock().expect("memo lock").get(&key) {
            return m.clone();
        }
        let spec = ExperimentSpec::from_cells(vec![cell]);
        let outcome = run_sweep(&spec, &self.opts)
            .unwrap_or_else(|e| panic!("{bench} under {system}: {e}"))
            .pop()
            .expect("one cell in, one outcome out");
        outcome.metrics.assert_correct();
        self.memo
            .lock()
            .expect("memo lock")
            .insert(key, outcome.metrics.clone());
        outcome.metrics
    }

    /// Like [`Harness::run`] with the Table IV optimal concurrency applied
    /// for the `(system, bench)` pair on top of `base`.
    pub fn run_optimal(&self, bench: Benchmark, system: TmSystem, base: &GpuConfig) -> Metrics {
        let cfg = base
            .clone()
            .with_concurrency(optimal_concurrency(system, bench));
        self.run(bench, system, &cfg)
    }

    /// Honors `--trace` / `--probe`: re-runs the figure's representative
    /// cell (its first GETM cell) with tracing attached, writes the Chrome
    /// trace-event JSON, and prints the requested probe's time series.
    /// No-op when neither flag was given.
    pub fn emit_trace_artifacts(&self, spec: &ExperimentSpec) {
        if self.trace.is_none() && self.probe.is_none() {
            return;
        }
        let Some(cell) = traceview::representative_cell(spec.cells()) else {
            eprintln!("trace: this figure runs no cells; nothing to trace");
            return;
        };
        let (bus, metrics) = traceview::capture(cell, 1 << 20);
        if let Some(path) = &self.trace {
            traceview::write_chrome(&bus, cell, path);
            let h = &metrics.metadata_latency;
            if h.count() > 0 {
                eprintln!(
                    "trace: metadata latency p50/p95/p99 = {}/{}/{} cycles over {} accesses",
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.count()
                );
            }
        }
        if let Some(probe) = &self.probe {
            traceview::print_probe(&bus, probe);
        }
    }
}

/// Prints a header for a figure/table reproduction.
pub fn banner(id: &str, caption: &str) {
    println!("=== {id}: {caption} ===");
}

/// Prints one normalized data series as a row: `label v1 v2 ... gmean`.
pub fn print_row(label: &str, values: &[f64], with_gmean: bool) {
    print!("{label:<14}");
    for v in values {
        print!(" {v:>8.3}");
    }
    if with_gmean {
        print!(" {:>8.3}", sim_core::stats::gmean(values));
    }
    println!();
}

/// Prints the benchmark-name column header.
pub fn print_header(first: &str, with_gmean: bool) {
    print!("{first:<14}");
    for b in Benchmark::ALL {
        print!(" {:>8}", b.name());
    }
    if with_gmean {
        print!(" {:>8}", "GMEAN");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_concurrency_is_defined_for_all_cells() {
        for b in Benchmark::ALL {
            for s in TmSystem::ALL {
                // Every cell resolves (None = unlimited is legal).
                let _ = optimal_concurrency(s, b);
            }
        }
        assert_eq!(optimal_concurrency(TmSystem::Getm, Benchmark::Ap), Some(1));
        assert_eq!(optimal_concurrency(TmSystem::FgLock, Benchmark::Atm), None);
    }

    #[test]
    fn every_figure_spec_builds() {
        for f in &figures::ALL {
            let spec = (f.spec)(Scale::Fast);
            // table5 is analytical (no simulations); everything else sweeps.
            if f.id != "table5" {
                assert!(!spec.is_empty(), "{} has an empty spec", f.id);
            }
        }
    }

    #[test]
    fn figures_are_found_by_id() {
        assert!(figures::by_id("fig3").is_some());
        assert!(figures::by_id("table4").is_some());
        assert!(figures::by_id("fig99").is_none());
    }
}
