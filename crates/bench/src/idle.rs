//! Synthetic idle-heavy workload for benchmarking the engine loop itself.
//!
//! Every thread spins on a compute timer and then bumps a private counter
//! transactionally, so the machine is almost always parked on known wake
//! cycles — the shape the engine's idle skip-ahead exists for. Real
//! benchmarks exercise the contended path; this one isolates the
//! sparse/idle path that dominates low-occupancy sweep cells.

use gpu_mem::Addr;
use gpu_simt::program::ScriptProgram;
use gpu_simt::{BoxedProgram, Op};
use workloads::{SyncMode, Workload};

/// Private-slot spin/commit loop (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct IdleHeavy {
    /// Threads launched (each owns one counter word).
    pub threads: usize,
    /// Transactional increments per thread.
    pub rounds: u64,
    /// Compute-timer cycles between increments.
    pub spin: u32,
}

impl IdleHeavy {
    /// The counter word of thread `tid`.
    pub fn slot(tid: usize) -> Addr {
        Addr(0x1000 + tid as u64 * 8)
    }
}

impl Workload for IdleHeavy {
    fn name(&self) -> &str {
        "IDLE"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn program(&self, tid: usize, _mode: SyncMode) -> BoxedProgram {
        let slot = Self::slot(tid);
        let mut ops = Vec::with_capacity(self.rounds as usize * 5);
        for round in 0..self.rounds {
            ops.push(Op::Compute(self.spin));
            ops.push(Op::TxBegin);
            ops.push(Op::TxLoad(slot));
            ops.push(Op::TxStore(slot, round + 1));
            ops.push(Op::TxCommit);
        }
        Box::new(ScriptProgram::new(ops))
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        for tid in 0..self.threads {
            let got = mem(Self::slot(tid));
            if got != self.rounds {
                return Err(format!(
                    "thread {tid}: slot holds {got}, want {}",
                    self.rounds
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputm::config::{GpuConfig, TmSystem};
    use gputm::runner::Sim;

    #[test]
    fn idle_heavy_completes_and_checks() {
        let cfg = GpuConfig::tiny_test();
        let w = IdleHeavy {
            threads: 8,
            rounds: 3,
            spin: 200,
        };
        let m = Sim::new(&cfg).system(TmSystem::Getm).run(&w).expect("run");
        m.assert_correct();
    }
}
