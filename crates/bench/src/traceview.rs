//! Consumers of a recorded event stream: file exports and terminal views.
//!
//! The simulator side of tracing lives in `sim_core::trace` (the bus and
//! the exporters); this module is the harness side — picking the
//! representative cell of a figure, re-running it traced, and turning the
//! captured bus into the artifacts the user asked for (`--trace`,
//! `--probe`, and the `trace` binary).

use gputm::config::TmSystem;
use gputm::metrics::Metrics;
use gputm::sweep::CellSpec;
use sim_core::trace::{export_chrome_trace, export_flame_summary, EventBus, SimEvent};
use sim_core::{Recorder, TimeSeries};
use std::io::Write;
use std::path::Path;

/// The probe gauges the engine samples (every 64 cycles, per partition).
pub const PROBES: [&str; 4] = [
    "vu-backlog",
    "cu-backlog",
    "stall-occupancy",
    "up-xbar-backlog",
];

/// The cell a figure's trace represents: its first GETM cell, or failing
/// that its first cell (FGLock-only figures still produce a trace — just
/// without validation-unit events).
pub fn representative_cell(cells: &[CellSpec]) -> Option<&CellSpec> {
    cells
        .iter()
        .find(|c| c.system == TmSystem::Getm)
        .or_else(|| cells.first())
}

/// Re-runs `cell` with tracing attached and returns the captured bus plus
/// the run's metrics.
///
/// # Panics
///
/// Panics if the run fails or violates workload invariants — a trace of a
/// broken run would mislead.
pub fn capture(cell: &CellSpec, capacity: usize) -> (EventBus, Metrics) {
    let rec = Recorder::recording(capacity);
    let metrics = cell
        .run_traced(rec.clone())
        .unwrap_or_else(|e| panic!("traced run of {} failed: {e}", cell.label()));
    metrics.assert_correct();
    let bus = rec.bus().expect("recording recorder has a bus");
    drop(rec);
    let bus = std::rc::Rc::try_unwrap(bus)
        .expect("engine dropped its recorder clones")
        .into_inner();
    (bus, metrics)
}

/// Writes the bus as Chrome trace-event JSON to `path` and reports what
/// landed there.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_chrome(bus: &EventBus, cell: &CellSpec, path: &Path) {
    let mut out = Vec::new();
    export_chrome_trace(bus, &mut out).expect("in-memory export cannot fail");
    std::fs::write(path, &out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!(
        "trace: {} events of {} ({} dropped by the ring) -> {}",
        bus.len(),
        cell.label(),
        bus.dropped(),
        path.display()
    );
    eprintln!("trace: open in https://ui.perfetto.dev or chrome://tracing");
}

/// Prints the flame-style text summary of the bus to `w`.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_flame(bus: &EventBus, w: &mut impl Write) -> std::io::Result<()> {
    export_flame_summary(bus, w)
}

/// Folds one probe gauge out of the bus into per-partition windowed time
/// series (window = `window` cycles, keeping the per-window maximum).
pub fn probe_series(bus: &EventBus, probe: &str, window: u64) -> Vec<(u32, TimeSeries)> {
    let mut series: Vec<(u32, TimeSeries)> = Vec::new();
    for (stamp, event) in bus.iter() {
        let SimEvent::Probe { name, value } = event else {
            continue;
        };
        if *name != probe {
            continue;
        }
        let p = stamp.partition;
        let ts = match series.iter_mut().find(|(q, _)| *q == p) {
            Some((_, ts)) => ts,
            None => {
                series.push((p, TimeSeries::new(window)));
                &mut series.last_mut().expect("just pushed").1
            }
        };
        ts.record(stamp.cycle, *value);
    }
    series.sort_by_key(|(p, _)| *p);
    series
}

/// Prints a probe's per-partition time series as sparkline-style rows.
pub fn print_probe(bus: &EventBus, probe: &str) {
    let window = 4096;
    let series = probe_series(bus, probe, window);
    if series.is_empty() {
        println!(
            "probe {probe:?}: no samples (known probes: {})",
            PROBES.join(", ")
        );
        return;
    }
    println!("\n-- probe {probe} (per-window max, window = {window} cycles) --");
    for (p, ts) in &series {
        let peak = ts.peak();
        print!("p{p:<3} peak {peak:>8.1} |");
        for v in ts.points() {
            // A 0..9 digit per window, scaled to the partition's peak.
            let d = if peak > 0.0 {
                ((v / peak) * 9.0).round() as u32
            } else {
                0
            };
            print!("{d}");
        }
        println!("|");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputm::config::GpuConfig;
    use workloads::suite::{Benchmark, Scale};

    fn cell() -> CellSpec {
        CellSpec::new(
            Benchmark::Atm,
            Scale::Fast,
            TmSystem::Getm,
            GpuConfig::tiny_test(),
        )
    }

    #[test]
    fn capture_produces_events_and_probe_series() {
        let (bus, metrics) = capture(&cell(), 1 << 20);
        assert!(!bus.is_empty());
        assert!(metrics.commits > 0);
        let series = probe_series(&bus, "vu-backlog", 1024);
        assert!(!series.is_empty(), "engine must sample vu-backlog");
        let unknown = probe_series(&bus, "no-such-probe", 1024);
        assert!(unknown.is_empty());
    }

    #[test]
    fn representative_cell_prefers_getm() {
        let other = CellSpec::new(
            Benchmark::Atm,
            Scale::Fast,
            TmSystem::FgLock,
            GpuConfig::tiny_test(),
        );
        let cells = vec![other.clone(), cell()];
        assert_eq!(representative_cell(&cells).unwrap().system, TmSystem::Getm);
        let only = vec![other];
        assert_eq!(representative_cell(&only).unwrap().system, TmSystem::FgLock);
        assert!(representative_cell(&[]).is_none());
    }

    #[test]
    fn chrome_export_is_written() {
        let (bus, _) = capture(&cell(), 1 << 20);
        let path = std::env::temp_dir().join(format!("getm-traceview-{}.json", std::process::id()));
        write_chrome(&bus, &cell(), &path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"));
        std::fs::remove_file(&path).ok();
    }
}
