//! Grid selection and report rendering shared by the `sweep` and
//! `campaign` binaries.
//!
//! Both binaries accept the same grid vocabulary — positional benchmark
//! names, `--system NAME` (repeatable), `--all-systems`, `--tiny` — and
//! must print byte-identical stdout for the same grid: the distributed
//! campaign's acceptance test is literally `diff` against a
//! single-process sweep. Keeping selection and rendering in one place is
//! what makes that equivalence structural instead of coincidental.

use gputm::config::{GpuConfig, TmSystem};
use gputm::sweep::{ExperimentSpec, SweepReport};
use std::process::ExitCode;
use workloads::suite::Benchmark;

/// Which machine generation the base config models (`--gpu`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpuModel {
    /// Paper-faithful Table II machine: unsectored caches, modulo
    /// interleave, fixed-latency GDDR5 (the default).
    #[default]
    Fermi,
    /// Volta-class memory tier: sectored streaming L1, xor-hashed banked
    /// LLC, HBM pseudo-channel timing (DESIGN.md §16).
    Volta,
}

/// Grid-selection flags: which benchmarks, systems, and base machine.
#[derive(Debug, Clone, Default)]
pub struct GridArgs {
    /// Sweep the small test machine instead of the 15-core Fermi.
    pub tiny: bool,
    /// Run every TM system (overrides `systems`).
    pub all_systems: bool,
    /// Explicitly selected systems (default: GETM alone).
    pub systems: Vec<TmSystem>,
    /// Machine generation for the base config (`--gpu fermi|volta`).
    pub gpu: GpuModel,
}

impl GridArgs {
    /// Strips the grid flags out of `args`, returning the parsed
    /// selection and the remaining arguments (for [`crate::cli::Args`]).
    ///
    /// # Errors
    ///
    /// Describes an unknown `--system` value or a missing flag value.
    pub fn strip_from(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(Self, Vec<String>), String> {
        let mut out = GridArgs::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--tiny" => out.tiny = true,
                "--all-systems" => out.all_systems = true,
                "--system" => {
                    let v = it.next().ok_or("--system needs a value")?;
                    out.systems.push(parse_system(&v)?);
                }
                "--gpu" => {
                    let v = it.next().ok_or("--gpu needs a value")?;
                    out.gpu = match v.to_ascii_lowercase().as_str() {
                        "fermi" => GpuModel::Fermi,
                        "volta" => GpuModel::Volta,
                        other => {
                            return Err(format!("unknown gpu {other:?} (known: fermi, volta)"))
                        }
                    };
                }
                other => rest.push(other.to_string()),
            }
        }
        Ok((out, rest))
    }

    /// Builds the experiment grid these flags plus the shared CLI
    /// arguments describe. Both `sweep` and `campaign` route through
    /// here, so a coordinator and its workers (and the reference sweep a
    /// chaos test diffs against) always agree on cell identity and order.
    ///
    /// # Errors
    ///
    /// Describes an unknown positional benchmark name.
    pub fn build_spec(&self, args: &crate::cli::Args) -> Result<ExperimentSpec, String> {
        let systems = if self.all_systems {
            TmSystem::ALL.to_vec()
        } else if self.systems.is_empty() {
            vec![TmSystem::Getm]
        } else {
            self.systems.clone()
        };
        let benchmarks: Vec<Benchmark> = if args.positional.is_empty() {
            Benchmark::ALL.to_vec()
        } else {
            args.positional
                .iter()
                .map(|name| name.parse().map_err(|e| format!("{e}")))
                .collect::<Result<_, _>>()?
        };
        let base = match (self.tiny, self.gpu) {
            (true, GpuModel::Fermi) => GpuConfig::tiny_test(),
            (true, GpuModel::Volta) => GpuConfig::tiny_volta(),
            (false, GpuModel::Fermi) => GpuConfig::fermi_15core(),
            (false, GpuModel::Volta) => GpuConfig::volta_80core(),
        };
        Ok(ExperimentSpec::grid()
            .benchmarks(benchmarks)
            .systems(systems)
            .scale(args.scale)
            .base(base)
            .build())
    }
}

fn parse_system(name: &str) -> Result<TmSystem, String> {
    TmSystem::ALL
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let known: Vec<&str> = TmSystem::ALL.iter().map(|s| s.label()).collect();
            format!("unknown system {name:?} (known: {})", known.join(", "))
        })
}

/// Renders a sweep/campaign report: the deterministic stdout table (one
/// row per completed cell, spec order), failure/skip lines on stderr,
/// and the process exit code. `tag` prefixes the stderr lines (`sweep`
/// or `campaign`) — stdout is identical either way.
pub fn render_report(report: &SweepReport, total: usize, tag: &str) -> ExitCode {
    println!(
        "{:<18} {:>12} {:>9} {:>9} {:>9}",
        "cell", "cycles", "commits", "aborts", "degraded"
    );
    for o in &report.outcomes {
        println!(
            "{:<18} {:>12} {:>9} {:>9} {:>9}",
            o.cell.label(),
            o.metrics.cycles,
            o.metrics.commits,
            o.metrics.aborts,
            o.metrics.degraded
        );
    }
    for f in &report.failures {
        eprintln!("{tag}: FAILED {f}");
    }
    if report.skipped > 0 {
        eprintln!(
            "{tag}: {} cell(s) skipped after the first failure",
            report.skipped
        );
    }
    if report.is_complete() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{tag}: {} of {} cell(s) did not complete",
            report.failures.len() + report.skipped,
            total
        );
        ExitCode::FAILURE
    }
}

/// The grid-selection usage text shared by `sweep` and `campaign`.
pub const GRID_USAGE: &str = "\
grid selection (sweep and campaign):
  [BENCH ...]        benchmark names (default: the whole suite)
  --system NAME      a TM system to run (repeatable; default: GETM)
  --all-systems      run every TM system
  --tiny             sweep the small test machine, not the 15-core Fermi
  --gpu NAME         machine generation: fermi (default) or volta
                     (sectored L1 + hashed banked LLC + HBM timing)";

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn grid_flags_are_stripped_and_rest_passes_through() {
        let (g, rest) =
            GridArgs::strip_from(strs(&["--tiny", "HT-H", "--system", "getm", "--quiet"])).unwrap();
        assert!(g.tiny);
        assert_eq!(g.systems, vec![TmSystem::Getm]);
        assert_eq!(rest, strs(&["HT-H", "--quiet"]));
    }

    #[test]
    fn unknown_system_is_an_error() {
        assert!(GridArgs::strip_from(strs(&["--system", "zzz"]))
            .unwrap_err()
            .contains("unknown system"));
        assert!(GridArgs::strip_from(strs(&["--system"]))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn spec_defaults_to_whole_suite_under_getm() {
        let (g, rest) = GridArgs::strip_from(strs(&["--tiny"])).unwrap();
        let args = crate::cli::Args::parse_from(rest).unwrap();
        let spec = g.build_spec(&args).unwrap();
        assert_eq!(spec.len(), Benchmark::ALL.len());
        assert!(spec.cells().iter().all(|c| c.system == TmSystem::Getm));
    }

    #[test]
    fn gpu_flag_selects_the_volta_presets() {
        let (g, rest) = GridArgs::strip_from(strs(&["--gpu", "volta", "ATM"])).unwrap();
        assert_eq!(g.gpu, GpuModel::Volta);
        assert_eq!(rest, strs(&["ATM"]));
        let args = crate::cli::Args::parse_from(rest).unwrap();
        let spec = g.build_spec(&args).unwrap();
        assert_eq!(
            format!("{:?}", spec.cells()[0].cfg),
            format!("{:?}", GpuConfig::volta_80core())
        );

        // --tiny composes: the tiny volta machine, not the tiny fermi one.
        let (g, rest) = GridArgs::strip_from(strs(&["--tiny", "--gpu", "volta", "ATM"])).unwrap();
        let args = crate::cli::Args::parse_from(rest).unwrap();
        let spec = g.build_spec(&args).unwrap();
        assert_eq!(
            format!("{:?}", spec.cells()[0].cfg),
            format!("{:?}", GpuConfig::tiny_volta())
        );

        assert!(GridArgs::strip_from(strs(&["--gpu", "pascal"]))
            .unwrap_err()
            .contains("unknown gpu"));
        assert!(GridArgs::strip_from(strs(&["--gpu"]))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn fermi_and_volta_grids_have_distinct_cache_identities() {
        // The sweep cache keys hash the full config debug rendering, so
        // the two machine generations must never collide on disk.
        let build = |gpu: &str| {
            let (g, rest) = GridArgs::strip_from(strs(&["--tiny", "--gpu", gpu, "ATM"])).unwrap();
            let args = crate::cli::Args::parse_from(rest).unwrap();
            g.build_spec(&args).unwrap()
        };
        let (fermi, volta) = (build("fermi"), build("volta"));
        assert_ne!(
            gputm::sweep::sweep_digest(fermi.cells()),
            gputm::sweep::sweep_digest(volta.cells())
        );
        assert_ne!(fermi.cells()[0].cache_key(), volta.cells()[0].cache_key());
    }

    #[test]
    fn same_flags_build_identical_grids() {
        let build = || {
            let (g, rest) =
                GridArgs::strip_from(strs(&["--tiny", "ATM", "--system", "getm"])).unwrap();
            let args = crate::cli::Args::parse_from(rest).unwrap();
            g.build_spec(&args).unwrap()
        };
        let (a, b) = (build(), build());
        assert_eq!(
            gputm::sweep::sweep_digest(a.cells()),
            gputm::sweep::sweep_digest(b.cells())
        );
    }
}
