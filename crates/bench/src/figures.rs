//! Every figure and table of the evaluation, as data: an [`ExperimentSpec`]
//! naming the cells it needs, plus a render function that reads them back
//! from a [`Harness`] and prints the paper's rows.
//!
//! Splitting spec from render is what lets the harness run an entire
//! figure — or the union of all thirteen, for `all_figures` — as one
//! parallel, disk-cached sweep before any formatting happens. The figure
//! binaries are one-line wrappers over [`run_standalone`].

use crate::{banner, optimal_concurrency, print_header, print_row, Harness};
use getm::ApproxMode;
use gputm::config::{GpuConfig, TmSystem};
use gputm::sweep::{CellSpec, ExperimentSpec};
use workloads::suite::{Benchmark, Scale};

/// One reproduced figure or table.
pub struct Figure {
    /// Binary/figure identifier ("fig3", "table4", ...).
    pub id: &'static str,
    /// The cells the render reads (empty for analytical tables).
    pub spec: fn(Scale) -> ExperimentSpec,
    /// Prints the figure from a harness holding (or able to run) the cells.
    pub render: fn(&Harness),
}

/// All fourteen reproductions, in the order `all_figures` prints them.
pub const ALL: [Figure; 14] = [
    Figure {
        id: "fig3",
        spec: fig3_spec,
        render: fig3,
    },
    Figure {
        id: "fig4",
        spec: fig4_spec,
        render: fig4,
    },
    Figure {
        id: "fig10",
        spec: fig10_spec,
        render: fig10,
    },
    Figure {
        id: "fig11",
        spec: fig11_spec,
        render: fig11,
    },
    Figure {
        id: "fig12",
        spec: fig12_spec,
        render: fig12,
    },
    Figure {
        id: "fig13",
        spec: getm_only_spec,
        render: fig13,
    },
    Figure {
        id: "fig14",
        spec: fig14_spec,
        render: fig14,
    },
    Figure {
        id: "fig15",
        spec: getm_only_spec,
        render: fig15,
    },
    Figure {
        id: "fig16",
        spec: getm_only_spec,
        render: fig16,
    },
    Figure {
        id: "fig17",
        spec: fig17_spec,
        render: fig17,
    },
    Figure {
        id: "table4",
        spec: table4_spec,
        render: table4,
    },
    Figure {
        id: "table5",
        spec: empty_spec,
        render: table5,
    },
    Figure {
        id: "ablation",
        spec: ablation_spec,
        render: ablation,
    },
    Figure {
        id: "volta",
        spec: volta_spec,
        render: volta,
    },
];

/// Looks a figure up by its identifier.
pub fn by_id(id: &str) -> Option<&'static Figure> {
    ALL.iter().find(|f| f.id == id)
}

/// The standalone-binary entry point: build a harness from the command
/// line, prefetch the figure's cells in parallel, render.
///
/// # Panics
///
/// Panics on an unknown id (a bug in the calling binary) or a failed run.
pub fn run_standalone(id: &str) {
    let f = by_id(id).unwrap_or_else(|| panic!("unknown figure id {id:?}"));
    let h = Harness::from_cli();
    let spec = (f.spec)(h.scale());
    h.prefetch(&spec);
    (f.render)(&h);
    h.emit_trace_artifacts(&spec);
}

/// The six concurrency limits the paper sweeps, with their display names.
const LIMITS: [(&str, Option<u32>); 6] = [
    ("1", Some(1)),
    ("2", Some(2)),
    ("4", Some(4)),
    ("8", Some(8)),
    ("16", Some(16)),
    ("NL", None),
];

/// Cells for every benchmark under each `system` at its Table IV optimal
/// concurrency, on `base`.
fn optimal_spec(scale: Scale, systems: &[TmSystem], base: &GpuConfig) -> ExperimentSpec {
    let mut spec = ExperimentSpec::default();
    for &system in systems {
        for b in Benchmark::ALL {
            let cfg = base
                .clone()
                .with_concurrency(optimal_concurrency(system, b));
            spec.push(CellSpec::new(b, scale, system, cfg));
        }
    }
    spec
}

fn empty_spec(_scale: Scale) -> ExperimentSpec {
    ExperimentSpec::default()
}

/// The GETM-only optimal runs shared by Figs. 13, 15, and 16.
fn getm_only_spec(scale: Scale) -> ExperimentSpec {
    optimal_spec(scale, &[TmSystem::Getm], &GpuConfig::fermi_15core())
}

// ---------------------------------------------------------------- Fig. 3

fn fig3_spec(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::grid()
        .benchmarks([Benchmark::HtH])
        .systems([TmSystem::WarpTmLL, TmSystem::WarpTmEL])
        .concurrency_limits(LIMITS.map(|(_, l)| l))
        .scale(scale)
        .build()
}

/// Fig. 3: per-transaction exec / wait / total cycles of WarpTM-LL versus
/// the idealized eager-lazy variant (WarpTM-EL) as the per-core
/// transactional-concurrency limit grows, on the HT-H workload.
///
/// The paper's finding: with lazy validation, more concurrency means more
/// (and more expensive) retries, so per-transaction cycles climb steeply;
/// the eager variant stays flat and its wait time *falls* as extra warps
/// hide latency. Values are normalized to the highest data point, like
/// the paper's plot.
/// One fig. 3 series: system label, then per-limit exec / wait / total
/// cycles per committed transaction.
type Fig3Row = (&'static str, Vec<f64>, Vec<f64>, Vec<f64>);

fn fig3(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner(
        "Fig. 3",
        "tx cycles vs concurrency limit, HT-H (normalized to max)",
    );

    let mut rows: Vec<Fig3Row> = Vec::new();
    for system in [TmSystem::WarpTmLL, TmSystem::WarpTmEL] {
        let mut exec = Vec::new();
        let mut wait = Vec::new();
        let mut total = Vec::new();
        for &(_, limit) in &LIMITS {
            let cfg = base.clone().with_concurrency(limit);
            let m = h.run(Benchmark::HtH, system, &cfg);
            let per_tx = |v: u64| v as f64 / m.commits.max(1) as f64;
            exec.push(per_tx(m.tx_exec_cycles));
            wait.push(per_tx(m.tx_wait_cycles));
            total.push(per_tx(m.total_tx_cycles()));
        }
        rows.push((system.label(), exec, wait, total));
    }

    for (metric, pick) in [
        ("tx exec cycles", 0usize),
        ("tx wait cycles", 1),
        ("total tx cycles", 2),
    ] {
        println!("\n-- {metric} (per committed tx, normalized to max) --");
        print!("{:<14}", "limit");
        for (name, _) in &LIMITS {
            print!(" {name:>8}");
        }
        println!();
        let max = rows
            .iter()
            .flat_map(|r| match pick {
                0 => r.1.iter(),
                1 => r.2.iter(),
                _ => r.3.iter(),
            })
            .fold(1e-9f64, |a, &b| a.max(b));
        for r in &rows {
            let series = match pick {
                0 => &r.1,
                1 => &r.2,
                _ => &r.3,
            };
            print!("{:<14}", r.0);
            for v in series {
                print!(" {:>8.3}", v / max);
            }
            println!();
        }
    }
    println!(
        "\nPaper shape: LL's exec and total climb with concurrency; EL stays \
         flat with wait falling, supporting much higher concurrency."
    );
}

// ---------------------------------------------------------------- Fig. 4

fn fig4_spec(scale: Scale) -> ExperimentSpec {
    optimal_spec(
        scale,
        &[TmSystem::WarpTmLL, TmSystem::WarpTmEL, TmSystem::FgLock],
        &GpuConfig::fermi_15core(),
    )
}

/// Fig. 4: WarpTM with lazy (LL) versus idealized eager (EL) conflict
/// detection, compared against hand-optimized fine-grained locks, at each
/// configuration's optimal concurrency.
///
/// Top panel: transaction-only cycles (exec + wait) normalized to
/// WarpTM-LL per benchmark. Bottom panel: total execution time normalized
/// to the FGLock baseline.
fn fig4(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner(
        "Fig. 4",
        "WarpTM-LL vs WarpTM-EL vs FGLock (optimal concurrency)",
    );

    // Top: tx-only cycles normalized to WarpTM-LL.
    println!("\n-- transaction cycles (exec+wait) normalized to WarpTM-LL --");
    print_header("system", false);
    let ll: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| {
            h.run_optimal(b, TmSystem::WarpTmLL, &base)
                .total_tx_cycles() as f64
        })
        .collect();
    print_row("WarpTM-LL", &vec![1.0; Benchmark::ALL.len()], false);
    let el: Vec<f64> = Benchmark::ALL
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            h.run_optimal(b, TmSystem::WarpTmEL, &base)
                .total_tx_cycles() as f64
                / ll[i].max(1.0)
        })
        .collect();
    print_row("WarpTM-EL", &el, false);

    // Bottom: total execution time normalized to FGLock.
    println!("\n-- total execution time normalized to FGLock --");
    print_header("system", true);
    let fgl: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| h.run_optimal(b, TmSystem::FgLock, &base).cycles as f64)
        .collect();
    for system in [TmSystem::WarpTmLL, TmSystem::WarpTmEL] {
        let series: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .map(|(i, &b)| h.run_optimal(b, system, &base).cycles as f64 / fgl[i].max(1.0))
            .collect();
        print_row(system.label(), &series, true);
    }
    println!(
        "\nPaper shape: EL cuts transactional cycles well below LL on \
         contended benchmarks and narrows the gap to fine-grained locks."
    );
}

// --------------------------------------------------------------- Fig. 10

fn fig10_spec(scale: Scale) -> ExperimentSpec {
    optimal_spec(
        scale,
        &[TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm],
        &GpuConfig::fermi_15core(),
    )
}

/// Fig. 10: transaction-only execution and wait time for WarpTM, idealized
/// EAPG, and GETM, normalized to WarpTM, at each system's optimal
/// concurrency.
fn fig10(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner(
        "Fig. 10",
        "tx exec+wait normalized to WarpTM (optimal concurrency)",
    );

    let wtm: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| {
            h.run_optimal(b, TmSystem::WarpTmLL, &base)
                .total_tx_cycles() as f64
        })
        .collect();

    println!("\n{:<14} {:>8} {:>8}", "", "EXEC", "WAIT");
    print_header("system", true);
    for system in [TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm] {
        let mut exec_w = Vec::new();
        let mut wait_w = Vec::new();
        let mut total = Vec::new();
        for (i, &b) in Benchmark::ALL.iter().enumerate() {
            let m = h.run_optimal(b, system, &base);
            let denom = wtm[i].max(1.0);
            exec_w.push(m.tx_exec_cycles as f64 / denom);
            wait_w.push(m.tx_wait_cycles as f64 / denom);
            total.push(m.total_tx_cycles() as f64 / denom);
        }
        print_row(&format!("{} total", system.label()), &total, true);
        print_row(&format!("{}  exec", system.label()), &exec_w, false);
        print_row(&format!("{}  wait", system.label()), &wait_w, false);
    }
    println!(
        "\nPaper shape: GETM reduces both exec and wait on most workloads; \
         EAPG tracks WarpTM or slightly worse."
    );
}

// --------------------------------------------------------------- Fig. 11

fn fig11_spec(scale: Scale) -> ExperimentSpec {
    optimal_spec(
        scale,
        &[
            TmSystem::FgLock,
            TmSystem::WarpTmLL,
            TmSystem::Eapg,
            TmSystem::Getm,
        ],
        &GpuConfig::fermi_15core(),
    )
}

/// Fig. 11: total execution time (transactional and non-transactional
/// parts) normalized to the fine-grained-lock baseline, for WarpTM,
/// idealized EAPG, and GETM at optimal concurrency.
fn fig11(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner("Fig. 11", "total execution time normalized to FGLock");

    let fgl: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| h.run_optimal(b, TmSystem::FgLock, &base).cycles as f64)
        .collect();

    print_header("system", true);
    print_row("FGLock", &vec![1.0; Benchmark::ALL.len()], true);
    for system in [TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm] {
        let series: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .map(|(i, &b)| h.run_optimal(b, system, &base).cycles as f64 / fgl[i].max(1.0))
            .collect();
        print_row(system.label(), &series, true);
    }
    println!(
        "\nPaper shape: GETM gmean ~1.2x faster than WarpTM and within ~7% \
         of FGLock; the largest wins are on high-contention workloads."
    );
}

// --------------------------------------------------------------- Fig. 12

fn fig12_spec(scale: Scale) -> ExperimentSpec {
    fig11_spec(scale) // same four systems at optimal concurrency
}

/// Fig. 12: total crossbar traffic normalized to WarpTM, at optimal
/// concurrency.
fn fig12(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner("Fig. 12", "crossbar traffic normalized to WarpTM");

    let wtm: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| h.run_optimal(b, TmSystem::WarpTmLL, &base).xbar_bytes as f64)
        .collect();

    print_header("system", true);
    for system in [
        TmSystem::FgLock,
        TmSystem::WarpTmLL,
        TmSystem::Eapg,
        TmSystem::Getm,
    ] {
        let series: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .map(|(i, &b)| h.run_optimal(b, system, &base).xbar_bytes as f64 / wtm[i].max(1.0))
            .collect();
        print_row(system.label(), &series, true);
    }
    println!(
        "\nPaper shape: GETM costs somewhat more traffic than WarpTM (it \
         contacts the LLC for stores too, and aborts more), EAPG costs the \
         most (broadcasts)."
    );
}

// --------------------------------------------------------------- Fig. 13

/// Fig. 13: mean validation-unit cycles per metadata-table access under
/// GETM (>= 1.0; the cuckoo table plus stash keeps insertions cheap even
/// at high load factors), with the distribution tail (p50/p95/p99) from
/// the latency histogram.
fn fig13(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner("Fig. 13", "mean GETM metadata access latency (cycles)");

    print_header("", false);
    print!("{:<14}", "GETM");
    let mut vals = Vec::new();
    let mut tail = sim_core::LogHistogram::default();
    for b in Benchmark::ALL {
        let m = h.run_optimal(b, TmSystem::Getm, &base);
        vals.extend(m.mean_metadata_access_cycles);
        print!(" {:>8}", fmt_opt(m.mean_metadata_access_cycles));
        tail.merge(&m.metadata_latency);
    }
    println!(
        " {:>8.2}",
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    );

    println!("\n-- latency distribution tail (log-2 buckets) --");
    print!("{:<14}", "percentile");
    for b in Benchmark::ALL {
        print!(" {:>8}", b.name());
    }
    println!(" {:>8}", "ALL");
    for (label, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        print!("{label:<14}");
        for b in Benchmark::ALL {
            let m = h.run_optimal(b, TmSystem::Getm, &base);
            print!(" {:>8}", m.metadata_latency.percentile(p));
        }
        println!(" {:>8}", tail.percentile(p));
    }
    println!(
        "\nPaper shape: close to 1.0 everywhere — long insertion chains are \
         rare because unlocked entries evict to the approximate table."
    );
}

/// Renders an optional mean: two decimals, or `-` for "not measured".
fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "-".into(),
    }
}

// --------------------------------------------------------------- Fig. 14

fn fig14_spec(scale: Scale) -> ExperimentSpec {
    let base = GpuConfig::fermi_15core();
    let mut spec = optimal_spec(scale, &[TmSystem::WarpTmLL], &base);
    for entries in [2048usize, 4096, 8192] {
        spec.extend(optimal_spec(
            scale,
            &[TmSystem::Getm],
            &base.clone().with_metadata_entries(entries),
        ));
    }
    for bytes in [16u64, 32, 64, 128] {
        spec.extend(optimal_spec(
            scale,
            &[TmSystem::Getm],
            &base.clone().with_granularity(bytes),
        ));
    }
    spec
}

/// Fig. 14: GETM sensitivity to metadata-table size (2K / 4K / 8K entries
/// GPU-wide, top panel) and to metadata granularity (16 / 32 / 64 / 128
/// bytes, bottom panel). Execution time is normalized to the WarpTM
/// baseline at its optimal concurrency.
fn fig14(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner(
        "Fig. 14",
        "GETM sensitivity to metadata size and granularity",
    );

    let wtm: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| h.run_optimal(b, TmSystem::WarpTmLL, &base).cycles as f64)
        .collect();

    println!("\n-- metadata entries GPU-wide (normalized to WarpTM) --");
    print_header("entries", true);
    for entries in [2048usize, 4096, 8192] {
        let series: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let cfg = base.clone().with_metadata_entries(entries);
                h.run_optimal(b, TmSystem::Getm, &cfg).cycles as f64 / wtm[i].max(1.0)
            })
            .collect();
        print_row(&format!("GETM-{}K", entries / 1024), &series, true);
    }

    println!("\n-- metadata granularity in bytes (normalized to WarpTM) --");
    print_header("granularity", true);
    for bytes in [16u64, 32, 64, 128] {
        let series: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let cfg = base.clone().with_granularity(bytes);
                h.run_optimal(b, TmSystem::Getm, &cfg).cycles as f64 / wtm[i].max(1.0)
            })
            .collect();
        print_row(&format!("GETM-{bytes}B"), &series, true);
    }
    println!(
        "\nPaper shape: 2K entries hurts under abundant parallelism, 8K \
         barely beats 4K; finer granularity helps (less false sharing) \
         until table pressure bites."
    );
}

// --------------------------------------------------------------- Fig. 15

/// Fig. 15: maximum total stall-buffer occupancy across all partitions at
/// any instant (GETM).
fn fig15(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner("Fig. 15", "max total stall-buffer occupancy (requests)");

    print!("{:<14}", "");
    for b in Benchmark::ALL {
        print!(" {:>8}", b.name());
    }
    println!();
    print!("{:<14}", "GETM");
    for b in Benchmark::ALL {
        let m = h.run_optimal(b, TmSystem::Getm, &base);
        print!(" {:>8}", m.max_stall_occupancy);
    }
    println!();
    println!(
        "\nPaper shape: small in absolute terms (never above 12 in the \
         paper's runs) — a few addresses with a few waiters suffice."
    );
}

// --------------------------------------------------------------- Fig. 16

/// Fig. 16: average number of requests concurrently queued per stalled
/// address in GETM's stall buffers.
fn fig16(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner("Fig. 16", "mean queued requests per stalled address");

    print_header("", false);
    print!("{:<14}", "GETM");
    let mut vals = Vec::new();
    for b in Benchmark::ALL {
        let m = h.run_optimal(b, TmSystem::Getm, &base);
        vals.extend(m.mean_stall_waiters_per_addr);
        print!(" {:>8}", fmt_opt(m.mean_stall_waiters_per_addr));
    }
    println!(
        " {:>8.2}",
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    );
    println!("\nPaper shape: close to 1 — addresses rarely have multiple waiters.");
}

// --------------------------------------------------------------- Fig. 17

fn fig17_spec(scale: Scale) -> ExperimentSpec {
    let systems = [TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm];
    let mut spec = optimal_spec(scale, &systems, &GpuConfig::fermi_15core());
    spec.extend(optimal_spec(scale, &systems, &GpuConfig::large_56core()));
    spec
}

/// Fig. 17: scalability — total execution time in the 15-core and 56-core
/// configurations, every system, normalized to 15-core WarpTM.
fn fig17(h: &Harness) {
    let small = GpuConfig::fermi_15core();
    let large = GpuConfig::large_56core();
    banner(
        "Fig. 17",
        "15-core vs 56-core, normalized to 15-core WarpTM",
    );

    let wtm15: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| h.run_optimal(b, TmSystem::WarpTmLL, &small).cycles as f64)
        .collect();

    print_header("config", true);
    for (tag, cfg) in [("", &small), ("-56Core", &large)] {
        for system in [TmSystem::WarpTmLL, TmSystem::Eapg, TmSystem::Getm] {
            let series: Vec<f64> = Benchmark::ALL
                .iter()
                .enumerate()
                .map(|(i, &b)| h.run_optimal(b, system, cfg).cycles as f64 / wtm15[i].max(1.0))
                .collect();
            print_row(&format!("{}{tag}", system.label()), &series, true);
        }
    }
    println!(
        "\nPaper shape: the 56-core trends mirror the 15-core setup — more \
         cores speed everything up, with GETM keeping its relative edge."
    );
}

// -------------------------------------------------------------- Table IV

const TABLE4_SYSTEMS: [TmSystem; 4] = [
    TmSystem::WarpTmLL,
    TmSystem::Eapg,
    TmSystem::WarpTmEL,
    TmSystem::Getm,
];

fn table4_spec(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::grid()
        .systems(TABLE4_SYSTEMS)
        .concurrency_limits(LIMITS.map(|(_, l)| l))
        .scale(scale)
        .build()
}

/// The paper's Table IV: (concurrency, aborts/1K commits) per system, in
/// WTM / EAPG / WTM-EL / GETM order. `None` concurrency = unlimited.
fn table4_paper_row(bench: Benchmark) -> [(Option<u32>, u32); 4] {
    use Benchmark::*;
    match bench {
        HtH => [
            (Some(2), 119),
            (Some(2), 113),
            (Some(8), 122),
            (Some(8), 460),
        ],
        HtM => [(Some(8), 98), (Some(4), 84), (Some(8), 83), (Some(8), 172)],
        HtL => [(Some(8), 80), (Some(4), 78), (Some(8), 78), (Some(8), 207)],
        Atm => [(Some(4), 27), (Some(4), 26), (Some(4), 25), (Some(4), 114)],
        Cl => [(Some(2), 93), (Some(2), 91), (Some(4), 119), (Some(4), 205)],
        ClTo => [(Some(4), 110), (Some(2), 61), (Some(4), 72), (Some(4), 176)],
        Bh => [(None, 93), (Some(2), 86), (Some(2), 145), (Some(8), 865)],
        Cc => [(None, 6), (None, 5), (None, 1), (None, 38)],
        Ap => [
            (Some(1), 231),
            (Some(1), 237),
            (Some(1), 204),
            (Some(1), 9188),
        ],
    }
}

fn fmt_limit(l: Option<u32>) -> String {
    match l {
        Some(n) => n.to_string(),
        None => "inf".into(),
    }
}

/// Table IV: optimal transactional-concurrency setting (warps per core)
/// and abort rate (aborts per 1000 commits) for every benchmark and
/// system. The harness *finds* the optimum by sweeping 1/2/4/8/16/NL and
/// reports both the discovered optimum and the paper's.
fn table4(h: &Harness) {
    let base = GpuConfig::fermi_15core();
    banner(
        "Table IV",
        "optimal concurrency (swept) and aborts per 1K commits",
    );

    println!(
        "{:<8} | {:>22} | {:>22}",
        "bench", "best concurrency", "aborts / 1K commits"
    );
    print!("{:<8} |", "");
    for s in TABLE4_SYSTEMS {
        print!(" {:>9}", s.label().replace("WarpTM", "WTM"));
    }
    print!(" |");
    for s in TABLE4_SYSTEMS {
        print!(" {:>9}", s.label().replace("WarpTM", "WTM"));
    }
    println!();

    let mut best_limits: Vec<(Benchmark, Vec<Option<u32>>)> = Vec::new();
    for b in Benchmark::ALL {
        let mut best: Vec<(Option<u32>, u64, f64)> = Vec::new();
        for system in TABLE4_SYSTEMS {
            let mut found: Option<(Option<u32>, u64, f64)> = None;
            for (_, limit) in LIMITS {
                let cfg = base.clone().with_concurrency(limit);
                let m = h.run(b, system, &cfg);
                if found.is_none() || m.cycles < found.as_ref().expect("set").1 {
                    found = Some((limit, m.cycles, m.aborts_per_1k_commits()));
                }
            }
            best.push(found.expect("swept at least one limit"));
        }
        print!("{:<8} |", b.name());
        for (limit, _, _) in &best {
            print!(" {:>9}", fmt_limit(*limit));
        }
        print!(" |");
        for (_, _, rate) in &best {
            print!(" {:>9.0}", rate);
        }
        println!();
        print!("{:<8} |", " paper");
        let paper = table4_paper_row(b);
        for (limit, _) in paper {
            print!(" {:>9}", fmt_limit(limit));
        }
        print!(" |");
        for (_, rate) in paper {
            print!(" {:>9}", rate);
        }
        println!();
        best_limits.push((b, best.into_iter().map(|(l, _, _)| l).collect()));
    }
    println!(
        "\nPaper shape: GETM tolerates higher concurrency than WarpTM on \
         contended benchmarks and sustains higher abort rates profitably."
    );

    // Companion breakdown: where the aborts above came from, per 1K
    // commits, at each system's best concurrency. Causes are counted
    // where they are detected (see `Metrics::aborts_by_cause`); `approx`
    // overlaps war/lock-conflict rather than adding to the total.
    println!("\n-- abort causes per 1K commits (at best concurrency) --");
    print!("{:<8} {:<10}", "bench", "system");
    for cause in sim_core::AbortCause::ALL {
        print!(" {:>13}", cause.label());
    }
    println!();
    for (b, limits) in &best_limits {
        for (system, limit) in TABLE4_SYSTEMS.iter().zip(limits) {
            let cfg = base.clone().with_concurrency(*limit);
            let m = h.run(*b, *system, &cfg);
            let per_1k = |n: u64| n as f64 * 1000.0 / m.commits.max(1) as f64;
            print!(
                "{:<8} {:<10}",
                b.name(),
                system.label().replace("WarpTM", "WTM")
            );
            for cause in sim_core::AbortCause::ALL {
                print!(" {:>13.0}", per_1k(m.aborts_by_cause(cause)));
            }
            println!();
        }
    }
}

// --------------------------------------------------------------- Table V

/// Table V: silicon area and power of the TM hardware structures for
/// WarpTM, EAPG, and GETM, from the analytical SRAM model (the paper used
/// CACTI 6.5 at 32 nm; our model is a linear fit to its scaling laws —
/// absolute values are fit constants, the structure inventory and the
/// ratios are the reproduction target). Purely analytical: no cells.
fn table5(_h: &Harness) {
    use gputm::silicon::{eapg_inventory, getm_inventory, table5 as table5_rows, warptm_inventory};
    banner(
        "Table V",
        "TM hardware area and power (analytical SRAM model)",
    );

    for inv in [warptm_inventory(), eapg_inventory(), getm_inventory()] {
        println!("\n{}:", inv.name);
        println!(
            "  {:<32} {:>10} {:>12} {:>12}",
            "structure", "bytes", "area mm^2", "power mW"
        );
        for s in &inv.structures {
            println!(
                "  {:<32} {:>10} {:>12.3} {:>12.2}",
                s.name,
                s.total_bytes(),
                s.area_mm2(),
                s.power_mw()
            );
        }
        println!(
            "  {:<32} {:>10} {:>12.3} {:>12.2}",
            "TOTAL",
            "",
            inv.area_mm2(),
            inv.power_mw()
        );
    }

    let rows = table5_rows();
    let (wa, wp) = (rows[0].1, rows[0].2);
    let (ea, ep) = (rows[1].1, rows[1].2);
    let (ga, gp) = (rows[2].1, rows[2].2);
    println!("\nRatios vs GETM (paper: WarpTM 3.6x area / 2.2x power; EAPG 4.9x / 3.6x):");
    println!(
        "  WarpTM / GETM : {:.1}x area, {:.1}x power",
        wa / ga,
        wp / gp
    );
    println!(
        "  EAPG   / GETM : {:.1}x area, {:.1}x power",
        ea / ga,
        ep / gp
    );
}

// -------------------------------------------------------------- Ablation

const ABLATION_BENCHES: [Benchmark; 4] = [
    Benchmark::HtH,
    Benchmark::HtL,
    Benchmark::Atm,
    Benchmark::Ap,
];

/// The three GETM variants the ablation compares, on one benchmark's
/// optimal-concurrency config.
fn ablation_cfgs(bench: Benchmark) -> [GpuConfig; 3] {
    let limit = optimal_concurrency(TmSystem::Getm, bench);
    let full = GpuConfig::fermi_15core().with_concurrency(limit);
    let mut maxreg = full.clone();
    maxreg.getm.approx_mode = ApproxMode::MaxRegisters;
    let mut nostall = full.clone();
    nostall.getm.disable_stall_buffer = true;
    [full, maxreg, nostall]
}

fn ablation_spec(scale: Scale) -> ExperimentSpec {
    let mut spec = ExperimentSpec::default();
    for b in ABLATION_BENCHES {
        for cfg in ablation_cfgs(b) {
            spec.push(CellSpec::new(b, scale, TmSystem::Getm, cfg));
        }
    }
    spec
}

// ----------------------------------------------------------------- Volta

const VOLTA_SYSTEMS: [TmSystem; 2] = [TmSystem::WarpTmLL, TmSystem::Getm];

fn volta_spec(scale: Scale) -> ExperimentSpec {
    let mut spec = optimal_spec(scale, &VOLTA_SYSTEMS, &GpuConfig::fermi_15core());
    spec.extend(optimal_spec(
        scale,
        &VOLTA_SYSTEMS,
        &GpuConfig::volta_80core(),
    ));
    spec
}

/// Volta-scale re-run of the headline claims: GETM versus WarpTM on the
/// paper's Fermi-class Table II machine and on the Volta-class memory
/// tier (sectored streaming L1, xor-hashed banked LLC, HBM
/// pseudo-channel timing — DESIGN.md §16), each at optimal concurrency.
///
/// The question this answers: does eager conflict detection's advantage
/// survive a modern memory system, where miss latency is shorter, DRAM
/// bandwidth far higher, and the L1 no longer retains store data?
fn volta(h: &Harness) {
    let fermi = GpuConfig::fermi_15core();
    let volta = GpuConfig::volta_80core();
    banner(
        "Volta",
        "headline claims on the Fermi-class vs Volta-class machine",
    );

    // Per machine: total execution time normalized to that machine's
    // WarpTM (the paper's fig. 11 framing, re-asked per generation).
    for (tag, cfg) in [("fermi-15core", &fermi), ("volta-80core", &volta)] {
        println!("\n-- {tag}: total execution time normalized to WarpTM --");
        let wtm: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| h.run_optimal(b, TmSystem::WarpTmLL, cfg).cycles as f64)
            .collect();
        print_header("system", true);
        for system in VOLTA_SYSTEMS {
            let series: Vec<f64> = Benchmark::ALL
                .iter()
                .enumerate()
                .map(|(i, &b)| h.run_optimal(b, system, cfg).cycles as f64 / wtm[i].max(1.0))
                .collect();
            print_row(system.label(), &series, true);
        }
    }

    // GETM speedup from the machine generation itself (same workload,
    // fermi cycles / volta cycles).
    println!("\n-- GETM cycles: fermi / volta (machine-generation speedup) --");
    print_header("", true);
    let series: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let f = h.run_optimal(b, TmSystem::Getm, &fermi).cycles as f64;
            let v = h.run_optimal(b, TmSystem::Getm, &volta).cycles as f64;
            f / v.max(1.0)
        })
        .collect();
    print_row("GETM", &series, true);

    // Memory-tier health on the volta machine: the counters the fermi
    // model cannot produce (sector misses, HBM queue stalls, hash-
    // interleave balance).
    println!("\n-- volta memory tier (GETM at optimal concurrency) --");
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "bench", "l1-hit", "llc-hit", "l1-smiss", "llc-smiss", "dram-acc", "hbm-stall", "imbal"
    );
    for b in Benchmark::ALL {
        let m = h.run_optimal(b, TmSystem::Getm, &volta);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>10} {:>10} {:>10} {:>10} {:>8}",
            b.name(),
            m.l1_hit_rate,
            m.llc_hit_rate,
            m.l1_sector_misses,
            m.llc_sector_misses,
            m.dram_accesses,
            m.dram_queue_stalls,
            fmt_opt(m.partition_imbalance),
        );
    }
    println!(
        "\nExpected shape: both systems speed up on the Volta machine (more \
         cores, faster DRAM), and GETM keeps its relative edge — eager \
         detection's savings are in protocol round-trips, not DRAM cycles, \
         so a faster memory system does not erase them. The xor-hashed \
         interleave keeps partition imbalance near 1."
    );
}

/// Ablation study of GETM's two key validation-unit design choices, both
/// called out in the paper (Sec. V-B):
///
/// * **Recency Bloom filter vs. max registers** — the paper first tried a
///   single pair of registers holding the maximum evicted `wts`/`rts` and
///   found "version numbers increased very quickly and caused many
///   aborts"; the Bloom filter discriminates between evicted addresses.
/// * **Stall buffer vs. abort-on-lock** — queueing logically-younger
///   requests behind a write reservation avoids aborts that pure eager
///   conflict detection would pay.
fn ablation(h: &Harness) {
    banner(
        "Ablation",
        "GETM design choices (cycles and aborts/1K commits)",
    );

    println!(
        "{:<10} {:>22} {:>22} {:>22}",
        "bench", "GETM (full)", "max-registers", "no stall buffer"
    );
    for b in ABLATION_BENCHES {
        let [full, maxreg, nostall] = ablation_cfgs(b).map(|cfg| h.run(b, TmSystem::Getm, &cfg));
        println!(
            "{:<10} {:>12} ({:>6.0}) {:>13} ({:>6.0}) {:>13} ({:>6.0})",
            b.name(),
            full.cycles,
            full.aborts_per_1k_commits(),
            maxreg.cycles,
            maxreg.aborts_per_1k_commits(),
            nostall.cycles,
            nostall.aborts_per_1k_commits(),
        );
    }
    println!(
        "\nExpected: the max-register approximation inflates abort rates \
         (most visibly on large-footprint benchmarks where evictions are \
         constant), and removing the stall buffer converts queueing into \
         extra aborts under write contention."
    );
}
