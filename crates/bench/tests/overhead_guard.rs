//! The zero-cost-when-off guard: with tracing disabled, the instrumented
//! hot paths must cost the simulator less than 2% of a run.
//!
//! Directly timing two builds against each other isn't possible inside
//! one binary (the disabled gate is compiled in everywhere), so the guard
//! bounds the overhead from its parts: it measures (a) how long one
//! untraced run takes, (b) how many events that run would emit, and
//! (c) the wall-clock cost of that many disabled `emit` calls. The
//! disabled instrumentation cost of the run is (c) — every gate the
//! engine passes is one disabled `emit` — and the test asserts
//! (c) < 2% of (a), with real margin to spare (a disabled emit is a
//! branch on `None`; (c) is typically well under 0.1% of (a)).

use gputm::config::{GpuConfig, TmSystem};
use gputm::sweep::{run_sweep_report, CellSpec, ExperimentSpec, SweepOptions};
use gputm::telemetry::{CampaignEvent, MemorySink, Telemetry};
use sim_core::{AbortCause, Recorder, SimEvent, Stamp};
use std::hint::black_box;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Timing tests must not contend with each other for cores: a concurrent
/// sibling skews a 2% budget comparison far more than the overhead under
/// test. Every guard takes this lock for its whole body.
static TIMING: Mutex<()> = Mutex::new(());

fn timing_lock() -> MutexGuard<'static, ()> {
    TIMING.lock().unwrap_or_else(|e| e.into_inner())
}

fn cell() -> CellSpec {
    CellSpec::new(
        workloads::suite::Benchmark::Atm,
        workloads::suite::Scale::Fast,
        TmSystem::Getm,
        GpuConfig::tiny_test(),
    )
}

/// Minimum over `reps` timings of `f` — the least-noise estimator for
/// "how fast can this go", which is what a budget comparison wants.
fn min_time(reps: usize, mut f: impl FnMut()) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("reps > 0")
}

#[test]
fn disabled_tracing_costs_less_than_two_percent_of_a_run() {
    let _serial = timing_lock();
    let cell = cell();

    // (a) One untraced run (recorder off — the production configuration).
    let run_time = min_time(3, || {
        black_box(cell.run().expect("run"));
    });

    // (b) How many emit gates that run passes. A recording run fires every
    // gate exactly once per event, so the captured count is the gate count
    // (use a ring big enough that nothing is dropped-but-still-counted;
    // dropped events still passed their gate, so add them back).
    let rec = Recorder::recording(1 << 20);
    cell.run_traced(rec.clone()).expect("traced run");
    let bus = rec.bus().expect("bus");
    let events = bus.borrow().len() as u64 + bus.borrow().dropped();
    assert!(events > 0, "instrumented engine must emit events");

    // (c) That many disabled emits, measured on the same machine. The
    // closure mirrors a real site: it captures locals and builds an event,
    // but must never run.
    let off = Recorder::off();
    let emit_time = min_time(3, || {
        for i in 0..events {
            off.emit(|| {
                (
                    Stamp::warp(black_box(i), 2, 11),
                    SimEvent::TxAbort {
                        cause: AbortCause::War,
                        lanes: 32,
                    },
                )
            });
        }
    });

    let budget = run_time.mul_f64(0.02);
    assert!(
        emit_time < budget,
        "disabled tracing overhead {emit_time:?} exceeds 2% of a run \
         ({run_time:?} for {events} events; budget {budget:?})"
    );
}

/// The same bound for campaign telemetry: with no sink attached (the
/// production default), every emission site in the sweep executor is a
/// branch on a `None` and the event-constructing closure never runs.
/// Same parts-based method as the tracing guard: (a) one sweep with
/// telemetry off, (b) the event count a telemetry-on sweep of the same
/// spec produces (every emit site fires at most once per event), (c) that
/// many disabled `emit` calls with a realistic capturing closure.
#[test]
fn disabled_telemetry_costs_less_than_two_percent_of_a_sweep() {
    let _serial = timing_lock();
    let cell = cell();
    let spec = ExperimentSpec::from_cells(vec![cell.clone()]);

    // (a) One sweep with telemetry off.
    let run_time = min_time(3, || {
        let report = run_sweep_report(&spec, &SweepOptions::new().threads(1));
        assert!(report.is_complete());
        black_box(&report.outcomes);
    });

    // (b) The emit-gate count of that sweep.
    let (sink, captured) = MemorySink::new();
    let opts = SweepOptions::new()
        .threads(1)
        .telemetry(Telemetry::to_sinks(vec![Box::new(sink)]));
    assert!(run_sweep_report(&spec, &opts).is_complete());
    let events = captured.lock().unwrap().len() as u64;
    assert!(events > 0, "a telemetry-on sweep must emit events");

    // (c) That many disabled emits. The closure mirrors a real site — it
    // captures locals and allocates a label — but must never run.
    let off = Telemetry::off();
    let emit_time = min_time(3, || {
        for i in 0..events {
            off.emit(|| CampaignEvent::CellQueued {
                idx: black_box(i as usize),
                label: format!("cell {i}"),
            });
        }
    });

    let budget = run_time.mul_f64(0.02);
    assert!(
        emit_time < budget,
        "disabled telemetry overhead {emit_time:?} exceeds 2% of a sweep \
         ({run_time:?} for {events} events; budget {budget:?})"
    );
}

/// And for the host-shard profiler: disabled (the default), the sharded
/// loop pays one boolean branch per would-be timestamp and zero `Instant`
/// reads. The loop hits at most ~4 such gates per simulated cycle (two
/// parallel-phase windows, each with a per-shard work stamp and a window
/// stamp), so the guard times `cycles * 4` disabled gates — the exact
/// `flag.then(Instant::now)` shape the engine uses — against 2% of an
/// unprofiled run.
#[test]
fn disabled_profiler_costs_less_than_two_percent_of_a_run() {
    let _serial = timing_lock();
    let cell = cell();

    let mut cycles = 0;
    let run_time = min_time(3, || {
        cycles = black_box(cell.run().expect("run")).cycles;
    });
    let gates = cycles.saturating_mul(4);

    let gate_time = min_time(3, || {
        for i in 0..gates {
            let on = black_box(false);
            black_box(on.then(Instant::now));
            black_box(i);
        }
    });

    let budget = run_time.mul_f64(0.02);
    assert!(
        gate_time < budget,
        "disabled profiler overhead {gate_time:?} exceeds 2% of a run \
         ({run_time:?} for {gates} gates; budget {budget:?})"
    );
}

/// The same budget for the sweep executor's robustness machinery: with
/// everything off (no progress reporter, fail-fast policy so the retry
/// loop is a single pass, no per-cell timeout, no cache/journal), routing
/// a cell through the fault-isolated executor — `catch_unwind`, policy
/// dispatch, worker scope, result channel — must cost less than 2% over
/// calling the cell directly. The guard measures both paths min-of-3 on
/// the same cell; the fixed per-sweep cost (one thread spawn, one
/// channel) is sub-millisecond against a multi-hundred-millisecond run.
#[test]
fn disabled_sweep_robustness_costs_less_than_two_percent_of_a_run() {
    let _serial = timing_lock();
    let cell = cell();
    let spec = ExperimentSpec::from_cells(vec![cell.clone()]);
    let opts = SweepOptions::new().threads(1);

    // The executor's one structural extra over a direct call is a worker
    // thread plus a channel handoff. On a loaded machine (tier-1 runs the
    // whole workspace's test binaries in parallel processes, which an
    // in-process lock cannot serialize) a thread wakeup queues behind
    // other work for milliseconds — environmental scheduling latency, not
    // executor machinery. Probe that floor with bare spawn+join cycles
    // and grant its worst case (times a few wakeups per sweep) on top of
    // the 2% budget; on an idle host — the CI step runs this binary alone
    // — the grant is microseconds and the bound stays tight. Measuring in
    // rounds keeps one unlucky window from failing the suite: a real
    // regression inflates every round, noise does not survive three.
    let mut direct_min = Duration::MAX;
    let mut swept_min = Duration::MAX;
    let mut handoff_max = Duration::ZERO;
    for round in 0..3 {
        for _ in 0..5 {
            let t = Instant::now();
            std::thread::spawn(|| {}).join().expect("probe thread");
            handoff_max = handoff_max.max(t.elapsed());
        }
        direct_min = direct_min.min(min_time(3, || {
            black_box(cell.run().expect("run"));
        }));
        swept_min = swept_min.min(min_time(3, || {
            let report = run_sweep_report(&spec, &opts);
            assert!(report.is_complete());
            black_box(&report.outcomes);
        }));
        if swept_min < direct_min.mul_f64(1.02) + handoff_max * 4 {
            return;
        }
        eprintln!(
            "round {round}: swept {swept_min:?} vs direct {direct_min:?} \
             (handoff floor {handoff_max:?}) — outside budget, re-measuring"
        );
    }
    let budget = direct_min.mul_f64(1.02) + handoff_max * 4;
    // A 2% wall-clock ratio is only trustworthy with parallel headroom: on
    // a single-CPU host every thread handoff in the executor competes with
    // the measuring thread itself for the one core, and a stray timeslice
    // outweighs the machinery under test. Report instead of failing there;
    // the dedicated CI step runs this guard isolated on multi-core runners
    // and enforces the bound for real.
    let single_cpu = std::thread::available_parallelism().map_or(true, |n| n.get() <= 1);
    if single_cpu {
        eprintln!(
            "SKIPPED assert: single-CPU host cannot time a 2% budget \
             (swept {swept_min:?}, direct {direct_min:?}, budget {budget:?})"
        );
        return;
    }
    panic!(
        "fault-isolated executor took {swept_min:?} against a direct run's \
         {direct_min:?} (budget {budget:?}, scheduling floor {handoff_max:?}) \
         — the disabled robustness path must stay within 2%"
    );
}
