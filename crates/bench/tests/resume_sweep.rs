//! Crash-safe resume, end to end: SIGKILL the `sweep` binary mid-campaign,
//! rerun it with `--resume`, and require stdout byte-identical to an
//! uninterrupted run's.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BENCHES: [&str; 3] = ["HT-H", "ATM", "CC"];

fn sweep_cmd(cache: &Path, extra: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sweep"));
    c.args(["--tiny", "--serial", "--quiet", "--cache-dir"])
        .arg(cache)
        .args(BENCHES)
        .args(extra);
    c
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("getm-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn metrics_entries(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "metrics"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn killed_sweep_resumes_byte_identically() {
    // Reference: the uninterrupted campaign in its own cache directory.
    let ref_dir = tmp_dir("ref");
    let reference = sweep_cmd(&ref_dir, &[]).output().expect("run sweep");
    assert!(
        reference.status.success(),
        "reference sweep failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Victim: same campaign, fresh directory, SIGKILLed as soon as the
    // first cell lands on disk (mid-campaign by construction: three
    // serial cells, one completed).
    let crash_dir = tmp_dir("crash");
    let mut child = sweep_cmd(&crash_dir, &[])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if metrics_entries(&crash_dir) >= 1 {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() || Instant::now() > deadline {
            break; // finished (or wedged) before we could kill: still valid below
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().ok();
    let killed = !child.wait().expect("wait").success();
    if killed {
        // The kill left an unfinished campaign: its journal must survive
        // with fewer cells than the sweep has.
        let journals = std::fs::read_dir(&crash_dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0);
        assert_eq!(journals, 1, "a killed campaign must leave its journal");
        assert!(metrics_entries(&crash_dir) < BENCHES.len());
    }

    // Resume: recomputes only what the kill destroyed; stdout must be
    // byte-identical to the uninterrupted reference.
    let resumed = sweep_cmd(&crash_dir, &["--resume"])
        .output()
        .expect("resume sweep");
    assert!(
        resumed.status.success(),
        "resumed sweep failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed campaign must reproduce the uninterrupted output exactly"
    );
    // The completed campaign cleans up after itself.
    let journals = std::fs::read_dir(&crash_dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(journals, 0, "a completed campaign must remove its journal");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}
