//! Crash-safe resume, end to end: SIGKILL the `sweep` binary mid-campaign,
//! rerun it with `--resume`, and require stdout byte-identical to an
//! uninterrupted run's.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BENCHES: [&str; 3] = ["HT-H", "ATM", "CC"];

fn sweep_cmd(cache: &Path, extra: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_sweep"));
    c.args(["--tiny", "--serial", "--quiet", "--cache-dir"])
        .arg(cache)
        .args(BENCHES)
        .args(extra);
    c
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("getm-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn metrics_entries(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "metrics"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn killed_sweep_resumes_byte_identically() {
    // Reference: the uninterrupted campaign in its own cache directory.
    let ref_dir = tmp_dir("ref");
    let reference = sweep_cmd(&ref_dir, &[]).output().expect("run sweep");
    assert!(
        reference.status.success(),
        "reference sweep failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Victim: same campaign, fresh directory, SIGKILLed as soon as the
    // first cell lands on disk (mid-campaign by construction: three
    // serial cells, one completed).
    let crash_dir = tmp_dir("crash");
    let mut child = sweep_cmd(&crash_dir, &[])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if metrics_entries(&crash_dir) >= 1 {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() || Instant::now() > deadline {
            break; // finished (or wedged) before we could kill: still valid below
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().ok();
    let killed = !child.wait().expect("wait").success();
    if killed {
        // The kill left an unfinished campaign: its journal must survive
        // with fewer cells than the sweep has.
        let journals = std::fs::read_dir(&crash_dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0);
        assert_eq!(journals, 1, "a killed campaign must leave its journal");
        assert!(metrics_entries(&crash_dir) < BENCHES.len());
    }

    // Resume: recomputes only what the kill destroyed; stdout must be
    // byte-identical to the uninterrupted reference.
    let resumed = sweep_cmd(&crash_dir, &["--resume"])
        .output()
        .expect("resume sweep");
    assert!(
        resumed.status.success(),
        "resumed sweep failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed campaign must reproduce the uninterrupted output exactly"
    );
    // The completed campaign cleans up after itself.
    let journals = std::fs::read_dir(&crash_dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(journals, 0, "a completed campaign must remove its journal");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// The `ev` field of a telemetry JSONL line.
fn ev_of(line: &str) -> Option<&str> {
    line.split("\"ev\":\"").nth(1)?.split('"').next()
}

/// The `idx` field of a telemetry JSONL line.
fn idx_of(line: &str) -> Option<usize> {
    line.split("\"idx\":")
        .nth(1)?
        .split([',', '}'])
        .next()?
        .parse()
        .ok()
}

/// Telemetry across a crash: the victim's JSONL is a valid prefix (only
/// the final line may be torn by the SIGKILL), and the `--resume` rerun
/// emits a coherent stream — exactly one terminal event per cell, with
/// the cells the crash completed recalled as cache hits.
#[test]
fn killed_campaign_telemetry_resumes_coherently() {
    let crash_dir = tmp_dir("tel-crash");
    std::fs::create_dir_all(&crash_dir).expect("mkdir");
    let crash_tel = crash_dir.join("crash.telemetry.jsonl");
    let resume_tel = crash_dir.join("resume.telemetry.jsonl");

    let mut child = sweep_cmd(&crash_dir, &["--telemetry", crash_tel.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if metrics_entries(&crash_dir) >= 1 {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().ok();
    let killed = !child.wait().expect("wait").success();
    let recalled = metrics_entries(&crash_dir);

    // The JSONL sink flushes per event, so the kill can tear at most the
    // final line: every line before it must be a complete JSON object.
    let crashed_text = std::fs::read_to_string(&crash_tel).expect("crash telemetry exists");
    let complete_lines = crashed_text.lines().count().saturating_sub(1);
    for line in crashed_text.lines().take(complete_lines) {
        assert!(
            line.starts_with("{\"t_ms\":") && line.ends_with('}'),
            "non-final line torn: {line}"
        );
        assert!(ev_of(line).is_some(), "line without ev: {line}");
    }

    // Resume with a fresh telemetry stream.
    let resumed = sweep_cmd(
        &crash_dir,
        &["--resume", "--telemetry", resume_tel.to_str().unwrap()],
    )
    .output()
    .expect("resume sweep");
    assert!(
        resumed.status.success(),
        "resumed sweep failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    let text = std::fs::read_to_string(&resume_tel).expect("resume telemetry exists");
    let lines: Vec<&str> = text.lines().collect();
    for line in &lines {
        assert!(
            line.starts_with("{\"t_ms\":") && line.ends_with('}'),
            "resumed stream must be fully valid: {line}"
        );
    }
    assert_eq!(ev_of(lines[0]), Some("campaign_started"));
    assert_eq!(ev_of(lines[lines.len() - 1]), Some("campaign_finished"));

    // Exactly one terminal event per cell, no failures.
    let mut terminals = vec![0usize; BENCHES.len()];
    let mut hits = 0usize;
    for line in &lines {
        match ev_of(line) {
            Some("cell_cache_hit") => {
                hits += 1;
                terminals[idx_of(line).expect("idx")] += 1;
            }
            Some("cell_finished") => terminals[idx_of(line).expect("idx")] += 1,
            Some("cell_failed") => panic!("no cell may fail in this campaign: {line}"),
            _ => {}
        }
    }
    assert_eq!(
        terminals,
        vec![1; BENCHES.len()],
        "one terminal event per cell"
    );
    // Every cell the crash got onto disk comes back as a cache hit.
    if killed {
        assert!(
            hits >= recalled.min(BENCHES.len()),
            "expected >= {recalled} cache-hit events, saw {hits}"
        );
    }

    std::fs::remove_dir_all(&crash_dir).ok();
}
