//! Chaos tests for the distributed campaign: SIGKILL workers mid-cell,
//! SIGKILL the coordinator mid-campaign, and require the final report
//! byte-identical to a single-process `sweep` of the same grid.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BENCHES: [&str; 3] = ["HT-H", "ATM", "CC"];

/// Grid/common flags shared by the reference sweep, the coordinator, and
/// the workers — all three must describe the identical grid.
fn grid_args(cache: &Path) -> Vec<String> {
    let mut v: Vec<String> = ["--tiny", "--serial", "--quiet", "--cache-dir"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    v.push(cache.display().to_string());
    v.extend(BENCHES.iter().map(|s| s.to_string()));
    v
}

fn sweep_reference(cache: &Path) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(grid_args(cache))
        .output()
        .expect("run reference sweep");
    assert!(
        out.status.success(),
        "reference sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn campaign_cmd(sub: &str, cache: &Path, socket: &Path, extra: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_campaign"));
    c.arg(sub)
        .args(grid_args(cache))
        .args(["--socket"])
        .arg(socket)
        .args(extra);
    c
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("getm-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn metrics_entries(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "metrics"))
                .count()
        })
        .unwrap_or(0)
}

/// Polls until the cache holds at least `n` results, the watched process
/// exits, or the deadline passes.
fn await_metrics(dir: &Path, n: usize, watched: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if metrics_entries(dir) >= n
            || watched.try_wait().expect("try_wait").is_some()
            || Instant::now() > deadline
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The `ev` field of a telemetry JSONL line.
fn ev_of(line: &str) -> Option<&str> {
    line.split("\"ev\":\"").nth(1)?.split('"').next()
}

/// The `idx` field of a telemetry JSONL line.
fn idx_of(line: &str) -> Option<usize> {
    line.split("\"idx\":")
        .nth(1)?
        .split([',', '}'])
        .next()?
        .parse()
        .ok()
}

/// A coordinator plus two test-owned workers, one SIGKILLed as soon as
/// the first result lands: the survivor absorbs the reassigned cells and
/// the final stdout is byte-identical to a single-process sweep. The
/// telemetry stream must still carry exactly one terminal event per
/// cell, reassignments and all.
#[test]
fn killed_worker_campaign_matches_sweep_byte_identically() {
    let ref_dir = tmp_dir("worker-ref");
    let reference = sweep_reference(&ref_dir);

    let dir = tmp_dir("worker-kill");
    let socket = dir.join("campaign.sock");
    let tel = dir.join("telemetry.jsonl");
    let mut coordinator = campaign_cmd(
        "coordinate",
        &dir,
        &socket,
        &[
            "--heartbeat-ms",
            "300",
            "--telemetry",
            tel.to_str().unwrap(),
        ],
    )
    .stdout(Stdio::piped())
    .stderr(Stdio::null())
    .spawn()
    .expect("spawn coordinator");

    // The test owns the worker processes so it can SIGKILL one precisely.
    let mut victim = campaign_cmd("work", &dir, &socket, &[])
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim worker");
    let mut survivor = campaign_cmd("work", &dir, &socket, &[])
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn survivor worker");

    // Kill the victim once the campaign is demonstrably mid-flight. If
    // the fleet finishes first the kill is a no-op and the test still
    // validates the equivalence.
    await_metrics(&dir, 1, &mut coordinator);
    victim.kill().ok();
    victim.wait().expect("reap victim");

    let out = coordinator.wait_with_output().expect("coordinator output");
    assert!(out.status.success(), "campaign with a killed worker failed");
    assert_eq!(
        String::from_utf8_lossy(&reference),
        String::from_utf8_lossy(&out.stdout),
        "campaign stdout must be byte-identical to the serial sweep"
    );
    survivor.wait().expect("reap survivor");

    // Telemetry coherence: exactly one terminal event per cell, however
    // many workers touched it; the stream opens and closes properly.
    let text = std::fs::read_to_string(&tel).expect("telemetry exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(ev_of(lines[0]), Some("campaign_started"));
    assert_eq!(ev_of(lines[lines.len() - 1]), Some("campaign_finished"));
    let mut terminals = vec![0usize; BENCHES.len()];
    for line in &lines {
        if let Some(ev) = ev_of(line) {
            if matches!(ev, "cell_finished" | "cell_cache_hit" | "cell_failed") {
                terminals[idx_of(line).expect("idx")] += 1;
            }
            assert_ne!(ev, "cell_failed", "no cell may fail: {line}");
        }
    }
    assert_eq!(terminals, vec![1; BENCHES.len()], "one terminal per cell");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL the *coordinator* mid-campaign, then restart it with
/// `--resume`: the journal (behind its stale, dead-pid lock) recalls the
/// completed cells and the rerun's stdout is byte-identical to the
/// uninterrupted single-process sweep.
#[test]
fn killed_coordinator_resumes_byte_identically() {
    let ref_dir = tmp_dir("coord-ref");
    let reference = sweep_reference(&ref_dir);

    let dir = tmp_dir("coord-kill");
    let socket = dir.join("campaign.sock");
    let mut coordinator = campaign_cmd("coordinate", &dir, &socket, &["--spawn", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");

    await_metrics(&dir, 1, &mut coordinator);
    coordinator.kill().ok();
    let killed = !coordinator.wait().expect("reap coordinator").success();
    if killed {
        // The kill leaves the journal (and its pid-stamped lock) behind;
        // the resume below must take both over from the dead owner.
        let journals = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0);
        assert_eq!(journals, 1, "a killed coordinator must leave its journal");
    }

    let resumed = campaign_cmd("coordinate", &dir, &socket, &["--spawn", "2", "--resume"])
        .output()
        .expect("resumed coordinator");
    assert!(
        resumed.status.success(),
        "resumed campaign failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&reference),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed campaign must reproduce the uninterrupted output exactly"
    );

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
