//! # tl2
//!
//! A host-threaded software transactional memory executor implementing the
//! TL2 algorithm (Dice, Shalev, Shavit: *Transactional Locking II*): a
//! global version clock, per-stripe versioned write-locks, eager per-read
//! validation against the transaction's read-version snapshot, a redo-log
//! write set with read-own-writes forwarding, commit-time read-set
//! revalidation under sorted try-locks, and bounded-backoff retry.
//!
//! Unlike every simulated system in this repository, TL2 runs the
//! transactional programs on **real OS threads** with genuinely
//! nondeterministic interleavings. It executes the same backend-neutral
//! [`TxProgram`](workloads::TxProgram) definitions the cycle-level GPU
//! simulator derives its SIMT streams from, and can record every attempt's
//! read/write sets with observed versions into the
//! [`sim_core::history::History`] format, so the offline
//! serializability/opacity oracle (`gputm::verify`) certifies real
//! concurrent executions end-to-end.
//!
//! TL2's eager read validation makes it *opaque* — aborted attempts still
//! observe consistent snapshots — so recorded histories are expected to
//! pass the oracle with opacity required, something none of the simulated
//! GPU TM systems promises.

#![warn(missing_docs)]

mod exec;
mod mem;

pub use exec::run;
use sim_core::history::History;
use std::time::Duration;

/// A deliberate protocol fault, compiled in only with the `sabotage`
/// feature (mirroring `gputm`'s sabotage discipline). Used to prove the
/// verification oracle catches real violations on real threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tl2Sabotage {
    /// No fault: the correct TL2 commit protocol.
    #[default]
    None,
    /// Skip the commit-time read-set revalidation entirely. Two
    /// transactions that read the same cell and both reach commit then
    /// both apply — the classic lost update.
    SkipReadValidation,
}

/// Execution options for one TL2 run.
#[derive(Debug, Clone)]
pub struct Tl2Options {
    /// Worker OS threads executing the program's logical threads (each
    /// worker claims logical threads from a shared queue and runs one to
    /// completion at a time).
    pub threads: usize,
    /// Seed for the per-thread backoff jitter (interleavings stay
    /// nondeterministic regardless).
    pub seed: u64,
    /// Record every attempt into a [`History`] for offline certification.
    pub record_history: bool,
    /// Per-transaction abort bound before the run is declared livelocked.
    pub max_retries: u64,
    /// Number of versioned-lock stripes (rounded up to a power of two);
    /// `0` sizes automatically from the footprint.
    pub stripes: usize,
    /// Deliberate protocol fault selector. Without the `sabotage` feature
    /// this field is inert: the correct protocol always runs.
    pub sabotage: Tl2Sabotage,
}

impl Default for Tl2Options {
    fn default() -> Self {
        Tl2Options {
            threads: 4,
            seed: 0x712,
            record_history: false,
            max_retries: 1_000_000,
            stripes: 0,
            sabotage: Tl2Sabotage::None,
        }
    }
}

impl Tl2Options {
    /// Sets the worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the backoff jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables history recording.
    #[must_use]
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Selects a deliberate protocol fault (inert without the `sabotage`
    /// feature).
    #[must_use]
    pub fn sabotage(mut self, s: Tl2Sabotage) -> Self {
        self.sabotage = s;
        self
    }
}

/// Counters aggregated over one TL2 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tl2Counters {
    /// Committed transactions.
    pub commits: u64,
    /// Of which read-only (no write locks, no validation needed).
    pub read_only_commits: u64,
    /// Aborted attempts, total.
    pub aborts: u64,
    /// Aborts raised by per-read validation (stale or locked stripe).
    pub read_aborts: u64,
    /// Aborts raised by commit-time write-lock acquisition.
    pub lock_aborts: u64,
    /// Aborts raised by commit-time read-set revalidation.
    pub validation_aborts: u64,
    /// Transactional reads served from shared memory (forwarded
    /// read-own-writes excluded).
    pub reads: u64,
    /// Transactional writes buffered.
    pub writes: u64,
    /// Non-transactional atomics applied.
    pub atomics: u64,
    /// CAS attempts that failed their expectation.
    pub cas_failures: u64,
    /// Global event ticks consumed (a wall-clock-free event count usable
    /// as a cycle proxy in histories).
    pub ticks: u64,
    /// Final value of the global version clock.
    pub clock: u64,
    /// Deepest retry chain any single transaction needed.
    pub max_retry_depth: u64,
}

/// What one TL2 run produced.
#[derive(Debug)]
pub struct Tl2Run {
    /// Aggregate counters.
    pub counters: Tl2Counters,
    /// The recorded history, when [`Tl2Options::record_history`] was set.
    pub history: Option<History>,
    /// Final memory as `(word address, value)` pairs (zero words omitted).
    pub final_mem: Vec<(u64, u64)>,
    /// Host wall time of the parallel section.
    pub wall: Duration,
}

impl Tl2Run {
    /// The final memory as a [`gpu_mem::MemImage`] (the checker's format).
    pub fn final_image(&self) -> gpu_mem::MemImage {
        gpu_mem::MemImage::from_pairs(self.final_mem.iter().copied())
    }
}

/// Why a TL2 run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tl2Error {
    /// The options were rejected.
    InvalidOptions {
        /// Which option.
        what: &'static str,
        /// Why.
        detail: String,
    },
    /// A program accessed an address outside the declared footprint.
    OutOfFootprint {
        /// Logical thread.
        tid: usize,
        /// The stray byte address.
        addr: u64,
    },
    /// A program misused the transactional interface (nested begin, plain
    /// op inside a transaction, `Done` mid-transaction, ...).
    Program {
        /// Logical thread.
        tid: usize,
        /// What it did.
        what: String,
    },
    /// One transaction exceeded [`Tl2Options::max_retries`] aborts.
    Livelock {
        /// Logical thread.
        tid: usize,
        /// Attempts consumed.
        attempts: u64,
    },
    /// The merged history failed structural validation — an executor bug,
    /// never a workload condition.
    History(String),
}

impl std::fmt::Display for Tl2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tl2Error::InvalidOptions { what, detail } => {
                write!(f, "invalid TL2 option {what}: {detail}")
            }
            Tl2Error::OutOfFootprint { tid, addr } => {
                write!(f, "thread {tid} accessed {addr:#x} outside the footprint")
            }
            Tl2Error::Program { tid, what } => write!(f, "thread {tid}: {what}"),
            Tl2Error::Livelock { tid, attempts } => {
                write!(f, "thread {tid} livelocked after {attempts} attempts")
            }
            Tl2Error::History(detail) => write!(f, "inconsistent recorded history: {detail}"),
        }
    }
}

impl std::error::Error for Tl2Error {}
