//! The TL2 executor: shared versioned storage, the per-thread transaction
//! state machine, the commit protocol, and history assembly.
//!
//! ## Algorithm
//!
//! One global version clock orders all state changes. Every footprint word
//! maps to a *stripe* carrying a versioned lock word: bit 63 is the LOCKED
//! flag, the low bits hold the clock value at the last release. A
//! transaction snapshots the clock into `rv` at begin; every transactional
//! read is a seqlock over the stripe lock and must observe an unlocked
//! stripe with version `<= rv`, so even doomed attempts only ever see
//! consistent snapshots (opacity). Writes buffer into a redo log with
//! read-own-writes forwarding. Commit acquires the write-set stripes with
//! bounded try-locks in sorted order, draws a write version `wv` from the
//! clock, revalidates the read set against `rv`, applies, and releases the
//! stripes at `wv`. Any failure releases, rolls the program back, backs
//! off, and retries with a fresh snapshot.
//!
//! ## Commit order and the oracle
//!
//! When recording, the commit-decision sequence (`seq`) is drawn from the
//! *same* clock that issues write versions. This is load-bearing for
//! verification: the oracle breaks conflict-graph ties by `seq`, and
//! versions of independent addresses must not appear seq-ordered against
//! their clock order or an aborted reader's perfectly consistent snapshot
//! (all reads `<= rv`) could straddle a tie-break inversion and be flagged
//! as torn. One counter makes the tie-break agree with TL2's own notion of
//! logical time. The cost is that read-only commits bump the clock in
//! recording runs (they need a unique seq); plain benchmarking runs keep
//! the classic TL2 behavior of leaving the clock untouched.

use crate::mem::AddrMap;
use crate::{Tl2Counters, Tl2Error, Tl2Options, Tl2Run, Tl2Sabotage};
use gpu_simt::{Op, OpResult, ThreadProgram};
use sim_core::history::{
    History, ReadRec, TxnKind, TxnOutcome, TxnRecord, VersionRec, WriteRec, INITIAL_VERSION,
};
use sim_core::DetRng;
use std::collections::HashMap;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize};
use std::sync::Mutex;
use std::time::Instant;
use workloads::TxProgram;

/// Lock-word flag: the stripe is write-locked by a committing transaction.
const LOCKED: u64 = 1 << 63;
/// Seqlock re-read attempts before a transactional read gives up and
/// aborts the attempt (a locked stripe usually clears within a few spins).
const READ_SPIN: usize = 256;
/// Try-lock attempts per stripe at commit before declaring the write set
/// contended.
const LOCK_SPIN: usize = 256;

/// One installed version, accumulated in global apply order under the
/// version-log mutex. `(tid, serial)` identifies the writing attempt;
/// attempts get their dense global ids only after the run, once every
/// worker's records can be ordered.
struct LogEntry {
    addr: u64,
    value: u64,
    tid: usize,
    serial: u32,
    prev: u32,
    cycle: u64,
}

/// One attempt as recorded by the worker that ran it.
struct LocalTxn {
    tid: usize,
    serial: u32,
    kind: TxnKind,
    begin: u64,
    outcome: TxnOutcome,
    reads: Vec<ReadRec>,
    writes: Vec<WriteRec>,
}

/// In-flight state of one transactional attempt.
struct TxState {
    /// Clock snapshot at (re)begin.
    rv: u64,
    /// Begin tick, for history ordering.
    begin: u64,
    /// Observed reads, recorded for the oracle (empty when not recording).
    reads: Vec<ReadRec>,
    /// Stripes the read set touches, for commit revalidation.
    rstripes: Vec<usize>,
    /// Redo log: `(word index, byte address, value)` in program order.
    wset: Vec<(usize, u64, u64)>,
}

/// Why a commit attempt failed.
enum CommitFail {
    /// Could not acquire a write-set stripe.
    WriteLocked,
    /// A read-set stripe was locked by another committer.
    ReadLocked,
    /// A read-set stripe advanced past `rv`.
    ReadStale,
}

/// The storage and clocks every worker shares.
struct Shared<'a> {
    opts: &'a Tl2Options,
    map: AddrMap,
    /// Current value of every footprint word.
    values: Vec<AtomicU64>,
    /// History version id of every footprint word (recording only).
    hist: Vec<AtomicU32>,
    /// Versioned stripe locks.
    locks: Vec<AtomicU64>,
    stripe_mask: usize,
    /// The global version clock; also the commit-seq source (see module
    /// docs).
    clock: AtomicU64,
    /// Global event counter standing in for cycles in recorded histories.
    ticks: AtomicU64,
    /// Work queue: next logical thread to claim.
    next_tid: AtomicUsize,
    /// Versions in global apply order (recording only).
    vlog: Mutex<Vec<LogEntry>>,
    record: bool,
}

impl Shared<'_> {
    fn stripe(&self, word: usize) -> usize {
        word & self.stripe_mask
    }

    fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Relaxed)
    }

    /// Dense index of `addr`, or the footprint error.
    fn word(&self, addr: u64, tid: usize) -> Result<usize, Tl2Error> {
        self.map
            .index_of(addr)
            .ok_or(Tl2Error::OutOfFootprint { tid, addr })
    }

    /// Seqlock read of one word for a transaction with snapshot `rv`:
    /// `Some((value, history version))` iff the stripe was observed
    /// unlocked, unchanged across the data load, and at version `<= rv`.
    fn read_word(&self, word: usize, rv: u64) -> Option<(u64, u32)> {
        let lock = &self.locks[self.stripe(word)];
        for _ in 0..READ_SPIN {
            let l1 = lock.load(Acquire);
            if l1 & LOCKED != 0 {
                std::hint::spin_loop();
                continue;
            }
            let value = self.values[word].load(Relaxed);
            let version = if self.record {
                self.hist[word].load(Relaxed)
            } else {
                INITIAL_VERSION
            };
            fence(Acquire);
            if lock.load(Relaxed) != l1 {
                continue;
            }
            if l1 > rv {
                return None;
            }
            return Some((value, version));
        }
        None
    }

    /// Seqlock read with no snapshot constraint, for non-transactional
    /// loads: always returns the current committed value.
    fn plain_read(&self, word: usize) -> u64 {
        let lock = &self.locks[self.stripe(word)];
        loop {
            let l1 = lock.load(Acquire);
            if l1 & LOCKED != 0 {
                std::hint::spin_loop();
                continue;
            }
            let value = self.values[word].load(Relaxed);
            fence(Acquire);
            if lock.load(Relaxed) == l1 {
                return value;
            }
        }
    }

    /// Spins until stripe `s` is acquired; returns the pre-lock word.
    /// Only singletons use this unbounded form — they hold exactly one
    /// stripe and committers' critical sections are short and lock-ordered,
    /// so no cycle of waits can form.
    fn lock_stripe(&self, s: usize) -> u64 {
        loop {
            let l = self.locks[s].load(Relaxed);
            if l & LOCKED == 0
                && self.locks[s]
                    .compare_exchange_weak(l, l | LOCKED, Acquire, Relaxed)
                    .is_ok()
            {
                return l;
            }
            std::hint::spin_loop();
        }
    }

    /// Releases `held` stripes: at `wv` after a successful commit, or back
    /// to their saved pre-lock versions on abort.
    fn release(&self, held: &[(usize, u64)], wv: Option<u64>) {
        for &(s, old) in held {
            self.locks[s].store(wv.unwrap_or(old), Release);
        }
    }

    /// Applies `wset` to shared storage and, when recording, appends the
    /// versions to the global log under its mutex, drawing the commit seq
    /// inside the critical section so per-address log order, version order,
    /// and seq order all agree. Caller must hold every write-set stripe.
    fn apply(
        &self,
        wset: &[(usize, u64, u64)],
        tid: usize,
        serial: u32,
        cycle: u64,
    ) -> Vec<WriteRec> {
        if !self.record {
            for &(w, _, value) in wset {
                self.values[w].store(value, Relaxed);
            }
            return Vec::new();
        }
        let mut log = self.vlog.lock().unwrap();
        let mut wrecs = Vec::with_capacity(wset.len());
        for &(w, addr, value) in wset {
            let id = log.len() as u32;
            let prev = self.hist[w].load(Relaxed);
            log.push(LogEntry {
                addr,
                value,
                tid,
                serial,
                prev,
                cycle,
            });
            self.hist[w].store(id, Relaxed);
            self.values[w].store(value, Relaxed);
            wrecs.push(WriteRec {
                addr,
                value,
                version: id,
            });
        }
        wrecs
    }

    /// The full TL2 commit protocol for the current attempt. On success
    /// returns `(end tick, commit seq, applied write records)`; on failure
    /// every acquired stripe has been released at its old version and the
    /// caller aborts the attempt.
    fn try_commit(
        &self,
        t: &mut TxState,
        tid: usize,
        serial: u32,
    ) -> Result<(u64, u64, Vec<WriteRec>), CommitFail> {
        if t.wset.is_empty() {
            // Read-only fast path: every read already validated against
            // `rv`, so the attempt is serializable at its snapshot. The
            // clock bump only happens when a seq is needed for recording.
            let end = self.tick();
            let seq = if self.record {
                self.clock.fetch_add(1, AcqRel) + 1
            } else {
                0
            };
            return Ok((end, seq, Vec::new()));
        }

        let mut stripes: Vec<usize> = t.wset.iter().map(|&(w, _, _)| self.stripe(w)).collect();
        stripes.sort_unstable();
        stripes.dedup();
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(stripes.len());
        'next_stripe: for &s in &stripes {
            for _ in 0..LOCK_SPIN {
                let l = self.locks[s].load(Relaxed);
                if l & LOCKED == 0
                    && self.locks[s]
                        .compare_exchange(l, l | LOCKED, Acquire, Relaxed)
                        .is_ok()
                {
                    held.push((s, l));
                    continue 'next_stripe;
                }
                std::hint::spin_loop();
            }
            self.release(&held, None);
            return Err(CommitFail::WriteLocked);
        }

        let wv = self.clock.fetch_add(1, AcqRel) + 1;

        // Read-set revalidation: every stripe the read set touched must
        // still be at a version `<= rv` (or be one of our own held write
        // locks, whose saved pre-lock version is checked instead). The
        // `rv + 1 == wv` shortcut skips this when provably nothing
        // committed since our snapshot.
        let skip_validation = self.sabotaged_skip() || t.rv + 1 == wv;
        if !skip_validation {
            t.rstripes.sort_unstable();
            t.rstripes.dedup();
            for &s in &t.rstripes {
                let l = self.locks[s].load(Acquire);
                let version = if l & LOCKED != 0 {
                    // `held` was filled in sorted stripe order.
                    match held.binary_search_by_key(&s, |&(hs, _)| hs) {
                        Ok(i) => held[i].1,
                        Err(_) => {
                            self.release(&held, None);
                            return Err(CommitFail::ReadLocked);
                        }
                    }
                } else {
                    l
                };
                if version > t.rv {
                    self.release(&held, None);
                    return Err(CommitFail::ReadStale);
                }
            }
        }

        let end = self.tick();
        let wrecs = self.apply(&t.wset, tid, serial, end);
        self.release(&held, Some(wv));
        Ok((end, wv, wrecs))
    }

    /// Whether the `SkipReadValidation` fault is both selected and
    /// compiled in.
    fn sabotaged_skip(&self) -> bool {
        #[cfg(feature = "sabotage")]
        {
            self.opts.sabotage == Tl2Sabotage::SkipReadValidation
        }
        #[cfg(not(feature = "sabotage"))]
        {
            false
        }
    }

    /// A non-transactional store: lock the stripe, bump the clock, apply,
    /// release at the new version. Recorded as a committed singleton.
    fn singleton_store(
        &self,
        word: usize,
        addr: u64,
        value: u64,
        tid: usize,
        serial: u32,
        out: &mut Vec<LocalTxn>,
    ) {
        let s = self.stripe(word);
        self.lock_stripe(s);
        let wv = self.clock.fetch_add(1, AcqRel) + 1;
        let begin = self.tick();
        let wrecs = self.apply(&[(word, addr, value)], tid, serial, begin);
        self.locks[s].store(wv, Release);
        if self.record {
            out.push(LocalTxn {
                tid,
                serial,
                kind: TxnKind::PlainStore,
                begin,
                outcome: TxnOutcome::Committed {
                    seq: wv,
                    cycle: begin,
                },
                reads: Vec::new(),
                writes: wrecs,
            });
        }
    }

    /// A non-transactional read-modify-write: lock the stripe, read,
    /// apply `f`'s result if any, release. Returns the old value.
    /// Recorded as a committed singleton with one read (and the write,
    /// when `f` produced one — a failed CAS writes nothing).
    fn singleton_rmw(
        &self,
        word: usize,
        addr: u64,
        f: impl FnOnce(u64) -> Option<u64>,
        tid: usize,
        serial: u32,
        out: &mut Vec<LocalTxn>,
    ) -> u64 {
        let s = self.stripe(word);
        let old_lock = self.lock_stripe(s);
        let old = self.values[word].load(Relaxed);
        let prev_version = if self.record {
            self.hist[word].load(Relaxed)
        } else {
            INITIAL_VERSION
        };
        let begin = self.tick();
        let (wrecs, lock_release) = match f(old) {
            Some(new) => {
                let wv = self.clock.fetch_add(1, AcqRel) + 1;
                (self.apply(&[(word, addr, new)], tid, serial, begin), wv)
            }
            // No write: restore the pre-lock word so the stripe version
            // is untouched, but still draw a seq for the recorded read.
            None => (Vec::new(), old_lock),
        };
        let seq = if wrecs.is_empty() && self.record {
            self.clock.fetch_add(1, AcqRel) + 1
        } else {
            lock_release
        };
        self.locks[s].store(lock_release, Release);
        if self.record {
            out.push(LocalTxn {
                tid,
                serial,
                kind: TxnKind::Atomic,
                begin,
                outcome: TxnOutcome::Committed { seq, cycle: begin },
                reads: vec![ReadRec {
                    addr,
                    value: old,
                    version: prev_version,
                }],
                writes: wrecs,
            });
        }
        old
    }
}

/// Exponential backoff with deterministic per-thread jitter. The RNG only
/// shapes pause lengths; scheduling stays genuinely nondeterministic.
fn backoff(rng: &mut DetRng, retries: u64) {
    let spins = rng.below(1 << retries.min(12)) + 1;
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if retries > 6 {
        std::thread::yield_now();
    }
}

/// Runs logical thread `tid`'s program to completion, retrying aborted
/// transactions per TL2, appending attempt records to `out`.
fn run_thread(
    sh: &Shared<'_>,
    prog: &mut dyn ThreadProgram,
    tid: usize,
    rng: &mut DetRng,
    out: &mut Vec<LocalTxn>,
    c: &mut Tl2Counters,
) -> Result<(), Tl2Error> {
    let mut serial: u32 = 0;
    let mut tx: Option<TxState> = None;
    let mut retries: u64 = 0;
    let mut prev = OpResult::None;

    macro_rules! next_serial {
        () => {{
            let s = serial;
            serial += 1;
            s
        }};
    }

    // Aborts the in-flight attempt: record it, rewind the program, back
    // off, and open a fresh attempt (the runtime re-issues TxBegin
    // implicitly, per the ThreadProgram contract).
    macro_rules! abort_retry {
        ($t:expr) => {{
            let t: &mut TxState = $t;
            c.aborts += 1;
            let end = sh.tick();
            if sh.record {
                out.push(LocalTxn {
                    tid,
                    serial: next_serial!(),
                    kind: TxnKind::Tx,
                    begin: t.begin,
                    outcome: TxnOutcome::Aborted { cycle: end },
                    reads: std::mem::take(&mut t.reads),
                    writes: Vec::new(),
                });
            }
            prog.rollback();
            retries += 1;
            c.max_retry_depth = c.max_retry_depth.max(retries);
            if retries > sh.opts.max_retries {
                return Err(Tl2Error::Livelock {
                    tid,
                    attempts: retries,
                });
            }
            backoff(rng, retries);
            *t = TxState {
                rv: sh.clock.load(Acquire),
                begin: sh.tick(),
                reads: Vec::new(),
                rstripes: Vec::new(),
                wset: Vec::new(),
            };
            prev = OpResult::None;
        }};
    }

    loop {
        let op = prog.next(std::mem::replace(&mut prev, OpResult::None));
        match op {
            Op::Done => {
                if tx.is_some() {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "Done inside an open transaction".into(),
                    });
                }
                return Ok(());
            }
            Op::TxBegin => {
                if tx.is_some() {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "nested TxBegin".into(),
                    });
                }
                retries = 0;
                tx = Some(TxState {
                    rv: sh.clock.load(Acquire),
                    begin: sh.tick(),
                    reads: Vec::new(),
                    rstripes: Vec::new(),
                    wset: Vec::new(),
                });
            }
            Op::TxLoad(a) => {
                let Some(t) = tx.as_mut() else {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "TxLoad outside a transaction".into(),
                    });
                };
                // Read-own-writes: the latest buffered store wins and the
                // read never touches shared memory (and is not recorded,
                // matching the simulator's forwarding semantics).
                if let Some(&(_, _, v)) = t.wset.iter().rev().find(|&&(_, addr, _)| addr == a.0) {
                    prev = OpResult::Value(v);
                    continue;
                }
                let w = sh.word(a.0, tid)?;
                match sh.read_word(w, t.rv) {
                    Some((value, version)) => {
                        c.reads += 1;
                        if sh.record {
                            t.reads.push(ReadRec {
                                addr: a.0,
                                value,
                                version,
                            });
                        }
                        t.rstripes.push(sh.stripe(w));
                        prev = OpResult::Value(value);
                    }
                    None => {
                        c.read_aborts += 1;
                        abort_retry!(t);
                    }
                }
            }
            Op::TxStore(a, v) => {
                let Some(t) = tx.as_mut() else {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "TxStore outside a transaction".into(),
                    });
                };
                let w = sh.word(a.0, tid)?;
                c.writes += 1;
                t.wset.push((w, a.0, v));
            }
            Op::TxCommit => {
                let Some(t) = tx.as_mut() else {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "TxCommit outside a transaction".into(),
                    });
                };
                match sh.try_commit(t, tid, serial) {
                    Ok((end, seq, wrecs)) => {
                        c.commits += 1;
                        if t.wset.is_empty() {
                            c.read_only_commits += 1;
                        }
                        if sh.record {
                            out.push(LocalTxn {
                                tid,
                                serial: next_serial!(),
                                kind: TxnKind::Tx,
                                begin: t.begin,
                                outcome: TxnOutcome::Committed { seq, cycle: end },
                                reads: std::mem::take(&mut t.reads),
                                writes: wrecs,
                            });
                        }
                        tx = None;
                        retries = 0;
                    }
                    Err(cause) => {
                        match cause {
                            CommitFail::WriteLocked => c.lock_aborts += 1,
                            CommitFail::ReadLocked | CommitFail::ReadStale => {
                                c.validation_aborts += 1
                            }
                        }
                        abort_retry!(t);
                    }
                }
            }
            Op::Load(a) => {
                if tx.is_some() {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "plain Load inside a transaction".into(),
                    });
                }
                let w = sh.word(a.0, tid)?;
                prev = OpResult::Value(sh.plain_read(w));
            }
            Op::Store(a, v) => {
                if tx.is_some() {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "plain Store inside a transaction".into(),
                    });
                }
                let w = sh.word(a.0, tid)?;
                sh.singleton_store(w, a.0, v, tid, next_serial!(), out);
            }
            Op::AtomicAdd { addr, delta } => {
                if tx.is_some() {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "AtomicAdd inside a transaction".into(),
                    });
                }
                let w = sh.word(addr.0, tid)?;
                c.atomics += 1;
                let old = sh.singleton_rmw(
                    w,
                    addr.0,
                    |v| Some(v.wrapping_add(delta)),
                    tid,
                    next_serial!(),
                    out,
                );
                prev = OpResult::Value(old);
            }
            Op::AtomicCas { addr, expect, new } => {
                if tx.is_some() {
                    return Err(Tl2Error::Program {
                        tid,
                        what: "AtomicCas inside a transaction".into(),
                    });
                }
                let w = sh.word(addr.0, tid)?;
                c.atomics += 1;
                let old = sh.singleton_rmw(
                    w,
                    addr.0,
                    |v| (v == expect).then_some(new),
                    tid,
                    next_serial!(),
                    out,
                );
                if old != expect {
                    c.cas_failures += 1;
                }
                prev = OpResult::Value(old);
            }
            Op::Compute(n) => {
                for _ in 0..n {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// A worker: claims logical threads from the shared queue and runs each to
/// completion.
fn worker(
    sh: &Shared<'_>,
    prog: &TxProgram,
    wk: usize,
) -> Result<(Vec<LocalTxn>, Tl2Counters), Tl2Error> {
    let mut rng = DetRng::seeded(sh.opts.seed).fork(wk as u64);
    let mut out = Vec::new();
    let mut c = Tl2Counters::default();
    loop {
        let tid = sh.next_tid.fetch_add(1, Relaxed);
        if tid >= prog.thread_count() {
            return Ok((out, c));
        }
        let mut p = prog.thread(tid);
        run_thread(sh, p.as_mut(), tid, &mut rng, &mut out, &mut c)?;
    }
}

/// Merges every worker's attempt records and the global version log into a
/// sealed [`History`]. Attempts are ordered by begin tick (ties broken by
/// thread and serial) and assigned dense global ids; version writers are
/// remapped from `(tid, serial)` to those ids.
fn assemble_history(all: Vec<LocalTxn>, log: Vec<LogEntry>) -> Result<History, Tl2Error> {
    let mut all = all;
    all.sort_by_key(|t| (t.begin, t.tid, t.serial));
    let mut gid: HashMap<(usize, u32), u32> = HashMap::with_capacity(all.len());
    for (i, t) in all.iter().enumerate() {
        gid.insert((t.tid, t.serial), i as u32);
    }
    let txns: Vec<TxnRecord> = all
        .into_iter()
        .map(|t| TxnRecord {
            kind: t.kind,
            core: 0,
            gwid: t.tid as u32,
            lane: 0,
            begin_cycle: t.begin,
            outcome: t.outcome,
            reads: t.reads,
            writes: t.writes,
        })
        .collect();
    let versions: Vec<VersionRec> = log
        .into_iter()
        .map(|e| {
            let writer = *gid.get(&(e.tid, e.serial)).ok_or_else(|| {
                Tl2Error::History(format!(
                    "version log entry for {:#x} has no attempt record (tid {}, serial {})",
                    e.addr, e.tid, e.serial
                ))
            })?;
            Ok(VersionRec {
                addr: e.addr,
                value: e.value,
                writer,
                prev: e.prev,
                cycle: e.cycle,
            })
        })
        .collect::<Result<_, Tl2Error>>()?;
    History::from_parts(txns, versions).map_err(Tl2Error::History)
}

/// Runs `prog` under TL2 with `opts`.
///
/// # Errors
///
/// [`Tl2Error`] on invalid options, footprint escapes, program misuse of
/// the transactional interface, livelock, or (a bug) inconsistent history.
pub fn run(prog: &TxProgram, opts: &Tl2Options) -> Result<Tl2Run, Tl2Error> {
    if opts.threads == 0 {
        return Err(Tl2Error::InvalidOptions {
            what: "threads",
            detail: "need at least one worker thread".into(),
        });
    }
    if opts.sabotage != Tl2Sabotage::None && !cfg!(feature = "sabotage") {
        return Err(Tl2Error::InvalidOptions {
            what: "sabotage",
            detail: "requested a protocol fault but the sabotage feature is not compiled in".into(),
        });
    }

    let map = AddrMap::new(prog.footprint());
    let total = map.total_words();
    let nstripes = if opts.stripes > 0 {
        opts.stripes.next_power_of_two()
    } else {
        total.clamp(1, 1 << 16).next_power_of_two()
    };

    let mut values: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
    for (addr, v) in prog.initial_memory() {
        // TxProgram::new guarantees initial memory lies inside the footprint.
        let w = map.index_of(addr.0).expect("initial memory in footprint");
        *values[w].get_mut() = v;
    }
    let hist_len = if opts.record_history { total } else { 0 };
    let sh = Shared {
        opts,
        map,
        values,
        hist: (0..hist_len)
            .map(|_| AtomicU32::new(INITIAL_VERSION))
            .collect(),
        locks: (0..nstripes).map(|_| AtomicU64::new(0)).collect(),
        stripe_mask: nstripes - 1,
        clock: AtomicU64::new(0),
        ticks: AtomicU64::new(0),
        next_tid: AtomicUsize::new(0),
        vlog: Mutex::new(Vec::new()),
        record: opts.record_history,
    };

    let workers = opts.threads.min(prog.thread_count()).max(1);
    let started = Instant::now();
    let results: Vec<Result<(Vec<LocalTxn>, Tl2Counters), Tl2Error>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wk| {
                    let sh = &sh;
                    scope.spawn(move || worker(sh, prog, wk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
    let wall = started.elapsed();

    let mut counters = Tl2Counters::default();
    let mut all: Vec<LocalTxn> = Vec::new();
    for r in results {
        let (txns, c) = r?;
        all.extend(txns);
        counters.commits += c.commits;
        counters.read_only_commits += c.read_only_commits;
        counters.aborts += c.aborts;
        counters.read_aborts += c.read_aborts;
        counters.lock_aborts += c.lock_aborts;
        counters.validation_aborts += c.validation_aborts;
        counters.reads += c.reads;
        counters.writes += c.writes;
        counters.atomics += c.atomics;
        counters.cas_failures += c.cas_failures;
        counters.max_retry_depth = counters.max_retry_depth.max(c.max_retry_depth);
    }
    counters.ticks = sh.ticks.load(Relaxed);
    counters.clock = sh.clock.load(Relaxed);

    let history = if opts.record_history {
        Some(assemble_history(all, sh.vlog.into_inner().unwrap())?)
    } else {
        None
    };

    let final_mem: Vec<(u64, u64)> = sh
        .map
        .addrs()
        .zip(sh.values.iter())
        .filter_map(|(addr, v)| {
            let v = v.load(Relaxed);
            (v != 0).then_some((addr, v))
        })
        .collect();

    Ok(Tl2Run {
        counters,
        history,
        final_mem,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::atm::Atm;
    use workloads::fuzz::{Fuzz, FuzzShape};
    use workloads::hashtable::HashTable;

    fn opts(threads: usize) -> Tl2Options {
        Tl2Options::default().threads(threads).record_history(true)
    }

    #[test]
    fn hashtable_runs_correctly_on_threads() {
        let p = HashTable::ht_h(64, 11).tx_program();
        let run = run(&p, &opts(4)).expect("tl2 run succeeds");
        let img = run.final_image();
        p.check(&|a| img.get(a.0))
            .expect("hashtable invariants hold");
        assert!(run.counters.commits >= 64, "one commit per insert at least");
        let h = run.history.expect("history recorded");
        assert!(h.stats().committed >= 64);
    }

    #[test]
    fn atm_conserves_balance_on_threads() {
        let p = Atm::new(64, 32, 4, 7).tx_program();
        let run = run(&p, &opts(8)).expect("tl2 run succeeds");
        let img = run.final_image();
        p.check(&|a| img.get(a.0)).expect("balance conserved");
    }

    #[test]
    fn fuzz_shapes_complete_and_pass_their_checkers() {
        for (i, shape) in [
            FuzzShape::SingleCell,
            FuzzShape::LockSteal,
            FuzzShape::MixedAliasing,
            FuzzShape::Scatter,
            FuzzShape::Livelock,
        ]
        .into_iter()
        .enumerate()
        {
            let p = Fuzz::new(shape, 8, 3, 100 + i as u64).tx_program();
            let run = run(&p, &opts(4)).expect("tl2 run succeeds");
            let img = run.final_image();
            p.check(&|a| img.get(a.0))
                .unwrap_or_else(|e| panic!("{shape:?}: {e}"));
        }
    }

    #[test]
    fn rejects_zero_threads() {
        let p = Atm::new(8, 4, 1, 1).tx_program();
        let err = run(&p, &Tl2Options::default().threads(0)).unwrap_err();
        assert!(matches!(
            err,
            Tl2Error::InvalidOptions {
                what: "threads",
                ..
            }
        ));
    }

    #[test]
    fn single_thread_run_reports_no_aborts() {
        let p = HashTable::ht_h(32, 5).tx_program();
        let run = run(&p, &opts(1)).expect("tl2 run succeeds");
        assert_eq!(run.counters.aborts, 0, "no concurrency, no conflicts");
        assert_eq!(run.counters.commits as usize, 32);
    }

    #[cfg(not(feature = "sabotage"))]
    #[test]
    fn sabotage_request_without_feature_is_rejected() {
        let p = Atm::new(8, 4, 1, 1).tx_program();
        let err = run(
            &p,
            &Tl2Options::default().sabotage(Tl2Sabotage::SkipReadValidation),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Tl2Error::InvalidOptions {
                what: "sabotage",
                ..
            }
        ));
    }
}
