//! Dense word addressing over a [`TxProgram`]'s declared footprint.
//!
//! TL2 keeps one value word, one history-version word, and (per stripe) one
//! versioned lock word per footprint word. The footprint spans are sparse
//! in the flat 64-bit address space, so this module maps byte addresses to
//! dense word indices and back.

use workloads::MemSpan;

/// Maps footprint byte addresses to dense word indices.
#[derive(Debug)]
pub(crate) struct AddrMap {
    /// `(base byte address, words, cumulative word offset)` per span,
    /// sorted by base.
    spans: Vec<(u64, u64, u64)>,
    total_words: u64,
}

impl AddrMap {
    /// Builds the map from a sorted, non-overlapping span list (the
    /// invariant `TxProgram::new` establishes).
    pub(crate) fn new(footprint: &[MemSpan]) -> Self {
        let mut spans = Vec::with_capacity(footprint.len());
        let mut cum = 0u64;
        for s in footprint {
            spans.push((s.base, s.words, cum));
            cum += s.words;
        }
        AddrMap {
            spans,
            total_words: cum,
        }
    }

    /// Total footprint size in words.
    pub(crate) fn total_words(&self) -> usize {
        self.total_words as usize
    }

    /// Dense word index of byte address `addr`, or `None` if the address
    /// is misaligned or outside every declared span.
    pub(crate) fn index_of(&self, addr: u64) -> Option<usize> {
        if !addr.is_multiple_of(8) {
            return None;
        }
        let i = self.spans.partition_point(|&(base, _, _)| base <= addr);
        let &(base, words, cum) = self.spans.get(i.checked_sub(1)?)?;
        let off = (addr - base) / 8;
        (off < words).then_some((cum + off) as usize)
    }

    /// All word byte-addresses in dense index order.
    pub(crate) fn addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.spans
            .iter()
            .flat_map(|&(base, words, _)| (0..words).map(move |w| base + w * 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_addresses_densely_and_rejects_strays() {
        let m = AddrMap::new(&[MemSpan::new(0x100, 2), MemSpan::new(0x1000, 3)]);
        assert_eq!(m.total_words(), 5);
        assert_eq!(m.index_of(0x100), Some(0));
        assert_eq!(m.index_of(0x108), Some(1));
        assert_eq!(m.index_of(0x110), None);
        assert_eq!(m.index_of(0x1000), Some(2));
        assert_eq!(m.index_of(0x1010), Some(4));
        assert_eq!(m.index_of(0x1018), None);
        assert_eq!(m.index_of(0x104), None, "misaligned");
        assert_eq!(m.index_of(0x0), None);
        let addrs: Vec<u64> = m.addrs().collect();
        assert_eq!(addrs, vec![0x100, 0x108, 0x1000, 0x1008, 0x1010]);
    }
}
