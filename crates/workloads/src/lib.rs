//! # workloads
//!
//! The nine TM benchmarks of the GETM evaluation (paper Table III), each
//! re-implemented as per-thread program state machines with both a
//! transactional and a fine-grained-lock variant, plus a correctness
//! checker over the final memory image:
//!
//! | name  | description                                  | module        |
//! |-------|----------------------------------------------|---------------|
//! | HT-H  | populate a small (high-contention) hashtable | [`hashtable`] |
//! | HT-M  | populate a medium hashtable                  | [`hashtable`] |
//! | HT-L  | populate a large (low-contention) hashtable  | [`hashtable`] |
//! | ATM   | parallel funds transfers                     | [`atm`]       |
//! | CL    | cloth physics edge relaxation                | [`cloth`]     |
//! | CLto  | transaction-optimized cloth                  | [`cloth`]     |
//! | BH    | Barnes-Hut octree build                      | [`barneshut`] |
//! | CC    | CudaCuts push-relabel image segmentation     | [`cudacuts`]  |
//! | AP    | Apriori itemset support counting             | [`apriori`]   |
//!
//! The workloads are *operational*: hash inserts chase the chain pointers
//! they load, the octree build descends the tree it is constructing, and
//! every checker verifies a real invariant (conservation, insert-once,
//! structural integrity) over the final committed memory.

#![warn(missing_docs)]

pub mod apriori;
pub mod atm;
pub mod barneshut;
pub mod cloth;
pub mod cudacuts;
pub mod fuzz;
pub mod hashtable;
pub mod suite;
pub mod testutil;
pub mod txprog;

pub use txprog::{MemSpan, TxProgram};

use gpu_mem::Addr;
use gpu_simt::BoxedProgram;

/// How threads synchronize their shared-memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Critical sections expressed as transactions.
    Tm,
    /// Critical sections protected by fine-grained spin locks.
    FgLock,
}

/// A benchmark: initial memory, one program per thread, and a final-state
/// checker.
pub trait Workload {
    /// Short name matching the paper ("HT-H", "ATM", ...).
    fn name(&self) -> &str;

    /// Initial memory contents as `(word address, value)` pairs; unlisted
    /// words are zero.
    fn initial_memory(&self) -> Vec<(Addr, u64)>;

    /// Number of threads the kernel launches.
    fn thread_count(&self) -> usize;

    /// The program thread `tid` runs under `mode`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `tid >= thread_count()`.
    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram;

    /// Verifies the invariants of the final memory image.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String>;
}

/// A fixed-stride region of the flat address space, used by workloads to
/// lay out their arrays. Words are 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address of the region.
    pub base: u64,
    /// Stride between consecutive elements, in bytes.
    pub stride: u64,
}

impl Region {
    /// Creates a region.
    pub const fn new(base: u64, stride: u64) -> Self {
        Region { base, stride }
    }

    /// Address of element `i`.
    #[inline]
    pub fn at(&self, i: u64) -> Addr {
        Addr(self.base + i * self.stride)
    }

    /// Address of field `f` (word offset) of element `i`.
    #[inline]
    pub fn field(&self, i: u64, f: u64) -> Addr {
        Addr(self.base + i * self.stride + f * 8)
    }

    /// Inverse of [`Region::at`] for addresses inside the region.
    #[inline]
    pub fn index_of(&self, a: Addr) -> u64 {
        (a.0 - self.base) / self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_addressing() {
        let r = Region::new(0x1000, 32);
        assert_eq!(r.at(0), Addr(0x1000));
        assert_eq!(r.at(2), Addr(0x1040));
        assert_eq!(r.field(1, 3), Addr(0x1000 + 32 + 24));
        assert_eq!(r.index_of(Addr(0x1040)), 2);
    }
}
