//! Barnes-Hut octree build (BH).
//!
//! Each thread inserts one body into a shared octree. The tree is a digital
//! trie over each body's 3-bit position digits: an insert descends until it
//! finds an empty child slot (place the body) or a slot occupied by another
//! body (split: allocate an internal node from the thread's private pool,
//! push the resident body one level down, and keep descending — repeatedly
//! if the two bodies share further digits).
//!
//! The transactional variant wraps the whole insert in one transaction, so
//! early inserts near the root contend heavily — the paper's motivation for
//! this benchmark. The lock variant follows the classic GPU octree build:
//! descend optimistically without locks, lock only the node whose child
//! slot will change, re-validate, build any split spine *privately* before
//! linking it, and release.
//!
//! Memory layout:
//!
//! * `nodes[i]` — 128-byte node, words 0..8 are the child slots. Node 0 is
//!   the root; node `1 + tid*MAX_DEPTH + k` is thread `tid`'s k-th pool
//!   node.
//! * child-slot encoding: `0` = empty, odd = body tag
//!   (`body_id*2 + 1`), even non-zero = byte address of a child node.
//! * `locks[i]` — per-node spin lock for the FGLock variant.
//!
//! Checker: every body reachable exactly once, tree is acyclic, every
//! interior pointer lands in the node pool.

use crate::{Region, SyncMode, Workload};

use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};
use std::collections::HashSet;

const NODES: Region = Region::new(0x8000_0000, 128);
const LOCKS: Region = Region::new(0x9800_0000, 8);

/// Maximum descent depth (3 bits of position hash per level).
pub const MAX_DEPTH: u64 = 20;

/// The Barnes-Hut tree-build benchmark.
#[derive(Debug, Clone)]
pub struct BarnesHut {
    bodies: usize,
    /// Retained for API stability; the position hash is a fixed function
    /// of the body id (see `pos_hash`), so the seed only names the run.
    #[allow(dead_code)]
    seed: u64,
    compute: u32,
}

impl BarnesHut {
    /// A build over `bodies` bodies.
    ///
    /// # Panics
    ///
    /// Panics if `bodies` is zero.
    pub fn new(bodies: usize, seed: u64) -> Self {
        assert!(bodies > 0);
        BarnesHut {
            bodies,
            seed,
            compute: 10,
        }
    }

    /// The position hash of a body: its digit at level `l` is bits
    /// `3l..3l+3`. A fixed mixing constant (not the workload seed) keeps
    /// the hash recomputable from a body tag alone, which the split path
    /// needs when it relocates another thread's body.
    fn pos_hash(&self, body: u64) -> u64 {
        pos_hash(body)
    }

    fn digit(hash: u64, level: u64) -> u64 {
        (hash >> (3 * level)) & 7
    }

    /// First pool-node index for a thread.
    fn pool_base(tid: u64) -> u64 {
        1 + tid * MAX_DEPTH
    }
}

/// Tag for a body in a child slot.
fn body_tag(body: u64) -> u64 {
    body * 2 + 1
}

fn is_body(v: u64) -> bool {
    v & 1 == 1
}

fn body_of(v: u64) -> u64 {
    (v - 1) / 2
}

impl Workload for BarnesHut {
    fn name(&self) -> &str {
        "BH"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        Vec::new() // the tree starts empty
    }

    fn thread_count(&self) -> usize {
        self.bodies
    }

    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram {
        let hash = self.pos_hash(tid as u64);
        // Stagger warps' first access: real launches ramp blocks onto the
        // cores over thousands of cycles, so the empty top of the tree is
        // built by a modest number of early arrivals, not by every thread
        // in the grid simultaneously.
        let stagger = ((tid as u32 / 32) % 128) * 120;
        match mode {
            SyncMode::Tm => Box::new(TmInsert {
                body: tid as u64,
                hash,
                compute: self.compute + stagger,
                node: 0,
                level: 0,
                next_alloc: 0,
                phase: Phase::Start,
            }),
            SyncMode::FgLock => Box::new(LockInsert {
                body: tid as u64,
                hash,
                compute: self.compute + stagger,
                node: 0,
                level: 0,
                next_alloc: 0,
                state: LockState::Start,
                seen: 0,
                fails: 0,
                pending: Vec::new(),
            }),
        }
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        let mut found = HashSet::new();
        // Iterative DFS from the root.
        let mut stack = vec![(0u64, 0u64)]; // (node index, level)
        let mut visited_nodes = HashSet::new();
        while let Some((node, level)) = stack.pop() {
            if level > MAX_DEPTH + 1 {
                return Err("tree deeper than MAX_DEPTH".into());
            }
            if !visited_nodes.insert(node) {
                return Err(format!("node {node} reachable twice (cycle?)"));
            }
            for c in 0..8u64 {
                let v = mem(NODES.field(node, c));
                if v == 0 {
                    continue;
                }
                if is_body(v) {
                    let b = body_of(v);
                    if b >= self.bodies as u64 {
                        return Err(format!("unknown body {b}"));
                    }
                    if !found.insert(b) {
                        return Err(format!("body {b} present twice"));
                    }
                    // The body must sit on its digit path.
                    let d = Self::digit(self.pos_hash(b), level);
                    if d != c {
                        return Err(format!(
                            "body {b} filed under digit {c}, expected {d} at level {level}"
                        ));
                    }
                } else {
                    let idx = NODES.index_of(Addr(v));
                    stack.push((idx, level + 1));
                }
            }
        }
        if found.len() != self.bodies {
            return Err(format!("{} of {} bodies in tree", found.len(), self.bodies));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    Begun,
    /// Waiting for the load of `node.children[digit(level)]`.
    Loaded,
    /// Split step 2: store the resident body into the fresh node.
    SplitStoreResident {
        fresh: u64,
        resident: u64,
    },
    /// Finished placing the body; commit next.
    Commit,
    Done,
}

/// TM variant: the whole insert is one transaction.
#[derive(Debug)]
struct TmInsert {
    body: u64,
    hash: u64,
    compute: u32,
    node: u64,
    level: u64,
    /// Next pool slot (resets on rollback — speculative allocation).
    next_alloc: u64,
    phase: Phase,
}

impl ThreadProgram for TmInsert {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            match self.phase {
                Phase::Start => {
                    self.phase = Phase::Begun;
                    return Op::Compute(self.compute);
                }
                Phase::Begun => {
                    self.phase = Phase::Loaded;
                    self.node = 0;
                    self.level = 0;
                    self.next_alloc = 0;
                    return Op::TxBegin;
                }
                Phase::Loaded => {
                    // `prev` holds the slot value if we already issued the
                    // load; the first time through we must issue it.
                    // We distinguish by issuing the load and handling the
                    // value on the next call.
                    self.phase = Phase::SplitStoreResident {
                        fresh: u64::MAX,
                        resident: 0,
                    };
                    let d = BarnesHut::digit(self.hash, self.level);
                    return Op::TxLoad(NODES.field(self.node, d));
                }
                Phase::SplitStoreResident { fresh, resident: _ } if fresh == u64::MAX => {
                    // The load result is in `prev`.
                    let v = prev.value();
                    let d = BarnesHut::digit(self.hash, self.level);
                    if v == 0 {
                        // Empty slot: place our body.
                        self.phase = Phase::Commit;
                        return Op::TxStore(NODES.field(self.node, d), body_tag(self.body));
                    }
                    if is_body(v) {
                        // Split: allocate a fresh node, link it, move the
                        // resident body down, then keep descending into it.
                        assert!(
                            self.level < MAX_DEPTH,
                            "BH hash prefix collision beyond MAX_DEPTH"
                        );
                        let fresh_idx = BarnesHut::pool_base(self.body) + self.next_alloc;
                        self.next_alloc += 1;
                        self.phase = Phase::SplitStoreResident {
                            fresh: fresh_idx,
                            resident: v,
                        };
                        return Op::TxStore(NODES.field(self.node, d), NODES.at(fresh_idx).0);
                    }
                    // Interior pointer: descend.
                    self.node = NODES.index_of(Addr(v));
                    self.level += 1;
                    self.phase = Phase::Loaded;
                    continue;
                }
                Phase::SplitStoreResident { fresh, resident } => {
                    // Place the resident body into the fresh node at its
                    // next-level digit, then descend into the fresh node.
                    let rd = BarnesHut::digit(pos_hash(body_of(resident)), self.level + 1);
                    self.node = fresh;
                    self.level += 1;
                    self.phase = Phase::Loaded;
                    return Op::TxStore(NODES.field(fresh, rd), resident);
                }
                Phase::Commit => {
                    self.phase = Phase::Done;
                    return Op::TxCommit;
                }
                Phase::Done => return Op::Done,
            }
        }
    }

    fn rollback(&mut self) {
        self.node = 0;
        self.level = 0;
        self.next_alloc = 0;
        self.phase = Phase::Loaded;
    }
}

/// The shared body-position hash, recomputable from a body id alone (the
/// split path relocates bodies inserted by other threads and must agree on
/// their digits).
fn pos_hash(body: u64) -> u64 {
    let mut z = body ^ 0x0b4c_1b5e_11d3_37aa;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockState {
    Start,
    /// Optimistic (unlocked) load of the current slot issued.
    Descending,
    /// Lock acquisition in progress; `seen` caches the optimistic value.
    Locking,
    /// Re-validating load under the lock.
    Revalidating,
    /// Issuing the private split-spine stores (queued in `pending`).
    BuildSpine,
    /// Unlocking after the insert completed.
    Releasing,
    Done,
}

/// FGLock variant: optimistic descent, lock-one-node insert.
#[derive(Debug)]
struct LockInsert {
    body: u64,
    hash: u64,
    compute: u32,
    node: u64,
    level: u64,
    next_alloc: u64,
    state: LockState,
    /// The slot value observed optimistically.
    seen: u64,
    /// Consecutive failed lock tries (drives the re-descend backoff).
    fails: u32,
    /// Queued spine stores, emitted front-to-back via `pop()` on the
    /// reversed vector.
    pending: Vec<(Addr, u64)>,
}

impl ThreadProgram for LockInsert {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            let d = BarnesHut::digit(self.hash, self.level);
            match self.state {
                LockState::Start => {
                    self.state = LockState::Descending;
                    return Op::Compute(self.compute);
                }
                LockState::Descending => {
                    self.state = LockState::Locking;
                    self.seen = u64::MAX; // marks "load issued, result pending"
                    return Op::Load(NODES.field(self.node, d));
                }
                LockState::Locking => {
                    if self.seen == u64::MAX {
                        let v = prev.value();
                        if v != 0 && !is_body(v) {
                            // Interior: descend without locking.
                            self.node = NODES.index_of(Addr(v));
                            self.level += 1;
                            self.state = LockState::Descending;
                            continue;
                        }
                        // Empty or body: try the node's lock ONCE.
                        self.seen = v;
                        return Op::AtomicCas {
                            addr: LOCKS.at(self.node),
                            expect: 0,
                            new: 1,
                        };
                    }
                    if prev.value() == 0 {
                        // Lock acquired: re-validate the slot under it.
                        self.state = LockState::Revalidating;
                        return Op::Load(NODES.field(self.node, d));
                    }
                    // Busy: back off briefly and RE-DESCEND — by the time
                    // we look again the slot has usually become an interior
                    // pointer and we bypass the hot node entirely. Spinning
                    // on the lock would melt the partition's atomic unit.
                    self.fails = self.fails.saturating_add(1);
                    let window = 32u64 << self.fails.min(5);
                    let mut z = self
                        .body
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(self.fails as u64);
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    let delay = ((z ^ (z >> 27)) % window) as u32 + 1;
                    self.state = LockState::Descending;
                    return Op::Compute(delay);
                }
                LockState::Revalidating => {
                    let v = prev.value();
                    if v == 0 {
                        // Still empty: place the body, then unlock.
                        self.state = LockState::Releasing;
                        return Op::Store(NODES.field(self.node, d), body_tag(self.body));
                    }
                    if is_body(v) {
                        // Build the split spine privately, then link it.
                        self.build_spine(v);
                        self.state = LockState::BuildSpine;
                        continue;
                    }
                    // Someone linked an interior node meanwhile: unlock
                    // and descend into it.
                    let locked_node = self.node;
                    self.node = NODES.index_of(Addr(v));
                    self.level += 1;
                    self.state = LockState::Descending;
                    return Op::Store(LOCKS.at(locked_node), 0);
                }
                LockState::BuildSpine => {
                    // Spine stores were computed in build_spine and are
                    // emitted via the pending queue.
                    if let Some((a, val)) = self.pending.pop() {
                        return Op::Store(a, val);
                    }
                    self.state = LockState::Releasing;
                    continue;
                }
                LockState::Releasing => {
                    // Unlock the node we modified; the insert is done.
                    self.state = LockState::Done;
                    return Op::Store(LOCKS.at(self.node), 0);
                }
                LockState::Done => return Op::Done,
            }
        }
    }

    fn rollback(&mut self) {
        unreachable!("lock programs never run transactions");
    }
}

impl LockInsert {
    /// Builds the private spine of split nodes for a resident/our-body
    /// digit collision, queueing its stores (private-node writes first, the
    /// externally visible link last).
    fn build_spine(&mut self, resident: u64) {
        let res_hash = pos_hash(body_of(resident));
        let mut stores: Vec<(Addr, u64)> = Vec::new();
        let first_fresh = BarnesHut::pool_base(self.body) + self.next_alloc;
        let mut level = self.level + 1;
        let mut fresh = first_fresh;
        self.next_alloc += 1;
        loop {
            assert!(level <= MAX_DEPTH, "BH hash prefix collision too deep");
            let rd = BarnesHut::digit(res_hash, level);
            let md = BarnesHut::digit(self.hash, level);
            if rd != md {
                stores.push((NODES.field(fresh, rd), resident));
                stores.push((NODES.field(fresh, md), body_tag(self.body)));
                break;
            }
            // Shared digit: chain another private node.
            let deeper = BarnesHut::pool_base(self.body) + self.next_alloc;
            self.next_alloc += 1;
            stores.push((NODES.field(fresh, rd), NODES.at(deeper).0));
            fresh = deeper;
            level += 1;
        }
        // The externally visible link is issued last.
        let d = BarnesHut::digit(self.hash, self.level);
        stores.push((NODES.field(self.node, d), NODES.at(first_fresh).0));
        // `pending` is drained with pop(), so reverse to emit in order.
        stores.reverse();
        self.pending = stores;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_workload_round_robin, run_workload_sequential};

    #[test]
    fn tm_sequential_builds_valid_tree() {
        let w = BarnesHut::new(64, 33);
        run_workload_sequential(&w, SyncMode::Tm);
    }

    #[test]
    fn lock_sequential_builds_valid_tree() {
        let w = BarnesHut::new(64, 33);
        run_workload_sequential(&w, SyncMode::FgLock);
    }

    #[test]
    fn round_robin_interleavings() {
        let w = BarnesHut::new(48, 5);
        run_workload_round_robin(&w, SyncMode::Tm);
        run_workload_round_robin(&w, SyncMode::FgLock);
    }

    #[test]
    fn digits_cover_range() {
        let w = BarnesHut::new(4, 1);
        let h = w.pos_hash(2);
        for l in 0..MAX_DEPTH {
            assert!(BarnesHut::digit(h, l) < 8);
        }
    }

    #[test]
    fn checker_rejects_duplicate_body() {
        let w = BarnesHut::new(8, 9);
        let mut mem = run_workload_sequential(&w, SyncMode::Tm);
        // Duplicate a root body slot into an empty one; the checker must
        // flag it as a duplicate or as misfiled.
        let tag = (0..8u64)
            .map(|c| mem.read(NODES.field(0, c)))
            .find(|&v| is_body(v));
        if let Some(tag) = tag {
            let empty = (0..8u64)
                .find(|&c| mem.read(NODES.field(0, c)) == 0)
                .expect("root has an empty slot");
            mem.write(NODES.field(0, empty), tag);
            assert!(w.check(&mem.reader()).is_err());
        }
    }
}
