//! Hashtable population (HT-H / HT-M / HT-L).
//!
//! Each thread inserts one pre-allocated node at the head of a chained
//! hashtable bucket. The three paper variants differ only in table size
//! relative to the insert count, which sets the contention level: HT-H's
//! small table makes concurrent same-bucket inserts common, HT-L's large
//! table makes them rare.
//!
//! Memory layout (8-byte words):
//!
//! * `buckets[i]`  — head pointer of bucket `i` (0 = empty),
//! * `node[tid]`   — 32-byte node per thread: `key` at word 0, `next` at
//!   word 1,
//! * `locks[i]`    — the per-bucket spin lock used by the FGLock variant.
//!
//! Checker: every key is reachable exactly once, chains are cycle-free, and
//! the total node count equals the thread count.

use crate::txprog::{MemSpan, TxProgram};
use crate::{Region, SyncMode, Workload};
use fglock::{LockAcquirer, LockPhase};
use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};
use sim_core::DetRng;
use std::collections::HashSet;

const BUCKETS: Region = Region::new(0x1000_0000, 8);
const LOCKS: Region = Region::new(0x2000_0000, 8);
const NODES: Region = Region::new(0x3000_0000, 32);

/// The hashtable benchmark family.
#[derive(Debug, Clone)]
pub struct HashTable {
    name: String,
    buckets: u64,
    inserts: usize,
    /// Cycles of hash computation preceding each insert.
    compute: u32,
    seed: u64,
}

impl HashTable {
    /// A table with `buckets` buckets populated by `inserts` threads.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(name: &str, buckets: u64, inserts: usize, seed: u64) -> Self {
        assert!(buckets > 0 && inserts > 0);
        HashTable {
            name: name.to_owned(),
            buckets,
            inserts,
            compute: 6,
            seed,
        }
    }

    /// HT-H: inserts outnumber buckets ~4x (high contention).
    pub fn ht_h(inserts: usize, seed: u64) -> Self {
        HashTable::new("HT-H", (inserts as u64 / 4).max(1), inserts, seed)
    }

    /// HT-M: buckets ~2.5x inserts (medium contention, paper's 10x table).
    pub fn ht_m(inserts: usize, seed: u64) -> Self {
        HashTable::new("HT-M", inserts as u64 * 5 / 2, inserts, seed)
    }

    /// HT-L: buckets ~25x inserts (low contention, paper's 100x table).
    pub fn ht_l(inserts: usize, seed: u64) -> Self {
        HashTable::new("HT-L", inserts as u64 * 25, inserts, seed)
    }

    fn key_of(&self, tid: usize) -> u64 {
        // Distinct, nonzero keys.
        DetRng::seeded(self.seed).fork(tid as u64).next_u64() | 1
    }

    fn bucket_of(&self, key: u64) -> u64 {
        // Multiplicative hash.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) % self.buckets
    }

    /// This benchmark as a backend-neutral [`TxProgram`]. The TM variant
    /// touches only the bucket heads and the node pool (the lock words
    /// exist solely for the FGLock variant).
    pub fn tx_program(&self) -> TxProgram {
        TxProgram::new(
            Box::new(self.clone()),
            vec![
                MemSpan::of_region(BUCKETS, self.buckets),
                MemSpan::of_region(NODES, self.inserts as u64),
            ],
        )
    }
}

impl Workload for HashTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        // Pre-set each thread's node key; buckets and locks start zeroed.
        (0..self.inserts)
            .map(|tid| (NODES.field(tid as u64, 0), self.key_of(tid)))
            .collect()
    }

    fn thread_count(&self) -> usize {
        self.inserts
    }

    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram {
        let key = self.key_of(tid);
        let bucket = self.bucket_of(key);
        match mode {
            SyncMode::Tm => Box::new(TmInsert {
                bucket,
                node: tid as u64,
                compute: self.compute,
                step: 0,
            }),
            SyncMode::FgLock => Box::new(LockInsert {
                bucket,
                node: tid as u64,
                compute: self.compute,
                acquirer: LockAcquirer::new_salted(vec![LOCKS.at(bucket)], tid as u64),
                step: 0,
            }),
        }
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        let mut seen_nodes = HashSet::new();
        let mut seen_keys = HashSet::new();
        for b in 0..self.buckets {
            let mut p = mem(BUCKETS.at(b));
            let mut hops = 0;
            while p != 0 {
                hops += 1;
                if hops > self.inserts {
                    return Err(format!("cycle detected in bucket {b}"));
                }
                let node_idx = NODES.index_of(Addr(p));
                if node_idx as usize >= self.inserts {
                    return Err(format!("bucket {b} points outside the node pool"));
                }
                if !seen_nodes.insert(node_idx) {
                    return Err(format!("node {node_idx} linked twice"));
                }
                let key = mem(Addr(p));
                if self.bucket_of(key) != b {
                    return Err(format!("key {key:#x} filed in wrong bucket {b}"));
                }
                if !seen_keys.insert(key) {
                    return Err(format!("key {key:#x} present twice"));
                }
                p = mem(Addr(p + 8)); // next pointer
            }
        }
        if seen_nodes.len() != self.inserts {
            return Err(format!(
                "{} of {} inserts reachable",
                seen_nodes.len(),
                self.inserts
            ));
        }
        Ok(())
    }
}

/// TM variant: `tx { head = load bucket; node.next = head; bucket = node }`.
#[derive(Debug)]
struct TmInsert {
    bucket: u64,
    node: u64,
    compute: u32,
    step: u8,
}

impl ThreadProgram for TmInsert {
    fn next(&mut self, prev: OpResult) -> Op {
        let op = match self.step {
            0 => Op::Compute(self.compute),
            1 => Op::TxBegin,
            2 => Op::TxLoad(BUCKETS.at(self.bucket)),
            3 => {
                // prev = current head; link our node in front of it.
                Op::TxStore(NODES.field(self.node, 1), prev.value())
            }
            4 => Op::TxStore(BUCKETS.at(self.bucket), NODES.at(self.node).0),
            5 => Op::TxCommit,
            _ => return Op::Done,
        };
        self.step += 1;
        op
    }

    fn rollback(&mut self) {
        self.step = 2; // first op inside the transaction
    }
}

/// FGLock variant: same body under the bucket's spin lock.
#[derive(Debug)]
struct LockInsert {
    bucket: u64,
    node: u64,
    compute: u32,
    acquirer: LockAcquirer,
    step: u8,
}

impl ThreadProgram for LockInsert {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            match self.step {
                0 => {
                    self.step = 1;
                    return Op::Compute(self.compute);
                }
                1 => match self.acquirer.step(prev) {
                    LockPhase::Issue(op) => return op,
                    LockPhase::Acquired => {
                        self.step = 2;
                        continue;
                    }
                    LockPhase::Released => unreachable!("not releasing yet"),
                },
                2 => {
                    self.step = 3;
                    return Op::Load(BUCKETS.at(self.bucket));
                }
                3 => {
                    self.step = 4;
                    return Op::Store(NODES.field(self.node, 1), prev.value());
                }
                4 => {
                    self.step = 5;
                    return Op::Store(BUCKETS.at(self.bucket), NODES.at(self.node).0);
                }
                5 => {
                    self.acquirer.begin_release();
                    self.step = 6;
                    continue;
                }
                6 => match self.acquirer.step(prev) {
                    LockPhase::Issue(op) => return op,
                    LockPhase::Released => {
                        self.step = 7;
                        continue;
                    }
                    LockPhase::Acquired => unreachable!("already releasing"),
                },
                _ => return Op::Done,
            }
        }
    }

    fn rollback(&mut self) {
        unreachable!("lock programs never run transactions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_workload_round_robin, run_workload_sequential};

    #[test]
    fn tm_sequential_establishes_invariants() {
        let w = HashTable::ht_h(64, 7);
        run_workload_sequential(&w, SyncMode::Tm);
    }

    #[test]
    fn lock_sequential_establishes_invariants() {
        let w = HashTable::ht_h(64, 7);
        run_workload_sequential(&w, SyncMode::FgLock);
    }

    #[test]
    fn tm_round_robin_interleaving() {
        let w = HashTable::ht_m(48, 3);
        run_workload_round_robin(&w, SyncMode::Tm);
    }

    #[test]
    fn lock_round_robin_interleaving() {
        let w = HashTable::ht_l(48, 3);
        run_workload_round_robin(&w, SyncMode::FgLock);
    }

    #[test]
    fn contention_levels_ordered() {
        let h = HashTable::ht_h(1000, 1);
        let m = HashTable::ht_m(1000, 1);
        let l = HashTable::ht_l(1000, 1);
        assert!(h.buckets < m.buckets && m.buckets < l.buckets);
    }

    #[test]
    fn keys_are_distinct() {
        let w = HashTable::ht_h(256, 9);
        let keys: HashSet<u64> = (0..256).map(|t| w.key_of(t)).collect();
        assert_eq!(keys.len(), 256);
    }

    #[test]
    fn checker_rejects_missing_insert() {
        let w = HashTable::ht_h(16, 5);
        // Run all but one thread.
        let mut mem = crate::testutil::MemImage::from_initial(&w.initial_memory());
        for tid in 0..w.thread_count() - 1 {
            let mut p = w.program(tid, SyncMode::Tm);
            crate::testutil::run_program_sequential(p.as_mut(), &mut mem, 100_000);
        }
        assert!(w.check(&mem.reader()).is_err());
    }

    #[test]
    fn checker_rejects_clobbered_head() {
        let w = HashTable::ht_h(16, 5);
        let mut mem = crate::testutil::run_workload_sequential(&w, SyncMode::Tm);
        // Simulate a lost insert: clear one bucket that has a chain.
        let busy = (0..16u64)
            .find(|&b| mem.read(BUCKETS.at(b)) != 0)
            .expect("some bucket is populated");
        mem.write(BUCKETS.at(busy), 0);
        assert!(w.check(&mem.reader()).is_err());
    }
}
