//! Backend-neutral transactional programs.
//!
//! A [`TxProgram`] packages the one canonical definition of a benchmark —
//! its per-thread resumable op streams ([`gpu_simt::ThreadProgram`]), the
//! initial memory image, and the final-state checker — together with a
//! declared memory *footprint*: the word spans the program may touch. The
//! cycle-level simulator derives its SIMT streams from the same per-thread
//! programs (via [`Workload::program`]), while host-threaded executors such
//! as the TL2 STM backend use the footprint to lay the address space out as
//! dense versioned storage. One definition, any executor.
//!
//! The footprint is a contract, not a hint: executors that depend on it
//! (TL2) treat an access outside every declared span as a program error,
//! which doubles as a cheap bounds oracle for the workload definitions
//! themselves.

use crate::{SyncMode, Workload};
use gpu_mem::Addr;
use gpu_simt::BoxedProgram;

/// A contiguous, word-aligned span of the flat address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSpan {
    /// First byte address (8-byte aligned).
    pub base: u64,
    /// Length in 8-byte words.
    pub words: u64,
}

impl MemSpan {
    /// A span of `words` words starting at byte address `base`.
    pub const fn new(base: u64, words: u64) -> Self {
        MemSpan { base, words }
    }

    /// A span covering elements `0..elems` of `region` (stride-padded:
    /// every word of every element is included).
    pub const fn of_region(region: crate::Region, elems: u64) -> Self {
        MemSpan {
            base: region.base,
            words: elems * region.stride / 8,
        }
    }

    /// One-past-the-end byte address.
    pub fn end(&self) -> u64 {
        self.base + self.words * 8
    }

    /// Whether byte address `addr` falls inside the span.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// A backend-neutral transactional program: one benchmark definition that
/// any executor — the cycle-level GPU simulator or a host-threaded STM —
/// can run and check.
///
/// Constructed via [`TxProgram::new`] or the `tx_program()` methods on the
/// first-wave workloads ([`crate::hashtable::HashTable`],
/// [`crate::atm::Atm`], [`crate::fuzz::Fuzz`]).
pub struct TxProgram {
    workload: Box<dyn Workload + Send + Sync>,
    footprint: Vec<MemSpan>,
}

impl std::fmt::Debug for TxProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxProgram")
            .field("name", &self.workload.name())
            .field("threads", &self.workload.thread_count())
            .field("footprint", &self.footprint)
            .finish()
    }
}

impl TxProgram {
    /// Wraps `workload` with its declared memory footprint.
    ///
    /// # Panics
    ///
    /// Panics if a span is empty or not word-aligned, if spans overlap, or
    /// if any initial-memory address falls outside every span — all of
    /// which are workload-definition bugs, not runtime conditions.
    pub fn new(workload: Box<dyn Workload + Send + Sync>, footprint: Vec<MemSpan>) -> Self {
        let mut spans = footprint.clone();
        spans.sort_by_key(|s| s.base);
        for s in &spans {
            assert!(s.words > 0, "empty footprint span at {:#x}", s.base);
            assert!(s.base % 8 == 0, "unaligned footprint span at {:#x}", s.base);
        }
        for w in spans.windows(2) {
            assert!(
                w[0].end() <= w[1].base,
                "overlapping footprint spans at {:#x} and {:#x}",
                w[0].base,
                w[1].base
            );
        }
        for (addr, _) in workload.initial_memory() {
            assert!(
                spans.iter().any(|s| s.contains(addr.0)),
                "initial memory at {:#x} outside the declared footprint",
                addr.0
            );
        }
        TxProgram {
            workload,
            footprint: spans,
        }
    }

    /// The benchmark's name ("HT-H", "ATM", "fuzz-single-cell", ...).
    pub fn name(&self) -> &str {
        self.workload.name()
    }

    /// Number of logical threads the program launches.
    pub fn thread_count(&self) -> usize {
        self.workload.thread_count()
    }

    /// Initial memory contents as `(word address, value)` pairs.
    pub fn initial_memory(&self) -> Vec<(Addr, u64)> {
        self.workload.initial_memory()
    }

    /// The declared footprint, sorted by base address and non-overlapping.
    pub fn footprint(&self) -> &[MemSpan] {
        &self.footprint
    }

    /// Total footprint size in words.
    pub fn footprint_words(&self) -> u64 {
        self.footprint.iter().map(|s| s.words).sum()
    }

    /// The transactional op stream of logical thread `tid` — the same
    /// stream the simulator's TM mode executes.
    ///
    /// # Panics
    ///
    /// May panic if `tid >= thread_count()`.
    pub fn thread(&self, tid: usize) -> BoxedProgram {
        self.workload.program(tid, SyncMode::Tm)
    }

    /// Verifies the benchmark's invariants over a final memory image.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        self.workload.check(mem)
    }

    /// The underlying workload, for executors that consume the
    /// [`Workload`] interface directly (the simulator backend).
    pub fn workload(&self) -> &dyn Workload {
        self.workload.as_ref()
    }

    /// Unwraps into the owned workload, discarding the footprint. Used by
    /// suite construction paths that only need the SIMT-stream view.
    pub fn into_workload(self) -> Box<dyn Workload + Send + Sync> {
        self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atm::Atm;
    use crate::fuzz::{Fuzz, FuzzShape};
    use crate::hashtable::HashTable;
    use crate::testutil;

    #[test]
    fn span_arithmetic() {
        let s = MemSpan::new(0x100, 4);
        assert_eq!(s.end(), 0x120);
        assert!(s.contains(0x100) && s.contains(0x11f) && !s.contains(0x120));
        let r = crate::Region::new(0x1000, 32);
        let s = MemSpan::of_region(r, 3);
        assert_eq!(s.words, 12);
        assert!(s.contains(r.field(2, 3).0));
    }

    #[test]
    fn first_wave_programs_cover_their_initial_memory() {
        let progs: Vec<TxProgram> = vec![
            HashTable::ht_h(32, 7).tx_program(),
            Atm::new(16, 8, 2, 3).tx_program(),
            Fuzz::new(FuzzShape::MixedAliasing, 8, 3, 5).tx_program(),
        ];
        for p in &progs {
            assert!(p.thread_count() > 0);
            assert!(p.footprint_words() > 0);
        }
    }

    /// Every first-wave program runs to completion and passes its checker
    /// when driven purely through the [`TxProgram`] interface (thread
    /// streams + initial memory + checker) — no [`Workload`] calls.
    #[test]
    fn first_wave_programs_run_sequentially_via_the_ir() {
        let progs: Vec<TxProgram> = vec![
            HashTable::ht_h(24, 9).tx_program(),
            Atm::new(8, 12, 2, 4).tx_program(),
            Fuzz::new(FuzzShape::SingleCell, 6, 2, 1).tx_program(),
            Fuzz::new(FuzzShape::LockSteal, 6, 2, 2).tx_program(),
            Fuzz::new(FuzzShape::MixedAliasing, 6, 2, 3).tx_program(),
            Fuzz::new(FuzzShape::Scatter, 6, 2, 4).tx_program(),
            Fuzz::new(FuzzShape::Livelock, 6, 2, 5).tx_program(),
        ];
        for p in &progs {
            let mut mem = testutil::MemImage::from_initial(&p.initial_memory());
            for tid in 0..p.thread_count() {
                let mut prog = p.thread(tid);
                testutil::run_program_sequential(prog.as_mut(), &mut mem, 1_000_000);
            }
            p.check(&mem.reader()).expect("sequential run passes");
        }
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_spans_are_rejected() {
        let w = Atm::new(4, 2, 1, 1);
        let base = 0x4000_0000;
        TxProgram::new(
            Box::new(w),
            vec![MemSpan::new(base, 4), MemSpan::new(base + 8, 4)],
        );
    }
}
