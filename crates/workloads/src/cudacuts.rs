//! CudaCuts (CC): push-relabel image segmentation on a pixel grid.
//!
//! Each thread owns one pixel and repeatedly pushes excess flow to its
//! right and down neighbours. A push is a short read-modify-write of two
//! pixels wrapped in a transaction (or protected by the two pixel locks),
//! separated by substantial non-transactional relabeling computation — so
//! transactions are a small fraction of runtime and contention is confined
//! to grid neighbours, matching the paper's characterization.
//!
//! Checker: total excess is conserved.

use crate::{Region, SyncMode, Workload};

use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};

// One 32-byte record per pixel (excess + height + capacities in the real
// kernel), which also means one TM metadata granule per pixel.
const EXCESS: Region = Region::new(0xA000_0000, 32);

/// Initial excess at every pixel.
pub const INITIAL_EXCESS: u64 = 1 << 16;

/// Cycles of relabeling computation between pushes.
const RELABEL_COMPUTE: u32 = 1_500;

/// The CudaCuts benchmark.
#[derive(Debug, Clone)]
pub struct CudaCuts {
    width: u64,
    height: u64,
    iterations: usize,
}

impl CudaCuts {
    /// A `width x height` pixel grid relaxed for `iterations` push rounds.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate.
    pub fn new(width: u64, height: u64, iterations: usize) -> Self {
        assert!(width >= 2 && height >= 2 && iterations >= 1);
        CudaCuts {
            width,
            height,
            iterations,
        }
    }

    fn pixels(&self) -> u64 {
        self.width * self.height
    }

    /// Right and down neighbours of pixel `p`, if in bounds.
    fn neighbours(&self, p: u64) -> Vec<u64> {
        let (r, c) = (p / self.width, p % self.width);
        let mut n = Vec::with_capacity(2);
        if c + 1 < self.width {
            n.push(p + 1);
        }
        if r + 1 < self.height {
            n.push(p + self.width);
        }
        n
    }
}

impl Workload for CudaCuts {
    fn name(&self) -> &str {
        "CC"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        (0..self.pixels())
            .map(|p| (EXCESS.at(p), INITIAL_EXCESS))
            .collect()
    }

    fn thread_count(&self) -> usize {
        self.pixels() as usize
    }

    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram {
        let pushes: Vec<u64> = (0..self.iterations)
            .flat_map(|_| self.neighbours(tid as u64))
            .collect();
        match mode {
            SyncMode::Tm => Box::new(TmPush {
                pixel: tid as u64,
                pushes,
                k: 0,
                step: 0,
                excess_p: 0,
            }),
            SyncMode::FgLock => Box::new(LockPush {
                pixel: tid as u64,
                pushes,
                k: 0,
                step: 0,
                excess_p: 0,
            }),
        }
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        let expected = self.pixels() * INITIAL_EXCESS;
        let total: u64 = (0..self.pixels()).map(|p| mem(EXCESS.at(p))).sum();
        if total != expected {
            return Err(format!("excess not conserved: {total} != {expected}"));
        }
        Ok(())
    }
}

/// The push amount: a quarter of the source's excess.
fn push_amount(excess: u64) -> u64 {
    excess / 4
}

#[derive(Debug)]
struct TmPush {
    pixel: u64,
    pushes: Vec<u64>,
    k: usize,
    step: u8,
    excess_p: u64,
}

impl ThreadProgram for TmPush {
    fn next(&mut self, prev: OpResult) -> Op {
        if self.k >= self.pushes.len() {
            return Op::Done;
        }
        let q = self.pushes[self.k];
        let op = match self.step {
            0 => Op::Compute(RELABEL_COMPUTE),
            1 => Op::TxBegin,
            2 => Op::TxLoad(EXCESS.at(self.pixel)),
            3 => {
                self.excess_p = prev.value();
                Op::TxLoad(EXCESS.at(q))
            }
            4 => {
                let d = push_amount(self.excess_p);
                let q_new = prev.value() + d;
                let p_new = self.excess_p - d;
                self.excess_p = q_new;
                Op::TxStore(EXCESS.at(self.pixel), p_new)
            }
            5 => Op::TxStore(EXCESS.at(q), self.excess_p),
            6 => Op::TxCommit,
            _ => {
                self.k += 1;
                self.step = 0;
                return self.next(OpResult::None);
            }
        };
        self.step += 1;
        op
    }

    fn rollback(&mut self) {
        self.step = 2;
    }
}

/// Hand-optimized non-TM variant, as real CudaCuts kernels do it: deduct
/// from the source with a CAS loop (safe against concurrent pushes out of
/// the same pixel), then credit the destination with one `atomicAdd` —
/// conservation holds without any locks.
#[derive(Debug)]
struct LockPush {
    pixel: u64,
    pushes: Vec<u64>,
    k: usize,
    step: u8,
    excess_p: u64,
}

impl ThreadProgram for LockPush {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            if self.k >= self.pushes.len() {
                return Op::Done;
            }
            let q = self.pushes[self.k];
            match self.step {
                0 => {
                    self.step = 1;
                    return Op::Compute(RELABEL_COMPUTE);
                }
                1 => {
                    self.step = 2;
                    return Op::Load(EXCESS.at(self.pixel));
                }
                2 => {
                    // CAS-deduct the push amount from our pixel.
                    self.excess_p = prev.value();
                    let d = push_amount(self.excess_p);
                    self.step = 3;
                    return Op::AtomicCas {
                        addr: EXCESS.at(self.pixel),
                        expect: self.excess_p,
                        new: self.excess_p - d,
                    };
                }
                3 => {
                    let observed = prev.value();
                    if observed != self.excess_p {
                        // A concurrent push changed our excess: recompute.
                        self.excess_p = observed;
                        let d = push_amount(self.excess_p);
                        return Op::AtomicCas {
                            addr: EXCESS.at(self.pixel),
                            expect: self.excess_p,
                            new: self.excess_p - d,
                        };
                    }
                    // Deducted: credit the neighbour.
                    let d = push_amount(self.excess_p);
                    self.step = 4;
                    return Op::AtomicAdd {
                        addr: EXCESS.at(q),
                        delta: d,
                    };
                }
                _ => {
                    self.k += 1;
                    self.step = 0;
                    continue;
                }
            }
        }
    }

    fn rollback(&mut self) {
        unreachable!("atomic programs never run transactions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_workload_round_robin, run_workload_sequential};

    #[test]
    fn tm_conserves_excess() {
        run_workload_sequential(&CudaCuts::new(4, 3, 2), SyncMode::Tm);
    }

    #[test]
    fn lock_conserves_excess() {
        run_workload_sequential(&CudaCuts::new(4, 3, 2), SyncMode::FgLock);
    }

    #[test]
    fn round_robin_interleavings() {
        run_workload_round_robin(&CudaCuts::new(3, 3, 2), SyncMode::Tm);
        run_workload_round_robin(&CudaCuts::new(3, 3, 2), SyncMode::FgLock);
    }

    #[test]
    fn neighbour_structure() {
        let cc = CudaCuts::new(3, 2, 1);
        assert_eq!(cc.neighbours(0), vec![1, 3]); // corner: right + down
        assert_eq!(cc.neighbours(2), vec![5]); // right edge: down only
        assert_eq!(cc.neighbours(5), Vec::<u64>::new()); // bottom-right
        assert_eq!(cc.thread_count(), 6);
    }

    #[test]
    fn checker_detects_leak() {
        let w = CudaCuts::new(3, 3, 1);
        let mut mem = run_workload_sequential(&w, SyncMode::Tm);
        let v = mem.read(EXCESS.at(0));
        mem.write(EXCESS.at(0), v - 1);
        assert!(w.check(&mem.reader()).is_err());
    }
}
