//! Apriori data mining (AP): candidate-itemset support counting.
//!
//! Threads scan their share of the transaction database (modelled as
//! computation) and bump the support counters of the candidate itemsets
//! they find. The counter set is small and accesses are heavily skewed
//! toward a few hot candidates, producing the extreme contention the paper
//! reports for AP (thousands of aborts per 1K commits under GETM), while
//! transactions remain a small slice of total runtime.
//!
//! The hand-optimized lock variant uses a single `atomicAdd` per counter
//! bump, as real fine-grained GPU code would.
//!
//! Checker: the counter total equals the number of increments issued.

use crate::{Region, SyncMode, Workload};
use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};
use sim_core::DetRng;

// One 32-byte candidate record per counter (itemset id, support count,
// links in the real hash tree) — one TM metadata granule per candidate.
const COUNTERS: Region = Region::new(0xC000_0000, 32);

/// Cycles of database scanning between counter updates.
const SCAN_COMPUTE: u32 = 30_000;

/// The Apriori benchmark.
#[derive(Debug, Clone)]
pub struct Apriori {
    counters: u64,
    threads: usize,
    updates_per_thread: usize,
    /// Number of "hot" counters that absorb most updates.
    hot: u64,
    /// Probability an update hits the hot set.
    hot_fraction: f64,
    seed: u64,
}

impl Apriori {
    /// `threads` threads each issue `updates_per_thread` counter bumps over
    /// `counters` candidates.
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes.
    pub fn new(counters: u64, threads: usize, updates_per_thread: usize, seed: u64) -> Self {
        assert!(counters >= 2 && threads >= 1 && updates_per_thread >= 1);
        Apriori {
            counters,
            threads,
            updates_per_thread,
            // The hot set is at most 4 counters and always leaves at least
            // one cold counter.
            hot: (counters / 2).clamp(1, 4),
            hot_fraction: 0.4,
            seed,
        }
    }

    /// The counter thread `tid` bumps on update `k`.
    fn target(&self, tid: usize, k: usize) -> u64 {
        let mut rng = DetRng::seeded(self.seed ^ 0xA9)
            .fork(tid as u64)
            .fork(k as u64);
        if rng.chance(self.hot_fraction) {
            rng.below(self.hot)
        } else {
            self.hot + rng.below(self.counters - self.hot)
        }
    }

    /// Total increments the run will perform.
    pub fn total_updates(&self) -> u64 {
        self.threads as u64 * self.updates_per_thread as u64
    }
}

impl Workload for Apriori {
    fn name(&self) -> &str {
        "AP"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        Vec::new() // counters start at zero
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram {
        let targets: Vec<u64> = (0..self.updates_per_thread)
            .map(|k| self.target(tid, k))
            .collect();
        match mode {
            SyncMode::Tm => Box::new(TmCount {
                targets,
                k: 0,
                step: 0,
                seed_hint: tid as u64,
            }),
            SyncMode::FgLock => Box::new(AtomicCount {
                targets,
                k: 0,
                step: 0,
                seed_hint: tid as u64,
            }),
        }
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        let total: u64 = (0..self.counters).map(|c| mem(COUNTERS.at(c))).sum();
        if total != self.total_updates() {
            return Err(format!(
                "support counts lost: {total} != {}",
                self.total_updates()
            ));
        }
        Ok(())
    }
}

/// TM variant: `tx { c = load counter; store counter c+1 }`.
#[derive(Debug)]
struct TmCount {
    targets: Vec<u64>,
    k: usize,
    step: u8,
    /// Per-thread jitter seed for the scan length.
    seed_hint: u64,
}

impl TmCount {
    fn scan_jitter(&self) -> u32 {
        let mut z = (self.targets.len() as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.seed_hint.wrapping_add(self.k as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        ((z ^ (z >> 27)) % 60_000) as u32
    }
}

impl ThreadProgram for TmCount {
    fn next(&mut self, prev: OpResult) -> Op {
        if self.k >= self.targets.len() {
            return Op::Done;
        }
        let c = self.targets[self.k];
        let op = match self.step {
            // Scan lengths vary per thread and update: record batches are
            // uneven, so counter bumps spread out in time instead of
            // arriving in one synchronized burst.
            0 => Op::Compute(SCAN_COMPUTE + self.scan_jitter()),
            1 => Op::TxBegin,
            2 => Op::TxLoad(COUNTERS.at(c)),
            3 => Op::TxStore(COUNTERS.at(c), prev.value() + 1),
            4 => Op::TxCommit,
            _ => {
                self.k += 1;
                self.step = 0;
                return self.next(OpResult::None);
            }
        };
        self.step += 1;
        op
    }

    fn rollback(&mut self) {
        self.step = 2;
    }
}

/// Hand-optimized non-TM variant: one `atomicAdd` per bump.
#[derive(Debug)]
struct AtomicCount {
    targets: Vec<u64>,
    k: usize,
    step: u8,
    /// Per-thread jitter seed mirroring the TM variant's scan lengths.
    seed_hint: u64,
}

impl ThreadProgram for AtomicCount {
    fn next(&mut self, _prev: OpResult) -> Op {
        if self.k >= self.targets.len() {
            return Op::Done;
        }
        let c = self.targets[self.k];
        let op = match self.step {
            0 => {
                let mut z = (self.targets.len() as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(self.seed_hint.wrapping_add(self.k as u64));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                Op::Compute(SCAN_COMPUTE + ((z ^ (z >> 27)) % 60_000) as u32)
            }
            1 => Op::AtomicAdd {
                addr: COUNTERS.at(c),
                delta: 1,
            },
            _ => {
                self.k += 1;
                self.step = 0;
                return self.next(OpResult::None);
            }
        };
        self.step += 1;
        op
    }

    fn rollback(&mut self) {
        unreachable!("atomic programs never run transactions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_workload_round_robin, run_workload_sequential};

    #[test]
    fn tm_counts_everything() {
        run_workload_sequential(&Apriori::new(16, 24, 3, 4), SyncMode::Tm);
    }

    #[test]
    fn atomic_counts_everything() {
        run_workload_sequential(&Apriori::new(16, 24, 3, 4), SyncMode::FgLock);
    }

    #[test]
    fn round_robin_interleavings() {
        run_workload_round_robin(&Apriori::new(8, 12, 2, 1), SyncMode::Tm);
        run_workload_round_robin(&Apriori::new(8, 12, 2, 1), SyncMode::FgLock);
    }

    #[test]
    fn updates_are_skewed_to_hot_set() {
        let w = Apriori::new(64, 100, 10, 2);
        let hot_hits = (0..100)
            .flat_map(|t| (0..10).map(move |k| (t, k)))
            .filter(|&(t, k)| w.target(t, k) < w.hot)
            .count();
        // ~40% should land in the hot set.
        assert!(hot_hits > 280 && hot_hits < 520, "hot hits = {hot_hits}");
    }

    #[test]
    fn checker_detects_lost_increment() {
        let w = Apriori::new(8, 6, 2, 3);
        let mut mem = run_workload_sequential(&w, SyncMode::Tm);
        let v = mem.read(COUNTERS.at(0));
        mem.write(COUNTERS.at(0), v + 1);
        assert!(w.check(&mem.reader()).is_err());
    }
}
