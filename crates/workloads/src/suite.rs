//! Pre-configured benchmark suites matching the paper's Table III.
//!
//! Two scales are provided: [`Scale::Fast`] shrinks every benchmark while
//! preserving its contention ratio (inserts-to-buckets, threads-to-
//! accounts, ...) so a full figure sweep runs in minutes; [`Scale::Paper`]
//! restores the paper's sizes (8000/80000/800000-entry hashtables, 1M
//! accounts, 60K cloth edges, 30K bodies, 200x150 pixels, 4000 records).
//!
//! Benchmarks are identified by the [`Benchmark`] enum; its
//! [`std::str::FromStr`]/[`std::fmt::Display`] impls round-trip the
//! paper's names ("HT-H", "CLto", ...), so CLI surfaces can parse user
//! input without a stringly-typed lookup table.

use crate::apriori::Apriori;
use crate::atm::Atm;
use crate::barneshut::BarnesHut;
use crate::cloth::Cloth;
use crate::cudacuts::CudaCuts;
use crate::hashtable::HashTable;
use crate::Workload;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Shrunk sizes with the paper's contention ratios (for sweeps).
    Fast,
    /// The paper's full sizes.
    Paper,
}

impl Scale {
    /// The canonical name used in cache keys and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Fast => "fast",
            Scale::Paper => "paper",
        }
    }
}

/// One of the nine benchmarks of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// High-contention hashtable population (~1 insert per bucket).
    HtH,
    /// Medium-contention hashtable population.
    HtM,
    /// Low-contention hashtable population.
    HtL,
    /// Parallel bank transfers.
    Atm,
    /// Cloth physics edge relaxation.
    Cl,
    /// Transaction-optimized cloth.
    ClTo,
    /// Barnes-Hut octree build.
    Bh,
    /// CudaCuts push-relabel image segmentation.
    Cc,
    /// Apriori itemset support counting.
    Ap,
}

impl Benchmark {
    /// All nine benchmarks, in the paper's presentation order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::HtH,
        Benchmark::HtM,
        Benchmark::HtL,
        Benchmark::Atm,
        Benchmark::Cl,
        Benchmark::ClTo,
        Benchmark::Bh,
        Benchmark::Cc,
        Benchmark::Ap,
    ];

    /// The paper's name for this benchmark ("HT-H", "CLto", ...).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::HtH => "HT-H",
            Benchmark::HtM => "HT-M",
            Benchmark::HtL => "HT-L",
            Benchmark::Atm => "ATM",
            Benchmark::Cl => "CL",
            Benchmark::ClTo => "CLto",
            Benchmark::Bh => "BH",
            Benchmark::Cc => "CC",
            Benchmark::Ap => "AP",
        }
    }

    /// Builds this benchmark as a backend-neutral
    /// [`TxProgram`](crate::txprog::TxProgram), for executors beyond the
    /// cycle-level simulator (the host-threaded TL2 STM backend).
    ///
    /// `None` for benchmarks not yet expressed in the IR — the first wave
    /// covers the hashtable family and ATM (fuzz shapes construct their
    /// programs via [`crate::fuzz::Fuzz::tx_program`] directly).
    pub fn tx_program(self, scale: Scale) -> Option<crate::txprog::TxProgram> {
        let seed = 0xBEEF;
        match (self, scale) {
            // HT-*: the paper populates 8000/80000/800000-entry tables with
            // roughly one insert per HT-H bucket; the contention ratio is
            // inserts : buckets (1x / 0.1x / 0.01x).
            // The Fast sizes keep the machine's 15 cores saturated with
            // enough warps to amortize memory latency (the GPU's whole modus
            // operandi); shrinking the thread count further would starve the
            // latency-hiding that both TM designs assume.
            (Benchmark::HtH, Scale::Fast) => {
                Some(HashTable::new("HT-H", 7_680, 7_680, seed).tx_program())
            }
            (Benchmark::HtH, Scale::Paper) => {
                Some(HashTable::new("HT-H", 8_000, 8_192, seed).tx_program())
            }
            (Benchmark::HtM, Scale::Fast) => {
                Some(HashTable::new("HT-M", 76_800, 7_680, seed).tx_program())
            }
            (Benchmark::HtM, Scale::Paper) => {
                Some(HashTable::new("HT-M", 80_000, 8_192, seed).tx_program())
            }
            (Benchmark::HtL, Scale::Fast) => {
                Some(HashTable::new("HT-L", 768_000, 7_680, seed).tx_program())
            }
            (Benchmark::HtL, Scale::Paper) => {
                Some(HashTable::new("HT-L", 800_000, 8_192, seed).tx_program())
            }
            // ATM: 1M accounts in the paper; keep accounts >> concurrent
            // transfers so pairwise conflicts stay rare.
            (Benchmark::Atm, Scale::Fast) => Some(Atm::new(500_000, 7_680, 2, seed).tx_program()),
            (Benchmark::Atm, Scale::Paper) => {
                Some(Atm::new(1_000_000, 15_360, 4, seed).tx_program())
            }
            _ => None,
        }
    }

    /// Builds this benchmark's workload at the given scale.
    pub fn build(self, scale: Scale) -> Box<dyn Workload> {
        // First-wave benchmarks are defined once as backend-neutral
        // transactional programs; the SIMT view is derived from that one
        // definition.
        if let Some(p) = self.tx_program(scale) {
            return p.into_workload();
        }
        let seed = 0xBEEF;
        match (self, scale) {
            (Benchmark::HtH | Benchmark::HtM | Benchmark::HtL | Benchmark::Atm, _) => {
                unreachable!("first-wave benchmarks build through tx_program")
            }
            // CL / CLto: 60K edges in the paper (a ~175x175 grid). The grid
            // must dwarf the concurrent-edge count or every pair of in-flight
            // edges is adjacent.
            (Benchmark::Cl, Scale::Fast) => Box::new(Cloth::cl(80, 80, 1)),
            (Benchmark::Cl, Scale::Paper) => Box::new(Cloth::cl(175, 175, 1)),
            (Benchmark::ClTo, Scale::Fast) => Box::new(Cloth::clto(80, 80, 1)),
            (Benchmark::ClTo, Scale::Paper) => Box::new(Cloth::clto(175, 175, 1)),
            // BH: 30K bodies in the paper.
            (Benchmark::Bh, Scale::Fast) => Box::new(BarnesHut::new(7_680, seed)),
            (Benchmark::Bh, Scale::Paper) => Box::new(BarnesHut::new(30_000, seed)),
            // CC: 200x150 pixels in the paper.
            (Benchmark::Cc, Scale::Fast) => Box::new(CudaCuts::new(112, 72, 1)),
            (Benchmark::Cc, Scale::Paper) => Box::new(CudaCuts::new(200, 150, 2)),
            // AP: 4000 records; few candidate counters, heavy skew.
            (Benchmark::Ap, Scale::Fast) => Box::new(Apriori::new(256, 3_840, 1, seed)),
            (Benchmark::Ap, Scale::Paper) => Box::new(Apriori::new(256, 4_000, 2, seed)),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark(pub String);

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown benchmark {:?} (expected one of {})",
            self.0,
            NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownBenchmark {}

impl std::str::FromStr for Benchmark {
    type Err = UnknownBenchmark;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| UnknownBenchmark(s.to_owned()))
    }
}

/// The names of the nine benchmarks, in the paper's order.
pub const NAMES: [&str; 9] = [
    "HT-H", "HT-M", "HT-L", "ATM", "CL", "CLto", "BH", "CC", "AP",
];

/// The full nine-benchmark suite at the given scale, in the paper's order.
pub fn full_suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    Benchmark::ALL.iter().map(|b| b.build(scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_benchmarks() {
        let suite = full_suite(Scale::Fast);
        assert_eq!(suite.len(), 9);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, NAMES.to_vec());
    }

    #[test]
    fn fast_sizes_are_modest() {
        for w in full_suite(Scale::Fast) {
            assert!(w.thread_count() <= 20_000, "{} too large", w.name());
            assert!(w.thread_count() >= 256, "{} too small", w.name());
        }
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>(), Ok(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!("ht-h".parse::<Benchmark>(), Ok(Benchmark::HtH));
        assert_eq!("CLTO".parse::<Benchmark>(), Ok(Benchmark::ClTo));
    }

    #[test]
    fn enum_order_matches_names() {
        let from_enum: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(from_enum, NAMES.to_vec());
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = "nope".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("nope"));
        assert!(err.to_string().contains("HT-H"));
    }

    #[test]
    fn built_workload_matches_enum_name() {
        for b in Benchmark::ALL {
            assert_eq!(b.build(Scale::Fast).name(), b.name());
        }
    }
}
