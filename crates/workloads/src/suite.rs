//! Pre-configured benchmark suites matching the paper's Table III.
//!
//! Two scales are provided: [`Scale::Fast`] shrinks every benchmark while
//! preserving its contention ratio (inserts-to-buckets, threads-to-
//! accounts, ...) so a full figure sweep runs in minutes; [`Scale::Paper`]
//! restores the paper's sizes (8000/80000/800000-entry hashtables, 1M
//! accounts, 60K cloth edges, 30K bodies, 200x150 pixels, 4000 records).

use crate::apriori::Apriori;
use crate::atm::Atm;
use crate::barneshut::BarnesHut;
use crate::cloth::Cloth;
use crate::cudacuts::CudaCuts;
use crate::hashtable::HashTable;
use crate::Workload;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk sizes with the paper's contention ratios (for sweeps).
    Fast,
    /// The paper's full sizes.
    Paper,
}

/// The names of the nine benchmarks, in the paper's order.
pub const NAMES: [&str; 9] = [
    "HT-H", "HT-M", "HT-L", "ATM", "CL", "CLto", "BH", "CC", "AP",
];

/// Builds one benchmark by name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str, scale: Scale) -> Box<dyn Workload> {
    let seed = 0xBEEF;
    match (name, scale) {
        // HT-*: the paper populates 8000/80000/800000-entry tables with
        // roughly one insert per HT-H bucket; the contention ratio is
        // inserts : buckets (1x / 0.1x / 0.01x).
        // The Fast sizes keep the machine's 15 cores saturated with
        // enough warps to amortize memory latency (the GPU's whole modus
        // operandi); shrinking the thread count further would starve the
        // latency-hiding that both TM designs assume.
        ("HT-H", Scale::Fast) => Box::new(HashTable::new("HT-H", 7_680, 7_680, seed)),
        ("HT-H", Scale::Paper) => Box::new(HashTable::new("HT-H", 8_000, 8_192, seed)),
        ("HT-M", Scale::Fast) => Box::new(HashTable::new("HT-M", 76_800, 7_680, seed)),
        ("HT-M", Scale::Paper) => Box::new(HashTable::new("HT-M", 80_000, 8_192, seed)),
        ("HT-L", Scale::Fast) => Box::new(HashTable::new("HT-L", 768_000, 7_680, seed)),
        ("HT-L", Scale::Paper) => Box::new(HashTable::new("HT-L", 800_000, 8_192, seed)),
        // ATM: 1M accounts in the paper; keep accounts >> concurrent
        // transfers so pairwise conflicts stay rare.
        ("ATM", Scale::Fast) => Box::new(Atm::new(500_000, 7_680, 2, seed)),
        ("ATM", Scale::Paper) => Box::new(Atm::new(1_000_000, 15_360, 4, seed)),
        // CL / CLto: 60K edges in the paper (a ~175x175 grid). The grid
        // must dwarf the concurrent-edge count or every pair of in-flight
        // edges is adjacent.
        ("CL", Scale::Fast) => Box::new(Cloth::cl(80, 80, 1)),
        ("CL", Scale::Paper) => Box::new(Cloth::cl(175, 175, 1)),
        ("CLto", Scale::Fast) => Box::new(Cloth::clto(80, 80, 1)),
        ("CLto", Scale::Paper) => Box::new(Cloth::clto(175, 175, 1)),
        // BH: 30K bodies in the paper.
        ("BH", Scale::Fast) => Box::new(BarnesHut::new(7_680, seed)),
        ("BH", Scale::Paper) => Box::new(BarnesHut::new(30_000, seed)),
        // CC: 200x150 pixels in the paper.
        ("CC", Scale::Fast) => Box::new(CudaCuts::new(112, 72, 1)),
        ("CC", Scale::Paper) => Box::new(CudaCuts::new(200, 150, 2)),
        // AP: 4000 records; few candidate counters, heavy skew.
        ("AP", Scale::Fast) => Box::new(Apriori::new(256, 3_840, 1, seed)),
        ("AP", Scale::Paper) => Box::new(Apriori::new(256, 4_000, 2, seed)),
        (other, _) => panic!("unknown benchmark {other:?}"),
    }
}

/// The full nine-benchmark suite at the given scale, in the paper's order.
pub fn full_suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    NAMES.iter().map(|n| by_name(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_benchmarks() {
        let suite = full_suite(Scale::Fast);
        assert_eq!(suite.len(), 9);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, NAMES.to_vec());
    }

    #[test]
    fn fast_sizes_are_modest() {
        for w in full_suite(Scale::Fast) {
            assert!(w.thread_count() <= 20_000, "{} too large", w.name());
            assert!(w.thread_count() >= 256, "{} too small", w.name());
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        by_name("nope", Scale::Fast);
    }
}
