//! Cloth physics (CL / CLto): spring-constraint relaxation over the edges
//! of a particle grid.
//!
//! Each thread owns a batch of edges; relaxing an edge moves "mass" between
//! its two endpoint particles (the real kernel moves positions along the
//! spring direction — what matters architecturally is the read-modify-write
//! of two shared particles per edge). Edges sharing a particle contend.
//!
//! The `CLto` variant is the paper's transaction-optimized version: the
//! expensive force computation is hoisted *out* of the transaction, so the
//! transaction holds its footprint for far fewer cycles.
//!
//! Checker: the total "mass" across particles is conserved (each relaxation
//! is a balanced transfer).

use crate::{Region, SyncMode, Workload};
use fglock::{LockAcquirer, LockPhase};
use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};

const PARTICLES: Region = Region::new(0x6000_0000, 8);
const LOCKS: Region = Region::new(0x7000_0000, 8);

/// Initial per-particle "mass".
pub const INITIAL_MASS: u64 = 1 << 20;

/// The cloth benchmark; `optimized` selects CLto.
#[derive(Debug, Clone)]
pub struct Cloth {
    rows: u64,
    cols: u64,
    iterations: usize,
    optimized: bool,
}

impl Cloth {
    /// A cloth grid of `rows x cols` particles relaxed for `iterations`
    /// sweeps. `optimized` selects the CLto variant.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate.
    pub fn new(rows: u64, cols: u64, iterations: usize, optimized: bool) -> Self {
        assert!(rows >= 2 && cols >= 2 && iterations >= 1);
        Cloth {
            rows,
            cols,
            iterations,
            optimized,
        }
    }

    /// CL: force computation inside the transaction.
    pub fn cl(rows: u64, cols: u64, iterations: usize) -> Self {
        Cloth::new(rows, cols, iterations, false)
    }

    /// CLto: force computation hoisted out of the transaction.
    pub fn clto(rows: u64, cols: u64, iterations: usize) -> Self {
        Cloth::new(rows, cols, iterations, true)
    }

    fn particles(&self) -> u64 {
        self.rows * self.cols
    }

    /// Structural edges: right and down neighbours of each particle.
    fn edges(&self) -> Vec<(u64, u64)> {
        let mut e = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let p = r * self.cols + c;
                if c + 1 < self.cols {
                    e.push((p, p + 1));
                }
                if r + 1 < self.rows {
                    e.push((p, p + self.cols));
                }
            }
        }
        e
    }
}

impl Workload for Cloth {
    fn name(&self) -> &str {
        if self.optimized {
            "CLto"
        } else {
            "CL"
        }
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        (0..self.particles())
            .map(|i| (PARTICLES.at(i), INITIAL_MASS))
            .collect()
    }

    fn thread_count(&self) -> usize {
        self.edges().len()
    }

    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram {
        let (a, b) = self.edges()[tid];
        match mode {
            SyncMode::Tm => Box::new(TmEdge {
                a,
                b,
                iterations: self.iterations,
                optimized: self.optimized,
                iter: 0,
                step: 0,
                mass_a: 0,
                pending_store_a: None,
            }),
            SyncMode::FgLock => Box::new(LockEdge {
                a,
                b,
                iterations: self.iterations,
                iter: 0,
                step: 0,
                mass_a: 0,
                acquirer: None,
            }),
        }
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        let expected = self.particles() * INITIAL_MASS;
        let total: u64 = (0..self.particles()).map(|i| mem(PARTICLES.at(i))).sum();
        if total != expected {
            return Err(format!("mass not conserved: {total} != {expected}"));
        }
        Ok(())
    }
}

/// The relaxation step: move an eighth of the imbalance from the heavier
/// endpoint to the lighter one.
fn relax(ma: u64, mb: u64) -> (u64, u64) {
    if ma >= mb {
        let d = (ma - mb) / 8;
        (ma - d, mb + d)
    } else {
        let d = (mb - ma) / 8;
        (ma + d, mb - d)
    }
}

/// Cycles of force computation per edge relaxation.
const FORCE_COMPUTE: u32 = 24;

#[derive(Debug)]
struct TmEdge {
    a: u64,
    b: u64,
    iterations: usize,
    optimized: bool,
    iter: usize,
    step: u8,
    mass_a: u64,
    /// CL only: the source's new mass staged while the in-transaction
    /// force computation runs.
    pending_store_a: Option<u64>,
}

impl ThreadProgram for TmEdge {
    fn next(&mut self, prev: OpResult) -> Op {
        if self.iter >= self.iterations {
            return Op::Done;
        }
        // CLto hoists the force computation before the transaction; CL pays
        // for it inside, holding its footprint longer.
        let op = match (self.step, self.optimized) {
            (0, true) => Op::Compute(FORCE_COMPUTE),
            (0, false) => Op::Compute(2),
            (1, _) => Op::TxBegin,
            (2, _) => Op::TxLoad(PARTICLES.at(self.a)),
            (3, _) => {
                self.mass_a = prev.value();
                Op::TxLoad(PARTICLES.at(self.b))
            }
            (4, true) => {
                let (na, _) = relax(self.mass_a, prev.value());
                self.mass_a = relax_partner(self.mass_a, prev.value());
                Op::TxStore(PARTICLES.at(self.a), na)
            }
            (4, false) => {
                // CL: the force computation happens inside the transaction,
                // so the stores are staged and a Compute op issues first.
                let mb = prev.value();
                let (na, nb) = relax(self.mass_a, mb);
                self.mass_a = nb;
                self.pending_store_a = Some(na);
                Op::Compute(FORCE_COMPUTE)
            }
            (5, true) => Op::TxStore(PARTICLES.at(self.b), self.mass_a),
            (5, false) => Op::TxStore(
                PARTICLES.at(self.a),
                self.pending_store_a.take().expect("staged at step 4"),
            ),
            (6, true) => Op::TxCommit,
            (6, false) => Op::TxStore(PARTICLES.at(self.b), self.mass_a),
            (7, false) => Op::TxCommit,
            _ => {
                self.iter += 1;
                self.step = 0;
                return self.next(OpResult::None);
            }
        };
        self.step += 1;
        op
    }

    fn rollback(&mut self) {
        self.step = 2;
        self.pending_store_a = None;
    }
}

/// New mass of the partner endpoint after relaxation.
fn relax_partner(ma: u64, mb: u64) -> u64 {
    relax(ma, mb).1
}

#[derive(Debug)]
struct LockEdge {
    a: u64,
    b: u64,
    iterations: usize,
    iter: usize,
    step: u8,
    mass_a: u64,
    acquirer: Option<LockAcquirer>,
}

impl ThreadProgram for LockEdge {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            if self.iter >= self.iterations {
                return Op::Done;
            }
            match self.step {
                0 => {
                    self.acquirer = Some(LockAcquirer::new_salted(
                        vec![LOCKS.at(self.a), LOCKS.at(self.b)],
                        self.a * 131 + self.b,
                    ));
                    self.step = 1;
                    return Op::Compute(FORCE_COMPUTE);
                }
                1 => match self.acquirer.as_mut().expect("set in step 0").step(prev) {
                    LockPhase::Issue(op) => return op,
                    LockPhase::Acquired => {
                        self.step = 2;
                        continue;
                    }
                    LockPhase::Released => unreachable!(),
                },
                2 => {
                    self.step = 3;
                    return Op::Load(PARTICLES.at(self.a));
                }
                3 => {
                    self.mass_a = prev.value();
                    self.step = 4;
                    return Op::Load(PARTICLES.at(self.b));
                }
                4 => {
                    let (na, nb) = relax(self.mass_a, prev.value());
                    self.mass_a = nb;
                    self.step = 5;
                    return Op::Store(PARTICLES.at(self.a), na);
                }
                5 => {
                    self.step = 6;
                    return Op::Store(PARTICLES.at(self.b), self.mass_a);
                }
                6 => {
                    self.acquirer.as_mut().expect("held").begin_release();
                    self.step = 7;
                    continue;
                }
                7 => match self.acquirer.as_mut().expect("releasing").step(prev) {
                    LockPhase::Issue(op) => return op,
                    LockPhase::Released => {
                        self.iter += 1;
                        self.step = 0;
                        continue;
                    }
                    LockPhase::Acquired => unreachable!(),
                },
                _ => unreachable!(),
            }
        }
    }

    fn rollback(&mut self) {
        unreachable!("lock programs never run transactions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_workload_round_robin, run_workload_sequential};

    #[test]
    fn cl_tm_conserves_mass() {
        run_workload_sequential(&Cloth::cl(4, 5, 2), SyncMode::Tm);
    }

    #[test]
    fn clto_tm_conserves_mass() {
        run_workload_sequential(&Cloth::clto(4, 5, 2), SyncMode::Tm);
    }

    #[test]
    fn lock_conserves_mass() {
        run_workload_sequential(&Cloth::cl(4, 5, 2), SyncMode::FgLock);
    }

    #[test]
    fn round_robin_interleavings() {
        run_workload_round_robin(&Cloth::cl(3, 4, 2), SyncMode::Tm);
        run_workload_round_robin(&Cloth::clto(3, 4, 2), SyncMode::Tm);
        run_workload_round_robin(&Cloth::cl(3, 4, 2), SyncMode::FgLock);
    }

    #[test]
    fn edge_structure() {
        let c = Cloth::cl(3, 3, 1);
        let edges = c.edges();
        // 3x3 grid: 6 horizontal + 6 vertical edges.
        assert_eq!(edges.len(), 12);
        assert_eq!(c.thread_count(), 12);
        // Every edge touches adjacent particles.
        for (a, b) in edges {
            assert!(b == a + 1 || b == a + 3);
        }
    }

    #[test]
    fn relax_is_balanced() {
        for (ma, mb) in [(100u64, 50u64), (50, 100), (77, 77), (0, 64)] {
            let (na, nb) = relax(ma, mb);
            assert_eq!(na + nb, ma + mb);
            // Relaxation shrinks the imbalance.
            assert!(na.abs_diff(nb) <= ma.abs_diff(mb));
        }
    }

    #[test]
    fn names() {
        assert_eq!(Cloth::cl(2, 2, 1).name(), "CL");
        assert_eq!(Cloth::clto(2, 2, 1).name(), "CLto");
    }
}
