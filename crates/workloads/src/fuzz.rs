//! Randomized transaction-history workloads for the verification oracle.
//!
//! Unlike the paper benchmarks (which model real GPU kernels), these
//! workloads exist to stress the *protocols*: each [`FuzzShape`] encodes an
//! adversarial access pattern — a single white-hot cell, overlapping lock
//! sets that trigger GETM's timestamp-ordered lock stealing, transactional
//! readers aliasing non-transactional atomic writers, or a wide scatter of
//! low-contention cells. Plans are generated deterministically from a seed,
//! so a failing case replays exactly.
//!
//! Every generated plan is *checkable two ways*: the workload's own
//! [`Workload::check`] verifies final-state arithmetic (delta sums on
//! read-modify-write cells, membership on blind-store cells, last-writer
//! on private cells), and the full history can be certified for
//! serializability and opacity via `gputm`'s verified runs (`RunOptions::verify`).
//!
//! Mixed tx/non-tx aliasing is deliberately one-sided: transactions that
//! read atomically-updated cells are read-only observers. The modeled
//! hardware (like the paper's) leaves concurrent non-transactional *writes*
//! to transactional working sets unordered, so a plan mixing them would be
//! genuinely — and uninterestingly — non-serializable.

use crate::txprog::{MemSpan, TxProgram};
use crate::{Region, SyncMode, Workload};
use fglock::{LockAcquirer, LockPhase};
use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};
use sim_core::DetRng;
use std::collections::HashMap;

/// Cells mutated only inside transactions (read-modify-write traffic).
const RMW: Region = Region::new(0x7000_0000, 8);
/// Cells mutated only by non-transactional atomics; transactions may read
/// them in read-only observer transactions.
const ATOMIC: Region = Region::new(0x7100_0000, 8);
/// Cells blind-stored from inside transactions (no read before write).
const STORE: Region = Region::new(0x7200_0000, 8);
/// One private cell per thread, written with plain stores.
const PRIV: Region = Region::new(0x7300_0000, 8);
/// Lock words for the FGLock variant, one per data cell.
const LOCK_SHIFT: u64 = 0x0800_0000;

/// Initial value of RMW cell `i` is `RMW_INIT + i` (nonzero, so reads of
/// untouched memory exercise the checker's INITIAL-version path).
const RMW_INIT: u64 = 1_000;
const ATOMIC_INIT: u64 = 5_000;
const STORE_INIT: u64 = 9_000;

/// The adversarial access pattern a [`Fuzz`] plan is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzShape {
    /// Every transaction hammers one or two cells: maximal conflict rate,
    /// deep abort/retry and stall-buffer chains.
    SingleCell,
    /// Long transactions with heavily overlapping read/write sets over a
    /// four-cell table: the pattern that drives GETM's timestamp-ordered
    /// lock stealing hardest.
    LockSteal,
    /// Transactions, read-only observer transactions over atomically
    /// updated cells, plain stores, and atomics interleaved through the
    /// same partitions.
    MixedAliasing,
    /// Many cells, low contention, mixed op types: volume rather than
    /// conflicts.
    Scatter,
    /// Designed near-livelock: every transaction read-modify-writes the
    /// same two cells, with the access *order* flipped by thread parity
    /// (AB vs. BA crossfire). This is the canonical mutual-kill pattern —
    /// the workload the forward-progress watchdog exists for.
    Livelock,
}

impl FuzzShape {
    /// All shapes, in definition order.
    pub const ALL: [FuzzShape; 5] = [
        FuzzShape::SingleCell,
        FuzzShape::LockSteal,
        FuzzShape::MixedAliasing,
        FuzzShape::Scatter,
        FuzzShape::Livelock,
    ];

    /// A short name, used in workload labels and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FuzzShape::SingleCell => "single-cell",
            FuzzShape::LockSteal => "lock-steal",
            FuzzShape::MixedAliasing => "mixed-aliasing",
            FuzzShape::Scatter => "scatter",
            FuzzShape::Livelock => "livelock",
        }
    }
}

impl std::fmt::Display for FuzzShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FuzzShape {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FuzzShape::ALL
            .into_iter()
            .find(|sh| sh.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                let names: Vec<_> = FuzzShape::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown fuzz shape {s:?} (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

/// One micro-operation of a compiled plan.
///
/// `StoreDelta` always immediately follows a `Load` of the same address;
/// the state machines use the load's result (the previous op's value) to
/// compute the stored value, which is how the plan expresses genuine
/// read-modify-write dataflow that `gpu_simt::ScriptProgram` cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Micro {
    Load(Addr),
    /// Store `loaded + delta` to `addr` (the preceding micro is its load).
    StoreDelta {
        addr: Addr,
        delta: u64,
    },
    Store {
        addr: Addr,
        value: u64,
    },
}

/// One step of a thread's plan.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// A transaction over the listed micro-ops.
    Tx(Vec<Micro>),
    /// A non-transactional atomic add.
    AtomicAdd { addr: Addr, delta: u64 },
    /// A plain (non-transactional) store.
    PlainStore { addr: Addr, value: u64 },
    /// A plain load (result discarded; mixed-traffic noise).
    PlainLoad(Addr),
    /// Busy work.
    Compute(u32),
}

/// A deterministic adversarial workload for the verification oracle.
#[derive(Debug, Clone)]
pub struct Fuzz {
    shape: FuzzShape,
    threads: usize,
    txns_per_thread: usize,
    seed: u64,
    name: String,
}

impl Fuzz {
    /// A fuzz workload: `threads` threads each running `txns_per_thread`
    /// transactions drawn from `shape`'s distribution under `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless there is at least one thread and one transaction.
    pub fn new(shape: FuzzShape, threads: usize, txns_per_thread: usize, seed: u64) -> Self {
        assert!(threads >= 1 && txns_per_thread >= 1);
        Fuzz {
            shape,
            threads,
            txns_per_thread,
            seed,
            name: format!("fuzz-{}", shape.name()),
        }
    }

    /// The shape this plan was drawn from.
    pub fn shape(&self) -> FuzzShape {
        self.shape
    }

    /// This plan as a backend-neutral [`TxProgram`]: the RMW/atomic/store
    /// regions the shape uses plus one private cell per thread.
    pub fn tx_program(&self) -> TxProgram {
        let mut spans = vec![MemSpan::of_region(RMW, self.rmw_cells())];
        if self.atomic_cells() > 0 {
            spans.push(MemSpan::of_region(ATOMIC, self.atomic_cells()));
        }
        if self.store_cells() > 0 {
            spans.push(MemSpan::of_region(STORE, self.store_cells()));
        }
        spans.push(MemSpan::of_region(PRIV, self.threads as u64));
        TxProgram::new(Box::new(self.clone()), spans)
    }

    fn rmw_cells(&self) -> u64 {
        match self.shape {
            FuzzShape::SingleCell => 2,
            FuzzShape::LockSteal => 4,
            FuzzShape::MixedAliasing => 4,
            FuzzShape::Scatter => (self.threads as u64 / 2).max(16),
            FuzzShape::Livelock => 2,
        }
    }

    fn atomic_cells(&self) -> u64 {
        match self.shape {
            FuzzShape::MixedAliasing => 4,
            _ => 0,
        }
    }

    fn store_cells(&self) -> u64 {
        match self.shape {
            FuzzShape::MixedAliasing => 4,
            FuzzShape::Scatter => 8,
            _ => 0,
        }
    }

    /// A tagged, plan-unique blind-store value (never collides with any
    /// cell's initial value).
    fn store_tag(tid: usize, t: usize) -> u64 {
        0x1000_0000 | ((tid as u64) << 12) | t as u64
    }

    /// Thread `tid`'s full deterministic plan.
    ///
    /// The engine executes warps in SIMT lockstep: a warp-level
    /// transaction region opens and closes for all lanes together, so
    /// every thread's plan must have the *same control-flow structure*
    /// (step kinds, transaction lengths, op kinds). Structural choices
    /// therefore come from a thread-independent stream (`srng`, forked per
    /// step index) while addresses, deltas, and values come from a
    /// per-thread stream (`drng`) — exactly how a data-dependent GPU
    /// kernel diverges.
    fn plan(&self, tid: usize) -> Vec<Step> {
        let root = DetRng::seeded(self.seed ^ 0xF0_55).fork(self.shape as u64);
        let mut steps = Vec::new();
        for t in 0..self.txns_per_thread {
            let mut srng = root.fork(1).fork(t as u64);
            let mut drng = root.fork(2).fork(tid as u64).fork(t as u64);
            match self.shape {
                FuzzShape::SingleCell => {
                    // 80% of traffic on cell 0; one or two RMWs per txn.
                    let mut ops = Vec::new();
                    for _ in 0..1 + srng.below(2) {
                        let c = if drng.below(10) < 8 { 0 } else { 1 };
                        let a = RMW.at(c);
                        ops.push(Micro::Load(a));
                        ops.push(Micro::StoreDelta {
                            addr: a,
                            delta: 1 + drng.below(8),
                        });
                    }
                    steps.push(Step::Tx(ops));
                }
                FuzzShape::LockSteal => {
                    // Read all four cells in a random rotation, then RMW
                    // two distinct ones: long hold times, full overlap.
                    let n = self.rmw_cells();
                    let rot = drng.below(n);
                    let mut ops: Vec<Micro> =
                        (0..n).map(|k| Micro::Load(RMW.at((rot + k) % n))).collect();
                    let w1 = drng.below(n);
                    let w2 = (w1 + 1 + drng.below(n - 1)) % n;
                    for c in [w1, w2] {
                        let a = RMW.at(c);
                        ops.push(Micro::Load(a));
                        ops.push(Micro::StoreDelta {
                            addr: a,
                            delta: 1 + drng.below(4),
                        });
                    }
                    steps.push(Step::Tx(ops));
                }
                FuzzShape::MixedAliasing => {
                    match srng.below(4) {
                        // A read-only observer transaction over one
                        // atomically updated cell.
                        0 => steps.push(Step::Tx(vec![Micro::Load(
                            ATOMIC.at(drng.below(self.atomic_cells())),
                        )])),
                        // A plain RMW transaction, sometimes blind-storing.
                        _ => {
                            let mut ops = Vec::new();
                            for _ in 0..1 + srng.below(2) {
                                let a = RMW.at(drng.below(self.rmw_cells()));
                                ops.push(Micro::Load(a));
                                ops.push(Micro::StoreDelta {
                                    addr: a,
                                    delta: 1 + drng.below(6),
                                });
                            }
                            if srng.below(2) == 0 {
                                ops.push(Micro::Store {
                                    addr: STORE.at(drng.below(self.store_cells())),
                                    value: Self::store_tag(tid, t),
                                });
                            }
                            steps.push(Step::Tx(ops));
                        }
                    }
                    // Non-transactional traffic between transactions.
                    if srng.below(2) == 0 {
                        steps.push(Step::AtomicAdd {
                            addr: ATOMIC.at(drng.below(self.atomic_cells())),
                            delta: 1 + drng.below(5),
                        });
                    }
                    if srng.below(3) == 0 {
                        steps.push(Step::PlainLoad(RMW.at(drng.below(self.rmw_cells()))));
                    }
                }
                FuzzShape::Scatter => {
                    let n = self.rmw_cells();
                    let mut ops = Vec::new();
                    let c1 = drng.below(n);
                    let mut cells = vec![c1];
                    if srng.below(2) == 0 {
                        cells.push((c1 + 1 + drng.below(n - 1)) % n);
                    }
                    for c in cells {
                        let a = RMW.at(c);
                        ops.push(Micro::Load(a));
                        ops.push(Micro::StoreDelta {
                            addr: a,
                            delta: 1 + drng.below(16),
                        });
                    }
                    if srng.below(3) == 0 {
                        ops.push(Micro::Store {
                            addr: STORE.at(drng.below(self.store_cells())),
                            value: Self::store_tag(tid, t),
                        });
                    }
                    steps.push(Step::Tx(ops));
                }
                FuzzShape::Livelock => {
                    // Both cells, every transaction, access order flipped
                    // by thread parity: even threads RMW A then B, odd
                    // threads B then A. Every pair of opposite-parity
                    // transactions conflicts twice per attempt, in both
                    // directions — maximal mutual-kill pressure. The
                    // structure (LDLD) is parity-independent, so plans stay
                    // warp-uniform; only addresses and deltas diverge.
                    let n = self.rmw_cells();
                    let flip = tid as u64 % 2;
                    let mut ops = Vec::new();
                    for k in 0..n {
                        let a = RMW.at((k + flip * (n - 1)) % n);
                        ops.push(Micro::Load(a));
                        ops.push(Micro::StoreDelta {
                            addr: a,
                            delta: 1 + drng.below(4),
                        });
                    }
                    steps.push(Step::Tx(ops));
                }
            }
            if srng.below(3) == 0 {
                steps.push(Step::Compute(1 + srng.next_u32() % 4));
            }
        }
        // Every thread signs off in its private cell with a plain store.
        steps.push(Step::PlainStore {
            addr: PRIV.at(tid as u64),
            value: 0xC0DE_0000 | tid as u64,
        });
        steps
    }
}

impl Workload for Fuzz {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        let mut mem = Vec::new();
        for i in 0..self.rmw_cells() {
            mem.push((RMW.at(i), RMW_INIT + i));
        }
        for i in 0..self.atomic_cells() {
            mem.push((ATOMIC.at(i), ATOMIC_INIT + i));
        }
        for i in 0..self.store_cells() {
            mem.push((STORE.at(i), STORE_INIT + i));
        }
        for t in 0..self.threads as u64 {
            mem.push((PRIV.at(t), 0));
        }
        mem
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram {
        let steps = self.plan(tid);
        match mode {
            SyncMode::Tm => Box::new(TmFuzzThread {
                steps,
                i: 0,
                j: 0,
                begun: false,
            }),
            SyncMode::FgLock => Box::new(LockFuzzThread {
                steps,
                i: 0,
                j: 0,
                acquirer: None,
                salt: tid as u64,
            }),
        }
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        // Replay every thread's plan symbolically: each planned
        // transaction commits exactly once, each atomic applies exactly
        // once, so delta sums and store sets are exact.
        let mut rmw_sum: HashMap<u64, u64> = HashMap::new();
        let mut atomic_sum: HashMap<u64, u64> = HashMap::new();
        let mut stored: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut priv_last: HashMap<u64, u64> = HashMap::new();
        for tid in 0..self.threads {
            for step in self.plan(tid) {
                match step {
                    Step::Tx(ops) => {
                        for op in ops {
                            match op {
                                Micro::StoreDelta { addr, delta } => {
                                    *rmw_sum.entry(addr.0).or_default() += delta;
                                }
                                Micro::Store { addr, value } => {
                                    stored.entry(addr.0).or_default().push(value);
                                }
                                Micro::Load(_) => {}
                            }
                        }
                    }
                    Step::AtomicAdd { addr, delta } => {
                        *atomic_sum.entry(addr.0).or_default() += delta;
                    }
                    Step::PlainStore { addr, value } => {
                        priv_last.insert(addr.0, value);
                    }
                    Step::PlainLoad(_) | Step::Compute(_) => {}
                }
            }
        }
        for i in 0..self.rmw_cells() {
            let a = RMW.at(i);
            let expect = RMW_INIT + i + rmw_sum.get(&a.0).copied().unwrap_or(0);
            let got = mem(a);
            if got != expect {
                return Err(format!("rmw cell {i}: {got} != expected {expect}"));
            }
        }
        for i in 0..self.atomic_cells() {
            let a = ATOMIC.at(i);
            let expect = ATOMIC_INIT + i + atomic_sum.get(&a.0).copied().unwrap_or(0);
            let got = mem(a);
            if got != expect {
                return Err(format!("atomic cell {i}: {got} != expected {expect}"));
            }
        }
        for i in 0..self.store_cells() {
            let a = STORE.at(i);
            let got = mem(a);
            match stored.get(&a.0) {
                Some(vals) if !vals.contains(&got) => {
                    return Err(format!("store cell {i}: {got:#x} is no planned value"));
                }
                None if got != STORE_INIT + i => {
                    return Err(format!("store cell {i} mutated with no planned store"));
                }
                _ => {}
            }
        }
        for (addr, value) in priv_last {
            let got = mem(Addr(addr));
            if got != value {
                return Err(format!("private cell {addr:#x}: {got:#x} != {value:#x}"));
            }
        }
        Ok(())
    }
}

/// TM-mode interpreter: wraps each [`Step::Tx`] in `TxBegin`/`TxCommit`
/// and replays the micro-ops, recomputing `StoreDelta` values from the
/// immediately preceding load on every (re-)execution.
#[derive(Debug)]
struct TmFuzzThread {
    steps: Vec<Step>,
    /// Current step.
    i: usize,
    /// Micro-op index within a `Step::Tx`; `steps[i].ops.len()` means the
    /// commit is next.
    j: usize,
    /// Whether `TxBegin` has been issued for the current transaction.
    begun: bool,
}

impl ThreadProgram for TmFuzzThread {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            let Some(step) = self.steps.get(self.i) else {
                return Op::Done;
            };
            match step {
                Step::Tx(ops) => {
                    if !self.begun {
                        self.begun = true;
                        return Op::TxBegin;
                    }
                    if self.j == ops.len() {
                        // Issue the commit but only advance on the *next*
                        // call: a failed commit rolls back into this same
                        // transaction.
                        self.j += 1;
                        return Op::TxCommit;
                    }
                    if self.j > ops.len() {
                        self.i += 1;
                        self.j = 0;
                        self.begun = false;
                        continue;
                    }
                    let op = match ops[self.j] {
                        Micro::Load(a) => Op::TxLoad(a),
                        Micro::StoreDelta { addr, delta } => {
                            Op::TxStore(addr, prev.value().wrapping_add(delta))
                        }
                        Micro::Store { addr, value } => Op::TxStore(addr, value),
                    };
                    self.j += 1;
                    return op;
                }
                Step::AtomicAdd { addr, delta } => {
                    self.i += 1;
                    return Op::AtomicAdd {
                        addr: *addr,
                        delta: *delta,
                    };
                }
                Step::PlainStore { addr, value } => {
                    self.i += 1;
                    return Op::Store(*addr, *value);
                }
                Step::PlainLoad(a) => {
                    self.i += 1;
                    return Op::Load(*a);
                }
                Step::Compute(n) => {
                    self.i += 1;
                    return Op::Compute(*n);
                }
            }
        }
    }

    fn rollback(&mut self) {
        // Restart the current transaction from its first micro-op (the
        // runtime re-enters transactional mode; `begun` stays true because
        // `TxBegin` is not re-issued after an abort-and-retry).
        self.j = 0;
    }
}

/// FGLock-mode interpreter: each planned transaction takes the locks of
/// its write-set cells in ascending address order, runs the micro-ops as
/// plain loads/stores, and releases.
#[derive(Debug)]
struct LockFuzzThread {
    steps: Vec<Step>,
    i: usize,
    /// `0` = acquiring, `1..=ops.len()` = running op `j-1`'s successor,
    /// `ops.len()+1` = releasing.
    j: usize,
    acquirer: Option<LockAcquirer>,
    salt: u64,
}

impl ThreadProgram for LockFuzzThread {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            let Some(step) = self.steps.get(self.i) else {
                return Op::Done;
            };
            match step {
                Step::Tx(ops) => {
                    if self.j == 0 {
                        if self.acquirer.is_none() {
                            let locks: Vec<Addr> = ops
                                .iter()
                                .filter_map(|m| match m {
                                    Micro::StoreDelta { addr, .. } | Micro::Store { addr, .. } => {
                                        Some(Addr(addr.0 + LOCK_SHIFT))
                                    }
                                    Micro::Load(_) => None,
                                })
                                .collect();
                            if locks.is_empty() {
                                // A read-only observer: no locks needed.
                                self.j = 1;
                                continue;
                            }
                            self.acquirer = Some(LockAcquirer::new_salted(locks, self.salt));
                        }
                        match self.acquirer.as_mut().expect("just set").step(prev) {
                            LockPhase::Issue(op) => return op,
                            LockPhase::Acquired => {
                                self.j = 1;
                                continue;
                            }
                            LockPhase::Released => unreachable!(),
                        }
                    }
                    if self.j <= ops.len() {
                        let op = match ops[self.j - 1] {
                            Micro::Load(a) => Op::Load(a),
                            Micro::StoreDelta { addr, delta } => {
                                Op::Store(addr, prev.value().wrapping_add(delta))
                            }
                            Micro::Store { addr, value } => Op::Store(addr, value),
                        };
                        self.j += 1;
                        return op;
                    }
                    match self.acquirer.take() {
                        // A lock-free observer transaction: just advance.
                        None => {
                            self.i += 1;
                            self.j = 0;
                            continue;
                        }
                        Some(mut acq) => {
                            if acq.is_held() {
                                acq.begin_release();
                            }
                            match acq.step(prev) {
                                LockPhase::Issue(op) => {
                                    self.acquirer = Some(acq);
                                    return op;
                                }
                                LockPhase::Released => {
                                    self.i += 1;
                                    self.j = 0;
                                    continue;
                                }
                                LockPhase::Acquired => unreachable!(),
                            }
                        }
                    }
                }
                Step::AtomicAdd { addr, delta } => {
                    self.i += 1;
                    return Op::AtomicAdd {
                        addr: *addr,
                        delta: *delta,
                    };
                }
                Step::PlainStore { addr, value } => {
                    self.i += 1;
                    return Op::Store(*addr, *value);
                }
                Step::PlainLoad(a) => {
                    self.i += 1;
                    return Op::Load(*a);
                }
                Step::Compute(n) => {
                    self.i += 1;
                    return Op::Compute(*n);
                }
            }
        }
    }

    fn rollback(&mut self) {
        unreachable!("lock programs never run transactions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_workload_round_robin, run_workload_sequential};

    #[test]
    fn plans_are_deterministic() {
        let a = Fuzz::new(FuzzShape::LockSteal, 8, 4, 7);
        let b = Fuzz::new(FuzzShape::LockSteal, 8, 4, 7);
        for tid in 0..8 {
            assert_eq!(a.plan(tid), b.plan(tid));
        }
        let c = Fuzz::new(FuzzShape::LockSteal, 8, 4, 8);
        assert!((0..8).any(|tid| a.plan(tid) != c.plan(tid)));
    }

    #[test]
    fn store_delta_always_follows_its_load() {
        for shape in FuzzShape::ALL {
            let w = Fuzz::new(shape, 16, 6, 3);
            for tid in 0..16 {
                for step in w.plan(tid) {
                    let Step::Tx(ops) = step else { continue };
                    for (k, op) in ops.iter().enumerate() {
                        if let Micro::StoreDelta { addr, .. } = op {
                            assert_eq!(
                                ops.get(k.wrapping_sub(1)),
                                Some(&Micro::Load(*addr)),
                                "dangling StoreDelta in {shape}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// SIMT lockstep requires every thread's plan to share one control-flow
    /// structure (step kinds, tx lengths, op kinds); only addresses and
    /// values may diverge.
    #[test]
    fn plans_are_structurally_warp_uniform() {
        fn structure(steps: &[Step]) -> Vec<String> {
            steps
                .iter()
                .map(|s| match s {
                    Step::Tx(ops) => format!(
                        "tx:{}",
                        ops.iter()
                            .map(|m| match m {
                                Micro::Load(_) => 'L',
                                Micro::StoreDelta { .. } => 'D',
                                Micro::Store { .. } => 'S',
                            })
                            .collect::<String>()
                    ),
                    Step::AtomicAdd { .. } => "atomic".into(),
                    Step::PlainStore { .. } => "pstore".into(),
                    Step::PlainLoad(_) => "pload".into(),
                    Step::Compute(n) => format!("compute:{n}"),
                })
                .collect()
        }
        for shape in FuzzShape::ALL {
            let w = Fuzz::new(shape, 32, 5, 13);
            let reference = structure(&w.plan(0));
            for tid in 1..32 {
                assert_eq!(structure(&w.plan(tid)), reference, "{shape} tid {tid}");
            }
        }
    }

    #[test]
    fn every_shape_passes_sequentially() {
        for shape in FuzzShape::ALL {
            let w = Fuzz::new(shape, 12, 3, 5);
            run_workload_sequential(&w, SyncMode::Tm);
            run_workload_sequential(&w, SyncMode::FgLock);
        }
    }

    #[test]
    fn every_shape_passes_round_robin() {
        for shape in FuzzShape::ALL {
            let w = Fuzz::new(shape, 8, 2, 9);
            run_workload_round_robin(&w, SyncMode::Tm);
            run_workload_round_robin(&w, SyncMode::FgLock);
        }
    }

    #[test]
    fn checker_detects_a_lost_delta() {
        let w = Fuzz::new(FuzzShape::SingleCell, 8, 2, 1);
        let mut mem = run_workload_sequential(&w, SyncMode::Tm);
        let v = mem.read(RMW.at(0));
        mem.write(RMW.at(0), v - 1);
        assert!(w.check(&mem.reader()).is_err());
    }

    #[test]
    fn shape_names_round_trip() {
        for shape in FuzzShape::ALL {
            assert_eq!(shape.name().parse::<FuzzShape>(), Ok(shape));
        }
        assert!("nope".parse::<FuzzShape>().is_err());
    }
}
