//! ATM: parallel funds transfers (the paper's bank-account benchmark and
//! its Fig. 1 running example).
//!
//! Each thread performs a number of transfers between two random accounts:
//! read both balances, subtract from the source, add to the destination.
//! The FGLock variant takes both account locks in ascending order, exactly
//! as Fig. 1 does.
//!
//! Checker: the total balance across all accounts is conserved and no
//! balance exceeds the total (sanity against lost/duplicated updates).

use crate::txprog::{MemSpan, TxProgram};
use crate::{Region, SyncMode, Workload};
use fglock::{LockAcquirer, LockPhase};
use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};
use sim_core::DetRng;

const ACCOUNTS: Region = Region::new(0x4000_0000, 8);
const LOCKS: Region = Region::new(0x5000_0000, 8);

/// Initial balance of each account.
pub const INITIAL_BALANCE: u64 = 1000;

/// The ATM benchmark.
#[derive(Debug, Clone)]
pub struct Atm {
    accounts: u64,
    threads: usize,
    transfers_per_thread: usize,
    compute: u32,
    seed: u64,
}

impl Atm {
    /// Creates an ATM run over `accounts` accounts with `threads` threads
    /// each performing `transfers_per_thread` transfers.
    ///
    /// # Panics
    ///
    /// Panics unless there are at least two accounts and one thread.
    pub fn new(accounts: u64, threads: usize, transfers_per_thread: usize, seed: u64) -> Self {
        assert!(accounts >= 2 && threads >= 1 && transfers_per_thread >= 1);
        Atm {
            accounts,
            threads,
            transfers_per_thread,
            compute: 4,
            seed,
        }
    }

    /// The (src, dst, amount) of thread `tid`'s transfer `k`.
    fn transfer(&self, tid: usize, k: usize) -> (u64, u64, u64) {
        let mut rng = DetRng::seeded(self.seed)
            .fork(tid as u64)
            .fork(k as u64 + 1);
        let src = rng.below(self.accounts);
        let mut dst = rng.below(self.accounts);
        if dst == src {
            dst = (dst + 1) % self.accounts;
        }
        let amount = 1 + rng.below(10);
        (src, dst, amount)
    }

    /// This benchmark as a backend-neutral [`TxProgram`]. The TM variant
    /// touches only the account balances (locks belong to FGLock).
    pub fn tx_program(&self) -> TxProgram {
        TxProgram::new(
            Box::new(self.clone()),
            vec![MemSpan::of_region(ACCOUNTS, self.accounts)],
        )
    }
}

impl Workload for Atm {
    fn name(&self) -> &str {
        "ATM"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        (0..self.accounts)
            .map(|i| (ACCOUNTS.at(i), INITIAL_BALANCE))
            .collect()
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn program(&self, tid: usize, mode: SyncMode) -> BoxedProgram {
        let transfers: Vec<(u64, u64, u64)> = (0..self.transfers_per_thread)
            .map(|k| self.transfer(tid, k))
            .collect();
        match mode {
            SyncMode::Tm => Box::new(TmTransfers {
                transfers,
                compute: self.compute,
                txn: 0,
                step: 0,
                src_balance: 0,
            }),
            SyncMode::FgLock => Box::new(LockTransfers {
                transfers,
                compute: self.compute,
                txn: 0,
                step: 0,
                src_balance: 0,
                acquirer: None,
                salt: tid as u64,
            }),
        }
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        let expected = self.accounts * INITIAL_BALANCE;
        let mut total: u64 = 0;
        for i in 0..self.accounts {
            let b = mem(ACCOUNTS.at(i));
            if b > expected {
                return Err(format!(
                    "account {i} balance {b} exceeds the total money supply"
                ));
            }
            total += b;
        }
        if total != expected {
            return Err(format!("money not conserved: {total} != {expected}"));
        }
        Ok(())
    }
}

/// TM transfers: `tx { s = load src; d = load dst; store src s-a;
/// store dst d+a }`.
#[derive(Debug)]
struct TmTransfers {
    transfers: Vec<(u64, u64, u64)>,
    compute: u32,
    txn: usize,
    step: u8,
    src_balance: u64,
}

impl ThreadProgram for TmTransfers {
    fn next(&mut self, prev: OpResult) -> Op {
        if self.txn >= self.transfers.len() {
            return Op::Done;
        }
        let (src, dst, amount) = self.transfers[self.txn];
        let op = match self.step {
            0 => Op::Compute(self.compute),
            1 => Op::TxBegin,
            2 => Op::TxLoad(ACCOUNTS.at(src)),
            3 => {
                self.src_balance = prev.value();
                Op::TxLoad(ACCOUNTS.at(dst))
            }
            4 => {
                let dst_balance = prev.value();
                // Transfers never overdraw: clamp the amount.
                let amt = amount.min(self.src_balance);
                let src_new = self.src_balance - amt;
                // Stash dst's new value for the next step.
                self.src_balance = dst_balance + amt;
                Op::TxStore(ACCOUNTS.at(src), src_new)
            }
            5 => Op::TxStore(ACCOUNTS.at(dst), self.src_balance),
            6 => Op::TxCommit,
            _ => {
                self.txn += 1;
                self.step = 0;
                return self.next(OpResult::None);
            }
        };
        self.step += 1;
        op
    }

    fn rollback(&mut self) {
        self.step = 2;
    }
}

/// FGLock transfers: both account locks in ascending order (Fig. 1).
#[derive(Debug)]
struct LockTransfers {
    transfers: Vec<(u64, u64, u64)>,
    compute: u32,
    txn: usize,
    step: u8,
    src_balance: u64,
    acquirer: Option<LockAcquirer>,
    /// Thread id, salting the lock backoff.
    salt: u64,
}

impl ThreadProgram for LockTransfers {
    fn next(&mut self, prev: OpResult) -> Op {
        loop {
            if self.txn >= self.transfers.len() {
                return Op::Done;
            }
            let (src, dst, amount) = self.transfers[self.txn];
            match self.step {
                0 => {
                    self.acquirer = Some(LockAcquirer::new_salted(
                        vec![LOCKS.at(src), LOCKS.at(dst)],
                        self.salt,
                    ));
                    self.step = 1;
                    return Op::Compute(self.compute);
                }
                1 => match self.acquirer.as_mut().expect("set in step 0").step(prev) {
                    LockPhase::Issue(op) => return op,
                    LockPhase::Acquired => {
                        self.step = 2;
                        continue;
                    }
                    LockPhase::Released => unreachable!(),
                },
                2 => {
                    self.step = 3;
                    return Op::Load(ACCOUNTS.at(src));
                }
                3 => {
                    self.src_balance = prev.value();
                    self.step = 4;
                    return Op::Load(ACCOUNTS.at(dst));
                }
                4 => {
                    let dst_balance = prev.value();
                    let amt = amount.min(self.src_balance);
                    let src_new = self.src_balance - amt;
                    self.src_balance = dst_balance + amt;
                    self.step = 5;
                    return Op::Store(ACCOUNTS.at(src), src_new);
                }
                5 => {
                    self.step = 6;
                    return Op::Store(ACCOUNTS.at(dst), self.src_balance);
                }
                6 => {
                    self.acquirer
                        .as_mut()
                        .expect("still acquiring")
                        .begin_release();
                    self.step = 7;
                    continue;
                }
                7 => match self.acquirer.as_mut().expect("releasing").step(prev) {
                    LockPhase::Issue(op) => return op,
                    LockPhase::Released => {
                        self.txn += 1;
                        self.step = 0;
                        continue;
                    }
                    LockPhase::Acquired => unreachable!(),
                },
                _ => unreachable!("invalid step"),
            }
        }
    }

    fn rollback(&mut self) {
        unreachable!("lock programs never run transactions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_workload_round_robin, run_workload_sequential};

    #[test]
    fn tm_conserves_money() {
        let w = Atm::new(64, 32, 3, 11);
        run_workload_sequential(&w, SyncMode::Tm);
    }

    #[test]
    fn lock_conserves_money() {
        let w = Atm::new(64, 32, 3, 11);
        run_workload_sequential(&w, SyncMode::FgLock);
    }

    #[test]
    fn round_robin_interleavings() {
        let w = Atm::new(16, 24, 2, 5);
        run_workload_round_robin(&w, SyncMode::Tm);
        run_workload_round_robin(&w, SyncMode::FgLock);
    }

    #[test]
    fn src_and_dst_always_differ() {
        let w = Atm::new(8, 50, 4, 2);
        for tid in 0..50 {
            for k in 0..4 {
                let (s, d, a) = w.transfer(tid, k);
                assert_ne!(s, d);
                assert!((1..=10).contains(&a));
            }
        }
    }

    #[test]
    fn checker_detects_lost_update() {
        let w = Atm::new(16, 8, 2, 3);
        let mut mem = run_workload_sequential(&w, SyncMode::Tm);
        let a0 = mem.read(ACCOUNTS.at(0));
        mem.write(ACCOUNTS.at(0), a0 + 1);
        assert!(w.check(&mem.reader()).is_err());
    }
}
