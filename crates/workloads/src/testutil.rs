//! A sequential reference interpreter for thread programs.
//!
//! Executes each thread's program to completion, one thread at a time,
//! against a flat memory image. Transactions trivially succeed (there is no
//! concurrency) but read-own-writes forwarding and abort/rollback can be
//! exercised on demand, so this doubles as (a) a validity check that each
//! workload's program logic establishes the checker's invariants, and (b) a
//! serializability oracle for the full simulator's final states.

use crate::{SyncMode, Workload};
use gpu_mem::Addr;
use gpu_simt::{Op, OpResult, ThreadProgram};
use std::collections::HashMap;

/// A flat memory image keyed by word address.
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    words: HashMap<u64, u64>,
}

impl MemImage {
    /// Creates an image from initial contents.
    pub fn from_initial(init: &[(Addr, u64)]) -> Self {
        MemImage {
            words: init.iter().map(|&(a, v)| (a.0, v)).collect(),
        }
    }

    /// Reads a word (unwritten words are zero).
    pub fn read(&self, a: Addr) -> u64 {
        self.words.get(&a.0).copied().unwrap_or(0)
    }

    /// Writes a word.
    pub fn write(&mut self, a: Addr, v: u64) {
        self.words.insert(a.0, v);
    }

    /// A closure view suitable for [`Workload::check`].
    pub fn reader(&self) -> impl Fn(Addr) -> u64 + '_ {
        move |a| self.read(a)
    }
}

/// Runs one program to completion against `mem`, applying transactional
/// writes at commit (redo-log semantics) and forwarding read-own-writes.
///
/// Returns the number of ops executed.
///
/// # Panics
///
/// Panics if the program exceeds `max_ops` operations (runaway loop) or
/// misuses the transactional interface.
pub fn run_program_sequential(
    prog: &mut dyn ThreadProgram,
    mem: &mut MemImage,
    max_ops: usize,
) -> usize {
    let mut prev = OpResult::None;
    let mut redo: Vec<(Addr, u64)> = Vec::new();
    let mut in_tx = false;
    for count in 0..max_ops {
        match prog.next(prev) {
            Op::Done => return count,
            Op::TxBegin => {
                assert!(!in_tx, "nested TxBegin");
                in_tx = true;
                redo.clear();
                prev = OpResult::None;
            }
            Op::TxCommit => {
                assert!(in_tx, "TxCommit outside transaction");
                for &(a, v) in &redo {
                    mem.write(a, v);
                }
                redo.clear();
                in_tx = false;
                prev = OpResult::None;
            }
            Op::TxLoad(a) => {
                assert!(in_tx, "TxLoad outside transaction");
                let fwd = redo.iter().rev().find(|&&(ra, _)| ra == a).map(|&(_, v)| v);
                prev = OpResult::Value(fwd.unwrap_or_else(|| mem.read(a)));
            }
            Op::TxStore(a, v) => {
                assert!(in_tx, "TxStore outside transaction");
                redo.push((a, v));
                prev = OpResult::None;
            }
            Op::Load(a) => prev = OpResult::Value(mem.read(a)),
            Op::Store(a, v) => {
                mem.write(a, v);
                prev = OpResult::None;
            }
            Op::AtomicCas { addr, expect, new } => {
                let old = mem.read(addr);
                if old == expect {
                    mem.write(addr, new);
                }
                prev = OpResult::Value(old);
            }
            Op::AtomicAdd { addr, delta } => {
                let old = mem.read(addr);
                mem.write(addr, old.wrapping_add(delta));
                prev = OpResult::Value(old);
            }
            Op::Compute(_) => prev = OpResult::None,
        }
    }
    panic!("program exceeded {max_ops} ops — runaway loop?");
}

/// Runs every thread of `workload` sequentially under `mode` and applies
/// the workload's checker to the final memory.
///
/// # Panics
///
/// Panics if the checker rejects the final state — the workload's program
/// logic and checker disagree, which is a workload bug.
pub fn run_workload_sequential(workload: &dyn Workload, mode: SyncMode) -> MemImage {
    let mut mem = MemImage::from_initial(&workload.initial_memory());
    for tid in 0..workload.thread_count() {
        let mut prog = workload.program(tid, mode);
        run_program_sequential(prog.as_mut(), &mut mem, 5_000_000);
    }
    if let Err(e) = workload.check(&mem.reader()) {
        panic!("{} sequential run failed its checker: {e}", workload.name());
    }
    mem
}

/// Like [`run_workload_sequential`] but interleaves threads round-robin,
/// one *transaction or lock-protected critical section* at a time, to shake
/// out order dependence in program logic. (Still serial: critical sections
/// never overlap.)
pub fn run_workload_round_robin(workload: &dyn Workload, mode: SyncMode) -> MemImage {
    struct Slot {
        prog: gpu_simt::BoxedProgram,
        prev: OpResult,
        done: bool,
    }
    let mut mem = MemImage::from_initial(&workload.initial_memory());
    let mut slots: Vec<Slot> = (0..workload.thread_count())
        .map(|tid| Slot {
            prog: workload.program(tid, mode),
            prev: OpResult::None,
            done: false,
        })
        .collect();
    let mut remaining = slots.len();
    let mut guard = 0usize;
    while remaining > 0 {
        guard += 1;
        assert!(guard < 100_000_000, "round-robin runaway");
        for slot in slots.iter_mut().filter(|s| !s.done) {
            // Run until this thread completes one transaction (or a chunk
            // of non-transactional ops), then yield.
            let mut redo: Vec<(Addr, u64)> = Vec::new();
            let mut in_tx = false;
            let mut ops_this_turn = 0;
            loop {
                ops_this_turn += 1;
                assert!(ops_this_turn < 5_000_000, "thread turn runaway");
                let op = slot.prog.next(slot.prev);
                match op {
                    Op::Done => {
                        slot.done = true;
                        remaining -= 1;
                        break;
                    }
                    Op::TxBegin => {
                        in_tx = true;
                        redo.clear();
                        slot.prev = OpResult::None;
                    }
                    Op::TxCommit => {
                        for &(a, v) in &redo {
                            mem.write(a, v);
                        }
                        redo.clear();
                        slot.prev = OpResult::None;
                        break; // yield after each transaction
                    }
                    Op::TxLoad(a) => {
                        let fwd = redo.iter().rev().find(|&&(ra, _)| ra == a).map(|&(_, v)| v);
                        slot.prev = OpResult::Value(fwd.unwrap_or_else(|| mem.read(a)));
                    }
                    Op::TxStore(a, v) => {
                        redo.push((a, v));
                        slot.prev = OpResult::None;
                    }
                    Op::Load(a) => slot.prev = OpResult::Value(mem.read(a)),
                    Op::Store(a, v) => {
                        mem.write(a, v);
                        slot.prev = OpResult::None;
                        // Yield at lock releases (stores outside tx).
                        if !in_tx {
                            break;
                        }
                    }
                    Op::AtomicCas { addr, expect, new } => {
                        let old = mem.read(addr);
                        if old == expect {
                            mem.write(addr, new);
                        }
                        slot.prev = OpResult::Value(old);
                        // Yield after every atomic so spin-lock contenders
                        // interleave with the lock holder instead of
                        // spinning through an entire turn.
                        break;
                    }
                    Op::AtomicAdd { addr, delta } => {
                        let old = mem.read(addr);
                        mem.write(addr, old.wrapping_add(delta));
                        slot.prev = OpResult::Value(old);
                        break;
                    }
                    Op::Compute(_) => slot.prev = OpResult::None,
                }
            }
        }
    }
    if let Err(e) = workload.check(&mem.reader()) {
        panic!(
            "{} round-robin run failed its checker: {e}",
            workload.name()
        );
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_simt::program::ScriptProgram;

    #[test]
    fn sequential_interpreter_applies_tx_at_commit() {
        let mut mem = MemImage::default();
        let mut p = ScriptProgram::new(vec![
            Op::TxBegin,
            Op::TxStore(Addr(8), 42),
            Op::TxLoad(Addr(8)), // must forward 42
            Op::TxCommit,
        ]);
        let n = run_program_sequential(&mut p, &mut mem, 100);
        assert_eq!(n, 4);
        assert_eq!(mem.read(Addr(8)), 42);
    }

    #[test]
    fn cas_semantics() {
        let mut mem = MemImage::default();
        let mut p = ScriptProgram::new(vec![
            Op::AtomicCas {
                addr: Addr(0),
                expect: 0,
                new: 7,
            },
            Op::AtomicCas {
                addr: Addr(0),
                expect: 0,
                new: 9,
            },
        ]);
        run_program_sequential(&mut p, &mut mem, 100);
        assert_eq!(mem.read(Addr(0)), 7, "second CAS must fail");
    }

    #[test]
    #[should_panic(expected = "runaway")]
    fn runaway_detection() {
        // A program that never finishes.
        struct Forever;
        impl ThreadProgram for Forever {
            fn next(&mut self, _prev: OpResult) -> Op {
                Op::Compute(1)
            }
            fn rollback(&mut self) {}
        }
        let mut mem = MemImage::default();
        run_program_sequential(&mut Forever, &mut mem, 1000);
    }
}
