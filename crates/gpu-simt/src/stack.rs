//! The transactional SIMT stack.
//!
//! Fung et al.'s mechanism (reused by both WarpTM and GETM) extends the
//! branch-divergence stack with *Transaction* and *Retry* entry types: the
//! Transaction entry's mask tracks lanes currently executing the
//! transaction; the Retry entry below it collects lanes that aborted and
//! must re-execute once the whole warp reaches the commit point.
//!
//! This module models exactly that pair of entries per open transactional
//! region (our workloads do not nest transactions, matching the paper).

/// A 64-lane-wide active mask (warps are at most 64 wide).
pub type LaneMask = u64;

/// Builds a mask with the lowest `n` lanes set.
pub fn full_mask(n: u32) -> LaneMask {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// The per-warp transactional stack state.
///
/// Life cycle per transactional region:
///
/// 1. [`TxStack::begin`] with the mask of lanes entering the transaction.
/// 2. Lanes abort via [`TxStack::abort_lane`] (moved to the retry mask) or
///    arrive at the commit point via [`TxStack::lane_at_commit`].
/// 3. When [`TxStack::warp_at_commit_point`] is true, the runtime commits
///    the surviving lanes and calls [`TxStack::finish_round`]: if any lanes
///    are waiting to retry, they become the new active mask and the
///    transaction restarts; otherwise the region is over.
#[derive(Debug, Clone, Default)]
pub struct TxStack {
    /// Lanes currently executing the transaction body.
    active: LaneMask,
    /// Lanes that aborted and await the warp-level restart.
    retry: LaneMask,
    /// Lanes that reached the commit point and await the rest of the warp.
    at_commit: LaneMask,
    /// Whether a transactional region is open.
    open: bool,
    /// How many times the current region has restarted (for stats/backoff).
    rounds: u32,
    /// Restart rounds accumulated across every region this warp ever ran.
    lifetime_rounds: u64,
}

impl TxStack {
    /// A stack with no open transaction.
    pub fn new() -> Self {
        TxStack::default()
    }

    /// Opens a transactional region for `mask` lanes.
    ///
    /// # Panics
    ///
    /// Panics if a region is already open or the mask is empty.
    pub fn begin(&mut self, mask: LaneMask) {
        assert!(!self.open, "nested transactions are not supported");
        assert!(mask != 0, "cannot begin a transaction with no lanes");
        self.active = mask;
        self.retry = 0;
        self.at_commit = 0;
        self.open = true;
        self.rounds = 0;
    }

    /// Whether a transactional region is open.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Lanes currently executing.
    pub fn active(&self) -> LaneMask {
        self.active
    }

    /// Lanes waiting to retry.
    pub fn retry_mask(&self) -> LaneMask {
        self.retry
    }

    /// Lanes parked at the commit point.
    pub fn commit_mask(&self) -> LaneMask {
        self.at_commit
    }

    /// Restart count of the current region.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Restart rounds accumulated across all regions (never reset) — the
    /// SIMT-stack retry-pressure gauge the trace layer reads.
    pub fn lifetime_rounds(&self) -> u64 {
        self.lifetime_rounds
    }

    /// Marks `lane` aborted: it stops executing and waits for the warp-level
    /// restart.
    ///
    /// # Panics
    ///
    /// Panics if the lane is not currently active.
    pub fn abort_lane(&mut self, lane: u32) {
        let bit = 1u64 << lane;
        assert!(self.active & bit != 0, "aborting a non-active lane");
        self.active &= !bit;
        self.retry |= bit;
    }

    /// Marks `lane` as having reached its commit point successfully.
    ///
    /// # Panics
    ///
    /// Panics if the lane is not currently active.
    pub fn lane_at_commit(&mut self, lane: u32) {
        let bit = 1u64 << lane;
        assert!(self.active & bit != 0, "committing a non-active lane");
        self.active &= !bit;
        self.at_commit |= bit;
    }

    /// True when no lane is still executing the body: every lane either
    /// aborted or reached the commit point, so the warp-level commit can
    /// proceed.
    pub fn warp_at_commit_point(&self) -> bool {
        self.open && self.active == 0
    }

    /// Moves lanes parked at the commit point back into the retry mask —
    /// used when a warp-level commit *fails* (WarpTM's lazy validation can
    /// reject a transaction after all its lanes reached the commit point;
    /// GETM never needs this, commits are guaranteed).
    ///
    /// # Panics
    ///
    /// Panics if any lane in `mask` is not parked at the commit point.
    pub fn fail_commit_lanes(&mut self, mask: LaneMask) {
        assert_eq!(self.at_commit & mask, mask, "lane not at commit point");
        self.at_commit &= !mask;
        self.retry |= mask;
    }

    /// Completes a commit round. Lanes in the commit mask leave the region;
    /// lanes in the retry mask become active again. Returns the mask of
    /// lanes that restart (zero means the region closed).
    ///
    /// # Panics
    ///
    /// Panics if called while some lanes are still executing.
    pub fn finish_round(&mut self) -> LaneMask {
        assert!(self.warp_at_commit_point(), "warp not at commit point");
        self.at_commit = 0;
        let restart = self.retry;
        self.retry = 0;
        if restart == 0 {
            self.open = false;
        } else {
            self.active = restart;
            self.rounds += 1;
            self.lifetime_rounds += 1;
        }
        restart
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_widths() {
        assert_eq!(full_mask(0), 0);
        assert_eq!(full_mask(1), 1);
        assert_eq!(full_mask(32), 0xFFFF_FFFF);
        assert_eq!(full_mask(64), u64::MAX);
        assert_eq!(full_mask(65), u64::MAX);
    }

    #[test]
    fn all_commit_closes_region() {
        let mut s = TxStack::new();
        s.begin(0b111);
        assert!(s.is_open());
        s.lane_at_commit(0);
        s.lane_at_commit(1);
        assert!(!s.warp_at_commit_point());
        s.lane_at_commit(2);
        assert!(s.warp_at_commit_point());
        assert_eq!(s.finish_round(), 0);
        assert!(!s.is_open());
    }

    #[test]
    fn aborted_lanes_retry() {
        let mut s = TxStack::new();
        s.begin(0b11);
        s.abort_lane(0);
        s.lane_at_commit(1);
        assert!(s.warp_at_commit_point());
        let restart = s.finish_round();
        assert_eq!(restart, 0b01);
        assert!(s.is_open());
        assert_eq!(s.active(), 0b01);
        assert_eq!(s.rounds(), 1);
        // Second round: the retried lane commits.
        s.lane_at_commit(0);
        assert_eq!(s.finish_round(), 0);
        assert!(!s.is_open());
    }

    #[test]
    fn multiple_retry_rounds() {
        let mut s = TxStack::new();
        s.begin(0b1);
        for round in 1..=3 {
            s.abort_lane(0);
            assert!(s.warp_at_commit_point());
            assert_eq!(s.finish_round(), 0b1);
            assert_eq!(s.rounds(), round);
        }
        s.lane_at_commit(0);
        assert_eq!(s.finish_round(), 0);
        assert_eq!(s.lifetime_rounds(), 3);
        // A fresh region resets per-region rounds but not the lifetime sum.
        s.begin(0b1);
        assert_eq!(s.rounds(), 0);
        assert_eq!(s.lifetime_rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_begin_panics() {
        let mut s = TxStack::new();
        s.begin(1);
        s.begin(1);
    }

    #[test]
    #[should_panic(expected = "non-active")]
    fn abort_inactive_lane_panics() {
        let mut s = TxStack::new();
        s.begin(0b1);
        s.abort_lane(1);
    }

    #[test]
    #[should_panic(expected = "not at commit point")]
    fn early_finish_panics() {
        let mut s = TxStack::new();
        s.begin(0b11);
        s.lane_at_commit(0);
        s.finish_round();
    }

    #[test]
    fn failed_commit_lanes_retry() {
        let mut s = TxStack::new();
        s.begin(0b11);
        s.lane_at_commit(0);
        s.lane_at_commit(1);
        // Warp-level validation failed: both lanes go back to retry.
        s.fail_commit_lanes(0b11);
        assert!(s.warp_at_commit_point());
        assert_eq!(s.finish_round(), 0b11);
        assert_eq!(s.active(), 0b11);
    }

    #[test]
    #[should_panic(expected = "not at commit point")]
    fn fail_commit_requires_parked_lane() {
        let mut s = TxStack::new();
        s.begin(0b11);
        s.lane_at_commit(0);
        s.fail_commit_lanes(0b10); // lane 1 never parked
    }

    #[test]
    fn mixed_commit_and_abort_masks() {
        let mut s = TxStack::new();
        s.begin(0b1111);
        s.abort_lane(1);
        s.abort_lane(3);
        s.lane_at_commit(0);
        s.lane_at_commit(2);
        assert_eq!(s.commit_mask(), 0b0101);
        assert_eq!(s.retry_mask(), 0b1010);
        assert_eq!(s.finish_round(), 0b1010);
        assert_eq!(s.active(), 0b1010);
    }
}
