//! Identifier newtypes for cores, warps, and SIMD lanes.

use std::fmt;

/// A SIMT core index within the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

/// A warp's slot index within its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpIndex(pub u32);

/// A lane (thread position) within a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LaneId(pub u32);

/// A GPU-global warp identifier.
///
/// GETM uses this as the `owner` field of write reservations: transactions
/// are coalesced per warp, so the global warp ID uniquely identifies a
/// running transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalWarpId(pub u32);

impl GlobalWarpId {
    /// Composes a global warp ID from a core and its warp slot.
    pub fn new(core: CoreId, warp: WarpIndex, warps_per_core: u32) -> Self {
        GlobalWarpId(core.0 * warps_per_core + warp.0)
    }

    /// The core this warp runs on.
    pub fn core(self, warps_per_core: u32) -> CoreId {
        CoreId(self.0 / warps_per_core)
    }

    /// The warp's slot index within its core.
    pub fn warp_index(self, warps_per_core: u32) -> WarpIndex {
        WarpIndex(self.0 % warps_per_core)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for GlobalWarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_warp_id_roundtrip() {
        let wpc = 48;
        for core in 0..15u32 {
            for w in 0..wpc {
                let gid = GlobalWarpId::new(CoreId(core), WarpIndex(w), wpc);
                assert_eq!(gid.core(wpc), CoreId(core));
                assert_eq!(gid.warp_index(wpc), WarpIndex(w));
            }
        }
    }

    #[test]
    fn global_ids_are_unique() {
        let wpc = 48;
        let mut seen = std::collections::HashSet::new();
        for core in 0..15u32 {
            for w in 0..wpc {
                assert!(seen.insert(GlobalWarpId::new(CoreId(core), WarpIndex(w), wpc)));
            }
        }
        assert_eq!(seen.len(), 15 * 48);
    }

    #[test]
    fn display() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(GlobalWarpId(12).to_string(), "w12");
    }
}
