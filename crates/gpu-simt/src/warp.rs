//! Warp and thread execution state.
//!
//! A [`Warp`] bundles up to 32 (configurable) thread slots that execute in
//! lockstep, the transactional SIMT stack, the warp's logical timestamp
//! (`warpts`, used by GETM), and its backoff state. The cycle-level engine
//! in the `gputm` facade drives these structures; this module owns the
//! invariants of the per-thread state machine.

use crate::backoff::Backoff;
use crate::log::TxLogs;
use crate::program::{BoxedProgram, Op, OpResult};
use crate::stack::TxStack;
use sim_core::Cycle;

/// The execution status of one thread slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// May fetch and issue its next op.
    Ready,
    /// Waiting for a memory or protocol response.
    Blocked,
    /// Reached `TxCommit`; waits for the rest of the warp.
    AtCommit,
    /// Aborted; waits for the warp commit point, then retries.
    Aborted,
    /// The program returned [`Op::Done`].
    Finished,
}

/// One thread slot of a warp.
pub struct ThreadSlot {
    program: BoxedProgram,
    /// Current status.
    pub status: ThreadStatus,
    /// Result to feed the program on its next fetch.
    pub pending_result: OpResult,
    /// An op that was fetched but could not issue yet (kept until issued).
    pub staged_op: Option<Op>,
    /// The thread's transaction logs.
    pub logs: TxLogs,
    /// Whether the thread is inside a transaction.
    pub in_tx: bool,
    /// Committed transactions executed by this thread.
    pub commits: u64,
    /// Aborts suffered by this thread.
    pub aborts: u64,
}

impl std::fmt::Debug for ThreadSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadSlot")
            .field("status", &self.status)
            .field("in_tx", &self.in_tx)
            .field("staged_op", &self.staged_op)
            .finish()
    }
}

impl ThreadSlot {
    /// Wraps a program in a fresh slot.
    pub fn new(program: BoxedProgram) -> Self {
        ThreadSlot {
            program,
            status: ThreadStatus::Ready,
            pending_result: OpResult::None,
            staged_op: None,
            logs: TxLogs::new(),
            in_tx: false,
            commits: 0,
            aborts: 0,
        }
    }

    /// Fetches the thread's next op, consuming the pending result. If an op
    /// is already staged (fetched but not yet issued), returns it instead.
    pub fn fetch_op(&mut self) -> Op {
        if let Some(op) = self.staged_op {
            return op;
        }
        let prev = std::mem::replace(&mut self.pending_result, OpResult::None);
        let op = self.program.next(prev);
        self.staged_op = Some(op);
        op
    }

    /// Marks the staged op as issued.
    pub fn consume_op(&mut self) {
        self.staged_op = None;
    }

    /// Rewinds the program to the transaction start and clears speculative
    /// state (logs, staged op) for a retry.
    pub fn rollback(&mut self) {
        self.program.rollback();
        self.logs.clear();
        self.staged_op = None;
        self.pending_result = OpResult::None;
    }
}

/// Warp-level status, derived from thread states plus timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpStatus {
    /// At least one thread can issue.
    Ready,
    /// Every unfinished thread is blocked / at commit / aborted, or the
    /// warp is sleeping until a future cycle.
    Stalled,
    /// All threads finished.
    Finished,
}

/// A warp: lockstep threads plus transactional state.
pub struct Warp {
    /// Thread slots (index = lane).
    pub threads: Vec<ThreadSlot>,
    /// The transactional SIMT stack.
    pub tx_stack: TxStack,
    /// GETM logical timestamp for this warp's transactions.
    pub warpts: u64,
    /// Backoff state for aborted transactions.
    pub backoff: Backoff,
    /// The warp may not issue before this cycle (compute latency, backoff).
    pub sleep_until: Cycle,
    /// Outstanding memory/protocol responses the warp is waiting for.
    pub outstanding: u32,
    /// Highest conflicting timestamp reported by aborts in the current
    /// round (GETM advances `warpts` past it on restart).
    pub abort_cause_ts: u64,
    /// Cycle at which the current transaction round began (stats).
    pub tx_round_started: Cycle,
    /// Whether this warp currently holds a slot in the core's transactional
    /// concurrency throttle.
    pub holds_tx_token: bool,
}

impl std::fmt::Debug for Warp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warp")
            .field("threads", &self.threads.len())
            .field("warpts", &self.warpts)
            .field("outstanding", &self.outstanding)
            .field("tx_open", &self.tx_stack.is_open())
            .finish()
    }
}

impl Warp {
    /// Builds a warp from per-lane programs.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty or wider than 64 lanes.
    pub fn new(programs: Vec<BoxedProgram>) -> Self {
        assert!(
            !programs.is_empty() && programs.len() <= 64,
            "a warp has 1..=64 lanes"
        );
        Warp {
            threads: programs.into_iter().map(ThreadSlot::new).collect(),
            tx_stack: TxStack::new(),
            warpts: 0,
            backoff: Backoff::paper_default(),
            sleep_until: Cycle::ZERO,
            outstanding: 0,
            abort_cause_ts: 0,
            tx_round_started: Cycle::ZERO,
            holds_tx_token: false,
        }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.threads.len()
    }

    /// Whether every thread has finished.
    pub fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.status == ThreadStatus::Finished)
    }

    /// Whether any thread is in [`ThreadStatus::Ready`].
    pub fn any_ready(&self) -> bool {
        self.threads.iter().any(|t| t.status == ThreadStatus::Ready)
    }

    /// The warp status at cycle `now`.
    ///
    /// A warp with outstanding memory responses can still issue for its
    /// *ready* lanes — divergent lanes on the other side of a branch (or a
    /// spin loop) proceed independently, exactly as the SIMT divergence
    /// stack allows. Only sleep (compute/backoff) and having no ready lane
    /// stall the whole warp.
    pub fn status(&self, now: Cycle) -> WarpStatus {
        if self.all_finished() {
            WarpStatus::Finished
        } else if now < self.sleep_until || !self.any_ready() {
            WarpStatus::Stalled
        } else {
            WarpStatus::Ready
        }
    }

    /// Whether the warp has an open transaction region.
    pub fn in_tx(&self) -> bool {
        self.tx_stack.is_open()
    }

    /// If the warp is asleep at `now` (compute latency or backoff), the
    /// cycle it wakes at. `None` for an awake warp. The engine's idle
    /// skip-ahead uses this as a hop bound: nothing about a sleeping warp
    /// changes before `sleep_until`, so cycles up to (exclusive) that point
    /// can be elided wholesale.
    pub fn sleeping_until(&self, now: Cycle) -> Option<Cycle> {
        (now < self.sleep_until).then_some(self.sleep_until)
    }

    /// Lanes that are currently `Ready`.
    pub fn ready_lanes(&self) -> Vec<u32> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == ThreadStatus::Ready)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Total commits across lanes.
    pub fn total_commits(&self) -> u64 {
        self.threads.iter().map(|t| t.commits).sum()
    }

    /// Total aborts across lanes.
    pub fn total_aborts(&self) -> u64 {
        self.threads.iter().map(|t| t.aborts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptProgram;
    use gpu_mem::Addr;

    fn warp_of(scripts: Vec<Vec<Op>>) -> Warp {
        Warp::new(
            scripts
                .into_iter()
                .map(|ops| Box::new(ScriptProgram::new(ops)) as BoxedProgram)
                .collect(),
        )
    }

    #[test]
    fn fetch_and_consume() {
        let mut w = warp_of(vec![vec![Op::Compute(2), Op::Load(Addr(8))]]);
        let t = &mut w.threads[0];
        assert_eq!(t.fetch_op(), Op::Compute(2));
        // Fetch again without consuming: same staged op.
        assert_eq!(t.fetch_op(), Op::Compute(2));
        t.consume_op();
        assert_eq!(t.fetch_op(), Op::Load(Addr(8)));
    }

    #[test]
    fn status_transitions() {
        let mut w = warp_of(vec![vec![Op::Compute(1)]]);
        assert_eq!(w.status(Cycle(0)), WarpStatus::Ready);
        w.sleep_until = Cycle(10);
        assert_eq!(w.status(Cycle(5)), WarpStatus::Stalled);
        assert_eq!(w.status(Cycle(10)), WarpStatus::Ready);
        // Outstanding responses do not stall ready lanes (divergence).
        w.outstanding = 1;
        assert_eq!(w.status(Cycle(10)), WarpStatus::Ready);
        w.outstanding = 0;
        w.threads[0].status = ThreadStatus::Finished;
        assert_eq!(w.status(Cycle(10)), WarpStatus::Finished);
        assert!(w.all_finished());
    }

    #[test]
    fn ready_lanes_lists_indices() {
        let mut w = warp_of(vec![vec![Op::Done], vec![Op::Done], vec![Op::Done]]);
        w.threads[1].status = ThreadStatus::Blocked;
        assert_eq!(w.ready_lanes(), vec![0, 2]);
    }

    #[test]
    fn rollback_clears_speculative_state() {
        let g = gpu_mem::Geometry::new(128, 32, 6);
        let mut w = warp_of(vec![vec![
            Op::TxBegin,
            Op::TxStore(Addr(0), 1),
            Op::TxCommit,
        ]]);
        let t = &mut w.threads[0];
        assert_eq!(t.fetch_op(), Op::TxBegin);
        t.consume_op();
        assert_eq!(t.fetch_op(), Op::TxStore(Addr(0), 1));
        t.consume_op();
        t.logs.record_write(Addr(0), 1, &g);
        t.rollback();
        assert!(t.logs.is_empty());
        assert_eq!(t.staged_op, None);
        // Program rewound to just after TxBegin.
        assert_eq!(t.fetch_op(), Op::TxStore(Addr(0), 1));
    }

    #[test]
    fn commit_abort_counters() {
        let mut w = warp_of(vec![vec![Op::Done], vec![Op::Done]]);
        w.threads[0].commits = 3;
        w.threads[1].commits = 2;
        w.threads[1].aborts = 5;
        assert_eq!(w.total_commits(), 5);
        assert_eq!(w.total_aborts(), 5);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn empty_warp_rejected() {
        let _ = Warp::new(vec![]);
    }
}
