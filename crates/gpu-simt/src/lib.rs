//! # gpu-simt
//!
//! The SIMT execution substrate: thread programs, warps, the transactional
//! SIMT stack, the greedy-then-oldest warp scheduler, the memory-access
//! coalescer, per-thread transaction logs, intra-warp conflict resolution,
//! and probabilistic backoff.
//!
//! The components here are protocol-agnostic mechanisms: the GETM and
//! WarpTM crates layer their conflict-detection policies on top, and the
//! `gputm` facade drives everything cycle by cycle.

#![warn(missing_docs)]

pub mod backoff;
pub mod coalesce;
pub mod ids;
pub mod log;
pub mod program;
pub mod scheduler;
pub mod stack;
pub mod warp;

pub use backoff::Backoff;
pub use coalesce::{coalesce_by_granule, CoalescedAccess};
pub use ids::{CoreId, GlobalWarpId, LaneId, WarpIndex};
pub use log::{resolve_intra_warp, LogEntry, TxLogs};
pub use program::{BoxedProgram, Op, OpResult, ThreadProgram};
pub use scheduler::GtoScheduler;
pub use stack::TxStack;
pub use warp::{ThreadSlot, ThreadStatus, Warp, WarpStatus};
