//! The thread-program abstraction.
//!
//! Workloads are expressed as one [`ThreadProgram`] per simulated thread: a
//! resumable state machine that yields one [`Op`] at a time and receives the
//! result of the previous op. This keeps workloads *operational* — a
//! hashtable insert really chases chain pointers it loaded, a Barnes-Hut
//! insert really descends the tree it built — so value-based validation and
//! data-dependent contention are exercised for real.
//!
//! Transactional semantics seen by a program:
//!
//! * Ops between [`Op::TxBegin`] and [`Op::TxCommit`] form one transaction.
//! * On abort, the runtime calls [`ThreadProgram::rollback`] and re-executes
//!   from the `TxBegin`; the program must rewind any internal state it
//!   mutated since the transaction began.
//! * Transactional loads observe the thread's own earlier transactional
//!   stores (read-own-writes), provided by the runtime's redo log.

use gpu_mem::Addr;

/// One operation issued by a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Begin a transaction.
    TxBegin,
    /// Transactional load; the next `next()` call receives the value.
    TxLoad(Addr),
    /// Transactional store of a 64-bit word.
    TxStore(Addr, u64),
    /// Commit the current transaction.
    TxCommit,
    /// Non-transactional load.
    Load(Addr),
    /// Non-transactional store.
    Store(Addr, u64),
    /// Atomic compare-and-swap executed at the LLC partition; yields the
    /// old value (swap happened iff old value equals `expect`).
    AtomicCas {
        /// Target word address.
        addr: Addr,
        /// Expected old value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
    /// Atomic add executed at the LLC partition; yields the old value.
    AtomicAdd {
        /// Target word address.
        addr: Addr,
        /// Addend.
        delta: u64,
    },
    /// Busy computation for the given number of cycles.
    Compute(u32),
    /// The thread has finished all its work.
    Done,
}

impl Op {
    /// Whether this op is a transactional memory access.
    pub fn is_tx_access(&self) -> bool {
        matches!(self, Op::TxLoad(_) | Op::TxStore(..))
    }

    /// Whether this op goes to the memory system at all.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Op::TxLoad(_)
                | Op::TxStore(..)
                | Op::Load(_)
                | Op::Store(..)
                | Op::AtomicCas { .. }
                | Op::AtomicAdd { .. }
        )
    }

    /// A coarse kind tag used by the warp-step grouper: ops of the same
    /// kind issue together in lockstep.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::TxBegin => OpKind::TxBegin,
            Op::TxLoad(_) => OpKind::TxLoad,
            Op::TxStore(..) => OpKind::TxStore,
            Op::TxCommit => OpKind::TxCommit,
            Op::Load(_) => OpKind::Load,
            Op::Store(..) => OpKind::Store,
            Op::AtomicCas { .. } | Op::AtomicAdd { .. } => OpKind::Atomic,
            Op::Compute(_) => OpKind::Compute,
            Op::Done => OpKind::Done,
        }
    }
}

/// Coarse op classification for lockstep grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpKind {
    TxBegin,
    TxLoad,
    TxStore,
    TxCommit,
    Load,
    Store,
    Atomic,
    Compute,
    Done,
}

/// The result delivered to a program before it yields its next op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// First call, or the previous op carried no result (stores, compute,
    /// begin/commit).
    None,
    /// The value produced by a load / CAS / atomic.
    Value(u64),
}

impl OpResult {
    /// Extracts the value.
    ///
    /// # Panics
    ///
    /// Panics if there is no value — a workload bug.
    pub fn value(self) -> u64 {
        match self {
            OpResult::Value(v) => v,
            OpResult::None => panic!("expected a value result"),
        }
    }
}

/// A resumable per-thread program.
pub trait ThreadProgram {
    /// Yields the next op, given the result of the previous one.
    fn next(&mut self, prev: OpResult) -> Op;

    /// Rewinds to the most recent `TxBegin` after an abort. The runtime
    /// re-issues `TxBegin` implicitly; the next `next()` call after
    /// `rollback` must yield the first op *inside* the transaction.
    fn rollback(&mut self);
}

/// A boxed program, the form the simulator stores per thread.
pub type BoxedProgram = Box<dyn ThreadProgram + Send>;

/// A trivial program that yields a fixed op sequence and rewinds to the most
/// recent `TxBegin` on rollback. Useful for tests and microbenchmarks.
#[derive(Debug, Clone)]
pub struct ScriptProgram {
    ops: Vec<Op>,
    pc: usize,
    tx_start: Option<usize>,
}

impl ScriptProgram {
    /// Creates a program from a literal op list. `Op::Done` is implicit at
    /// the end.
    pub fn new(ops: Vec<Op>) -> Self {
        ScriptProgram {
            ops,
            pc: 0,
            tx_start: None,
        }
    }
}

impl ThreadProgram for ScriptProgram {
    fn next(&mut self, _prev: OpResult) -> Op {
        let op = self.ops.get(self.pc).copied().unwrap_or(Op::Done);
        if matches!(op, Op::TxBegin) {
            // Remember the op *after* TxBegin as the rollback target.
            self.tx_start = Some(self.pc + 1);
        }
        if self.pc < self.ops.len() {
            self.pc += 1;
        }
        op
    }

    fn rollback(&mut self) {
        self.pc = self.tx_start.expect("rollback outside a transaction");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(Op::TxLoad(Addr(0)).is_tx_access());
        assert!(Op::TxStore(Addr(0), 1).is_tx_access());
        assert!(!Op::Load(Addr(0)).is_tx_access());
        assert!(Op::Load(Addr(0)).is_memory());
        assert!(Op::AtomicAdd {
            addr: Addr(0),
            delta: 1
        }
        .is_memory());
        assert!(!Op::Compute(3).is_memory());
        assert_eq!(Op::TxBegin.kind(), OpKind::TxBegin);
        assert_eq!(
            Op::AtomicCas {
                addr: Addr(0),
                expect: 0,
                new: 1
            }
            .kind(),
            OpKind::Atomic
        );
    }

    #[test]
    fn op_result_value() {
        assert_eq!(OpResult::Value(9).value(), 9);
    }

    #[test]
    #[should_panic(expected = "expected a value")]
    fn op_result_none_panics() {
        OpResult::None.value();
    }

    #[test]
    fn script_program_runs_to_done() {
        let mut p = ScriptProgram::new(vec![Op::Compute(1), Op::Load(Addr(8))]);
        assert_eq!(p.next(OpResult::None), Op::Compute(1));
        assert_eq!(p.next(OpResult::None), Op::Load(Addr(8)));
        assert_eq!(p.next(OpResult::Value(0)), Op::Done);
        assert_eq!(p.next(OpResult::None), Op::Done); // stays done
    }

    #[test]
    fn script_program_rollback_to_tx_start() {
        let mut p = ScriptProgram::new(vec![
            Op::TxBegin,
            Op::TxLoad(Addr(0)),
            Op::TxStore(Addr(0), 1),
            Op::TxCommit,
        ]);
        assert_eq!(p.next(OpResult::None), Op::TxBegin);
        assert_eq!(p.next(OpResult::None), Op::TxLoad(Addr(0)));
        p.rollback();
        // After rollback the first op inside the transaction repeats.
        assert_eq!(p.next(OpResult::None), Op::TxLoad(Addr(0)));
        assert_eq!(p.next(OpResult::Value(5)), Op::TxStore(Addr(0), 1));
        assert_eq!(p.next(OpResult::None), Op::TxCommit);
        assert_eq!(p.next(OpResult::None), Op::Done);
    }
}
