//! The greedy-then-oldest (GTO) warp scheduler.
//!
//! GTO keeps issuing from the warp it issued from last as long as that warp
//! is ready; when it stalls, the scheduler falls back to the *oldest* ready
//! warp (lowest slot index, matching the baseline GPU's age order).

/// A GTO scheduler over `n` warp slots.
///
/// ```
/// use gpu_simt::GtoScheduler;
///
/// let mut s = GtoScheduler::new(4);
/// // Warps 1 and 3 are ready; nothing issued yet, so the oldest wins.
/// assert_eq!(s.pick(|w| w == 1 || w == 3), Some(1));
/// // Greedy: warp 1 keeps the slot while it stays ready.
/// assert_eq!(s.pick(|w| w == 1 || w == 3), Some(1));
/// // Warp 1 stalls: fall back to the oldest ready warp.
/// assert_eq!(s.pick(|w| w == 3), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct GtoScheduler {
    n: usize,
    last: Option<usize>,
    picks: u64,
    greedy_hits: u64,
}

impl GtoScheduler {
    /// Creates a scheduler over `n` warp slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "scheduler needs at least one warp slot");
        GtoScheduler {
            n,
            last: None,
            picks: 0,
            greedy_hits: 0,
        }
    }

    /// Picks the next warp to issue from, where `ready(w)` reports whether
    /// slot `w` can issue this cycle. Returns `None` when nothing is ready.
    pub fn pick(&mut self, mut ready: impl FnMut(usize) -> bool) -> Option<usize> {
        if let Some(last) = self.last {
            if ready(last) {
                self.picks += 1;
                self.greedy_hits += 1;
                return Some(last);
            }
        }
        for w in 0..self.n {
            if ready(w) {
                self.last = Some(w);
                self.picks += 1;
                return Some(w);
            }
        }
        None
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.n
    }

    /// Total successful picks (cycles where some warp issued).
    pub fn picks(&self) -> u64 {
        self.picks
    }

    /// Picks that stayed greedily with the previous warp — the GTO "greedy
    /// hit rate" numerator, an issue-locality gauge for the trace layer.
    pub fn greedy_hits(&self) -> u64 {
        self.greedy_hits
    }

    /// Forgets the greedy warp (e.g. when it finished its thread block).
    pub fn reset_greedy(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_first_when_idle() {
        let mut s = GtoScheduler::new(8);
        assert_eq!(s.pick(|w| w >= 5), Some(5));
    }

    #[test]
    fn greedy_sticks_with_last() {
        let mut s = GtoScheduler::new(8);
        assert_eq!(s.pick(|w| w == 6), Some(6));
        // Even though warp 0 became ready, greedy prefers 6.
        assert_eq!(s.pick(|_| true), Some(6));
    }

    #[test]
    fn falls_back_to_oldest_on_stall() {
        let mut s = GtoScheduler::new(8);
        assert_eq!(s.pick(|w| w == 6), Some(6));
        assert_eq!(s.pick(|w| w == 2 || w == 4), Some(2));
        // New greedy warp is 2.
        assert_eq!(s.pick(|w| w == 2 || w == 4), Some(2));
    }

    #[test]
    fn none_when_nothing_ready() {
        let mut s = GtoScheduler::new(4);
        assert_eq!(s.pick(|_| false), None);
        assert_eq!(s.picks(), 0);
    }

    #[test]
    fn empty_pick_is_stateless() {
        // The engine's idle skip-ahead elides cycles where no warp is ready
        // without consulting the scheduler. That is only sound because a
        // pick with nothing ready leaves the scheduler untouched: same
        // greedy warp, same counters, so skipping N such cycles is
        // indistinguishable from calling `pick` N times in them.
        let mut s = GtoScheduler::new(4);
        assert_eq!(s.pick(|w| w == 2), Some(2));
        for _ in 0..100 {
            assert_eq!(s.pick(|_| false), None);
        }
        assert_eq!(s.picks(), 1);
        assert_eq!(s.greedy_hits(), 0);
        // Greedy state survived the dry spell.
        assert_eq!(s.pick(|_| true), Some(2));
        assert_eq!(s.greedy_hits(), 1);
    }

    #[test]
    fn pick_counters_track_greedy_locality() {
        let mut s = GtoScheduler::new(4);
        assert_eq!(s.pick(|w| w == 1), Some(1)); // cold pick
        assert_eq!(s.pick(|w| w == 1), Some(1)); // greedy hit
        assert_eq!(s.pick(|w| w == 2), Some(2)); // fallback
        assert_eq!(s.picks(), 3);
        assert_eq!(s.greedy_hits(), 1);
    }

    #[test]
    fn reset_greedy_returns_to_age_order() {
        let mut s = GtoScheduler::new(4);
        assert_eq!(s.pick(|w| w == 3), Some(3));
        s.reset_greedy();
        assert_eq!(s.pick(|_| true), Some(0));
    }
}
