//! The memory-access coalescer.
//!
//! When a warp issues a memory instruction, the per-lane addresses are
//! grouped by metadata granule (for transactional accesses the validation
//! unit works at granule granularity) so that one request per distinct
//! granule crosses the interconnect, carrying the lanes it serves.

use gpu_mem::{Addr, Geometry, Granule};

/// One coalesced request produced from a warp's per-lane addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedAccess {
    /// Target granule.
    pub granule: Granule,
    /// Lanes (indices into the input slice) served by this request.
    pub lanes: Vec<u32>,
    /// Representative word address (the first lane's address).
    pub addr: Addr,
}

/// Groups per-lane addresses by granule, preserving first-appearance order.
///
/// `addrs[i]` is `Some(addr)` for lanes participating in the access.
///
/// ```
/// use gpu_simt::coalesce_by_granule;
/// use gpu_mem::{Addr, Geometry};
///
/// let geom = Geometry::new(128, 32, 6);
/// let lanes = vec![Some(Addr(0)), Some(Addr(8)), Some(Addr(64)), None];
/// let reqs = coalesce_by_granule(&lanes, &geom);
/// assert_eq!(reqs.len(), 2);           // granule 0 (bytes 0..32) and granule 2
/// assert_eq!(reqs[0].lanes, vec![0, 1]);
/// assert_eq!(reqs[1].lanes, vec![2]);
/// ```
pub fn coalesce_by_granule(addrs: &[Option<Addr>], geom: &Geometry) -> Vec<CoalescedAccess> {
    let mut out: Vec<CoalescedAccess> = Vec::new();
    for (lane, addr) in addrs.iter().enumerate() {
        let Some(addr) = addr else { continue };
        let g = geom.granule_of(*addr);
        if let Some(req) = out.iter_mut().find(|r| r.granule == g) {
            req.lanes.push(lane as u32);
        } else {
            out.push(CoalescedAccess {
                granule: g,
                lanes: vec![lane as u32],
                addr: *addr,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(128, 32, 6)
    }

    #[test]
    fn fully_coalesced_warp() {
        // 32 lanes touching consecutive words within one granule region of
        // 4 words -> 8 granules.
        let addrs: Vec<Option<Addr>> = (0..32u64).map(|i| Some(Addr(i * 8))).collect();
        let reqs = coalesce_by_granule(&addrs, &geom());
        assert_eq!(reqs.len(), 8);
        for r in &reqs {
            assert_eq!(r.lanes.len(), 4);
        }
    }

    #[test]
    fn fully_divergent_warp() {
        // Each lane in its own granule.
        let addrs: Vec<Option<Addr>> = (0..32u64).map(|i| Some(Addr(i * 4096))).collect();
        let reqs = coalesce_by_granule(&addrs, &geom());
        assert_eq!(reqs.len(), 32);
    }

    #[test]
    fn inactive_lanes_skipped() {
        let addrs = vec![None, Some(Addr(32)), None, Some(Addr(40))];
        let reqs = coalesce_by_granule(&addrs, &geom());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].lanes, vec![1, 3]);
        assert_eq!(reqs[0].addr, Addr(32));
        assert_eq!(reqs[0].granule, Granule(1));
    }

    #[test]
    fn empty_input() {
        assert!(coalesce_by_granule(&[], &geom()).is_empty());
        assert!(coalesce_by_granule(&[None, None], &geom()).is_empty());
    }

    #[test]
    fn order_is_first_appearance() {
        let addrs = vec![Some(Addr(4096)), Some(Addr(0)), Some(Addr(4100))];
        let reqs = coalesce_by_granule(&addrs, &geom());
        assert_eq!(reqs[0].granule, Granule(128));
        assert_eq!(reqs[1].granule, Granule(0));
        assert_eq!(reqs[0].lanes, vec![0, 2]);
    }

    #[test]
    fn granularity_affects_grouping() {
        let fine = Geometry::new(128, 16, 6);
        let coarse = Geometry::new(128, 128, 6);
        let addrs = vec![Some(Addr(0)), Some(Addr(16)), Some(Addr(64))];
        assert_eq!(coalesce_by_granule(&addrs, &fine).len(), 3);
        assert_eq!(coalesce_by_granule(&addrs, &coarse).len(), 1);
    }
}
