//! Per-thread transaction logs and intra-warp conflict resolution.
//!
//! Every transactional thread keeps a redo log in the core's local memory:
//! loads record the observed value (needed by WarpTM's value-based
//! validation), stores record the new value. GETM only *transmits* the
//! write log at commit, but still records reads to drive intra-warp
//! conflict detection, exactly as the paper describes (Sec. V-A).

use gpu_mem::{Addr, Geometry, Granule};
use std::collections::HashMap;

/// One log entry: a word address and the associated value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Word address.
    pub addr: Addr,
    /// Observed (read log) or written (write log) value.
    pub value: u64,
    /// Read log only: this read was satisfied by the transaction's *own*
    /// earlier write (read-own-writes forwarding). Forwarded reads observe
    /// speculative data by design and are excluded from value validation;
    /// reads that *preceded* the own write still validate against memory.
    pub forwarded: bool,
}

/// The read and write logs of one thread's open transaction.
#[derive(Debug, Clone, Default)]
pub struct TxLogs {
    reads: Vec<LogEntry>,
    writes: Vec<LogEntry>,
    /// Per-granule write counts (for the `#writes` bookkeeping GETM sends
    /// at commit/abort).
    write_counts: HashMap<u64, u32>,
}

/// Bytes on the wire per log entry when a log is transmitted: an address
/// plus a 64-bit value (WarpTM sends both logs at commit; GETM only the
/// write log).
pub const LOG_ENTRY_BYTES: u64 = 16;

impl TxLogs {
    /// Fresh, empty logs.
    pub fn new() -> Self {
        TxLogs::default()
    }

    /// Records a transactional load of `addr` observing `value`. The
    /// forwarding flag is derived from whether this transaction has
    /// already written `addr` at record time.
    pub fn record_read(&mut self, addr: Addr, value: u64) {
        let forwarded = self.forwarded_value(addr).is_some();
        self.reads.push(LogEntry {
            addr,
            value,
            forwarded,
        });
    }

    /// Fills in the value of the most recent read of `addr` — the engine
    /// records a placeholder at issue (for intra-warp conflict checks) and
    /// patches the observed value when the memory reply arrives.
    pub fn update_read_value(&mut self, addr: Addr, value: u64) {
        if let Some(e) = self.reads.iter_mut().rev().find(|e| e.addr == addr) {
            e.value = value;
        }
    }

    /// Records a transactional store, tracking the per-granule write count.
    pub fn record_write(&mut self, addr: Addr, value: u64, geom: &Geometry) {
        self.writes.push(LogEntry {
            addr,
            value,
            forwarded: false,
        });
        *self
            .write_counts
            .entry(geom.granule_of(addr).raw())
            .or_insert(0) += 1;
    }

    /// Removes the most recent write to `addr` — used when an eager
    /// conflict check rejects a store that was optimistically logged at
    /// issue time (the reservation was never taken, so the cleanup log
    /// must not release it).
    ///
    /// Returns whether an entry was removed.
    pub fn remove_last_write(&mut self, addr: Addr, geom: &Geometry) -> bool {
        let Some(pos) = self.writes.iter().rposition(|e| e.addr == addr) else {
            return false;
        };
        self.writes.remove(pos);
        let g = geom.granule_of(addr).raw();
        if let Some(c) = self.write_counts.get_mut(&g) {
            *c -= 1;
            if *c == 0 {
                self.write_counts.remove(&g);
            }
        }
        true
    }

    /// Latest value this transaction wrote to `addr`, if any
    /// (read-own-writes forwarding).
    pub fn forwarded_value(&self, addr: Addr) -> Option<u64> {
        self.writes
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    /// Whether this transaction has written `addr`'s granule.
    pub fn wrote_granule(&self, g: Granule) -> bool {
        self.write_counts.contains_key(&g.raw())
    }

    /// Whether this transaction has read anything in granule `g`.
    pub fn read_granule(&self, g: Granule, geom: &Geometry) -> bool {
        self.reads.iter().any(|e| geom.granule_of(e.addr) == g)
    }

    /// The read log.
    pub fn reads(&self) -> &[LogEntry] {
        &self.reads
    }

    /// The write log.
    pub fn writes(&self) -> &[LogEntry] {
        &self.writes
    }

    /// Whether the transaction performed no writes (candidate for WarpTM's
    /// TCD silent commit).
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Iterates `(granule, #writes)` pairs in unspecified order.
    pub fn write_counts(&self) -> impl Iterator<Item = (Granule, u32)> + '_ {
        self.write_counts.iter().map(|(&g, &c)| (Granule(g), c))
    }

    /// Set of granules read, deduplicated.
    pub fn read_granules(&self, geom: &Geometry) -> Vec<Granule> {
        let mut gs: Vec<u64> = self
            .reads
            .iter()
            .map(|e| geom.granule_of(e.addr).raw())
            .collect();
        gs.sort_unstable();
        gs.dedup();
        gs.into_iter().map(Granule).collect()
    }

    /// Set of granules written, deduplicated, in increasing order.
    pub fn write_granules(&self) -> Vec<Granule> {
        let mut gs: Vec<u64> = self.write_counts.keys().copied().collect();
        gs.sort_unstable();
        gs.into_iter().map(Granule).collect()
    }

    /// Bytes needed to transmit the write log (commit traffic).
    pub fn write_log_bytes(&self) -> u64 {
        self.writes.len() as u64 * LOG_ENTRY_BYTES
    }

    /// Bytes needed to transmit both logs (WarpTM validation traffic).
    pub fn full_log_bytes(&self) -> u64 {
        (self.reads.len() + self.writes.len()) as u64 * LOG_ENTRY_BYTES
    }

    /// Clears both logs (after commit, abort cleanup, or retry).
    pub fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.write_counts.clear();
    }

    /// Whether both logs are empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// Resolves intra-warp conflicts among the open transactions of one warp's
/// threads, returning the surviving lane mask.
///
/// Two threads of the same warp conflict if one wrote a granule the other
/// read or wrote. Survivors are chosen greedily in lane order (the
/// two-phase parallel scheme of WarpTM resolves to a deterministic winner
/// set; lane order matches its leader-election tie-break). Threads whose
/// slot is `None` (not in a transaction) are ignored.
pub fn resolve_intra_warp(logs: &[Option<&TxLogs>], geom: &Geometry) -> Vec<bool> {
    let mut survivors = vec![false; logs.len()];
    // Granules written / read by surviving threads so far.
    let mut written: HashMap<u64, ()> = HashMap::new();
    let mut read: HashMap<u64, ()> = HashMap::new();

    for (lane, slot) in logs.iter().enumerate() {
        let Some(l) = slot else { continue };
        let my_writes: Vec<u64> = l.write_granules().iter().map(|g| g.raw()).collect();
        let my_reads: Vec<u64> = l.read_granules(geom).iter().map(|g| g.raw()).collect();

        let conflict = my_writes
            .iter()
            .any(|g| written.contains_key(g) || read.contains_key(g))
            || my_reads.iter().any(|g| written.contains_key(g));

        if !conflict {
            survivors[lane] = true;
            for g in my_writes {
                written.insert(g, ());
            }
            for g in my_reads {
                read.insert(g, ());
            }
        }
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geom() -> Geometry {
        Geometry::new(128, 32, 6)
    }

    #[test]
    fn read_own_writes() {
        let g = geom();
        let mut l = TxLogs::new();
        assert_eq!(l.forwarded_value(Addr(8)), None);
        l.record_write(Addr(8), 1, &g);
        l.record_write(Addr(8), 2, &g);
        assert_eq!(l.forwarded_value(Addr(8)), Some(2));
        assert_eq!(l.forwarded_value(Addr(16)), None);
    }

    #[test]
    fn write_counts_per_granule() {
        let g = geom();
        let mut l = TxLogs::new();
        l.record_write(Addr(0), 1, &g); // granule 0
        l.record_write(Addr(8), 2, &g); // granule 0
        l.record_write(Addr(32), 3, &g); // granule 1
        let counts: HashMap<u64, u32> = l.write_counts().map(|(g, c)| (g.raw(), c)).collect();
        assert_eq!(counts[&0], 2);
        assert_eq!(counts[&1], 1);
        assert!(l.wrote_granule(Granule(0)));
        assert!(!l.wrote_granule(Granule(2)));
        assert_eq!(l.write_granules(), vec![Granule(0), Granule(1)]);
    }

    #[test]
    fn remove_last_write_unwinds_counts() {
        let g = geom();
        let mut l = TxLogs::new();
        l.record_write(Addr(0), 1, &g);
        l.record_write(Addr(0), 2, &g);
        assert!(l.remove_last_write(Addr(0), &g));
        assert_eq!(l.forwarded_value(Addr(0)), Some(1));
        assert!(l.wrote_granule(Granule(0)));
        assert!(l.remove_last_write(Addr(0), &g));
        assert!(!l.wrote_granule(Granule(0)));
        assert!(!l.remove_last_write(Addr(0), &g));
    }

    #[test]
    fn update_read_value_patches_latest() {
        let mut l = TxLogs::new();
        l.record_read(Addr(0), 0);
        l.record_read(Addr(8), 0);
        l.record_read(Addr(0), 0);
        l.update_read_value(Addr(0), 42);
        // Only the most recent entry for the address is patched.
        assert_eq!(l.reads()[2].value, 42);
        assert_eq!(l.reads()[0].value, 0);
        assert_eq!(l.reads()[1].value, 0);
        // Patching an unknown address is a no-op.
        l.update_read_value(Addr(64), 1);
        assert_eq!(l.reads().len(), 3);
    }

    #[test]
    fn read_only_detection() {
        let g = geom();
        let mut l = TxLogs::new();
        l.record_read(Addr(0), 7);
        assert!(l.is_read_only());
        l.record_write(Addr(0), 8, &g);
        assert!(!l.is_read_only());
    }

    #[test]
    fn log_byte_sizes() {
        let g = geom();
        let mut l = TxLogs::new();
        l.record_read(Addr(0), 1);
        l.record_read(Addr(8), 2);
        l.record_write(Addr(16), 3, &g);
        assert_eq!(l.write_log_bytes(), 16);
        assert_eq!(l.full_log_bytes(), 48);
    }

    #[test]
    fn clear_resets() {
        let g = geom();
        let mut l = TxLogs::new();
        l.record_read(Addr(0), 1);
        l.record_write(Addr(8), 2, &g);
        assert!(!l.is_empty());
        l.clear();
        assert!(l.is_empty());
        assert!(l.is_read_only());
    }

    #[test]
    fn intra_warp_disjoint_all_survive() {
        let g = geom();
        let mut a = TxLogs::new();
        a.record_write(Addr(0), 1, &g);
        let mut b = TxLogs::new();
        b.record_write(Addr(32), 1, &g);
        let survivors = resolve_intra_warp(&[Some(&a), Some(&b)], &g);
        assert_eq!(survivors, vec![true, true]);
    }

    #[test]
    fn intra_warp_ww_conflict_first_wins() {
        let g = geom();
        let mut a = TxLogs::new();
        a.record_write(Addr(0), 1, &g);
        let mut b = TxLogs::new();
        b.record_write(Addr(8), 1, &g); // same granule 0
        let survivors = resolve_intra_warp(&[Some(&a), Some(&b)], &g);
        assert_eq!(survivors, vec![true, false]);
    }

    #[test]
    fn intra_warp_rw_conflict() {
        let g = geom();
        let mut a = TxLogs::new();
        a.record_write(Addr(0), 1, &g);
        let mut b = TxLogs::new();
        b.record_read(Addr(8), 1); // reads granule 0, written by a
        let survivors = resolve_intra_warp(&[Some(&a), Some(&b)], &g);
        assert_eq!(survivors, vec![true, false]);

        // Writer after reader also conflicts.
        let survivors = resolve_intra_warp(&[Some(&b), Some(&a)], &g);
        assert_eq!(survivors, vec![true, false]);
    }

    #[test]
    fn intra_warp_rr_no_conflict() {
        let g = geom();
        let mut a = TxLogs::new();
        a.record_read(Addr(0), 1);
        let mut b = TxLogs::new();
        b.record_read(Addr(8), 1);
        let survivors = resolve_intra_warp(&[Some(&a), Some(&b)], &g);
        assert_eq!(survivors, vec![true, true]);
    }

    #[test]
    fn intra_warp_skips_non_tx_lanes() {
        let g = geom();
        let mut a = TxLogs::new();
        a.record_write(Addr(0), 1, &g);
        let survivors = resolve_intra_warp(&[None, Some(&a), None], &g);
        assert_eq!(survivors, vec![false, true, false]);
    }

    proptest! {
        /// Survivors of intra-warp resolution are pairwise conflict-free.
        #[test]
        fn survivors_pairwise_disjoint(
            accesses in proptest::collection::vec(
                proptest::collection::vec((0u64..8, proptest::bool::ANY), 1..5),
                2..8,
            )
        ) {
            let g = geom();
            let logs: Vec<TxLogs> = accesses
                .iter()
                .map(|th| {
                    let mut l = TxLogs::new();
                    for &(granule, is_write) in th {
                        let addr = Addr(granule * 32);
                        if is_write {
                            l.record_write(addr, 0, &g);
                        } else {
                            l.record_read(addr, 0);
                        }
                    }
                    l
                })
                .collect();
            let refs: Vec<Option<&TxLogs>> = logs.iter().map(Some).collect();
            let survivors = resolve_intra_warp(&refs, &g);
            prop_assert!(survivors.iter().any(|&s| s), "at least one lane survives");
            for i in 0..logs.len() {
                for j in 0..logs.len() {
                    if i == j || !survivors[i] || !survivors[j] {
                        continue;
                    }
                    for gw in logs[i].write_granules() {
                        prop_assert!(!logs[j].wrote_granule(gw));
                        prop_assert!(!logs[j].read_granule(gw, &g));
                    }
                }
            }
        }
    }
}
