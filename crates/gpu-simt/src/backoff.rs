//! Probabilistic exponential backoff for aborted transactions.
//!
//! GETM ensures forward progress by restarting aborted transactions after a
//! randomized, probabilistically increasing delay (the classic multi-access
//! broadcast-channel control scheme the paper cites). Each consecutive
//! abort widens the delay window; a successful commit resets it.

use sim_core::DetRng;

/// Per-warp backoff state.
///
/// ```
/// use gpu_simt::Backoff;
/// use sim_core::DetRng;
///
/// let mut rng = DetRng::seeded(1);
/// let mut b = Backoff::new(8, 6);
/// let d1 = b.next_delay(&mut rng);
/// assert!(d1 < 8);
/// b.note_abort();
/// let d2 = b.next_delay(&mut rng);
/// assert!(d2 < 16);
/// b.reset();
/// assert_eq!(b.attempts(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base_window: u64,
    max_exponent: u32,
    attempts: u32,
    lifetime_aborts: u64,
}

impl Backoff {
    /// Creates a backoff with an initial window of `base_window` cycles,
    /// doubling per abort up to `2^max_exponent` times the base.
    ///
    /// # Panics
    ///
    /// Panics if `base_window` is zero.
    pub fn new(base_window: u64, max_exponent: u32) -> Self {
        assert!(base_window > 0, "backoff window must be positive");
        Backoff {
            base_window,
            max_exponent,
            attempts: 0,
            lifetime_aborts: 0,
        }
    }

    /// Paper-flavoured default: 16-cycle base window, doubling per abort
    /// and capped at 16x (256 cycles) — roughly one memory round trip, so
    /// a retry departs as contention from the conflicting commit drains
    /// without idling the warp for thousands of cycles.
    pub fn paper_default() -> Self {
        Backoff::new(16, 4)
    }

    /// Records an abort, widening the next delay window.
    pub fn note_abort(&mut self) {
        self.attempts = self.attempts.saturating_add(1);
        self.lifetime_aborts += 1;
    }

    /// Raises the window cap by one doubling (up to a hard ceiling of
    /// 2^16 x base). The forward-progress watchdog calls this when a
    /// whole progress window elapses without a commit: wider maximum
    /// windows spread retries of the contending warps further apart,
    /// which is often all a near-livelock needs.
    pub fn escalate(&mut self) {
        self.max_exponent = (self.max_exponent + 1).min(16);
    }

    /// The current window-growth cap (exponent of the maximum doubling).
    pub fn max_exponent(&self) -> u32 {
        self.max_exponent
    }

    /// Resets after a successful commit.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Number of consecutive aborts recorded.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Aborts recorded over the warp's whole lifetime (never reset) — the
    /// backoff-pressure gauge the trace layer reads.
    pub fn lifetime_aborts(&self) -> u64 {
        self.lifetime_aborts
    }

    /// The width in cycles of the current delay window.
    pub fn current_window(&self) -> u64 {
        self.base_window << self.attempts.min(self.max_exponent)
    }

    /// Draws a uniformly random delay from the current window.
    pub fn next_delay(&self, rng: &mut DetRng) -> u64 {
        let exp = self.attempts.min(self.max_exponent);
        let window = self.base_window << exp;
        rng.below(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_grows_and_caps() {
        let mut rng = DetRng::seeded(3);
        let mut b = Backoff::new(4, 3);
        // attempts=0 -> window 4
        for _ in 0..100 {
            assert!(b.next_delay(&mut rng) < 4);
        }
        for _ in 0..10 {
            b.note_abort();
        }
        // attempts capped at exponent 3 -> window 32
        let max_seen = (0..200).map(|_| b.next_delay(&mut rng)).max().unwrap();
        assert!(max_seen < 32);
        assert!(max_seen >= 4, "the window should actually widen");
    }

    #[test]
    fn reset_shrinks_window() {
        let mut rng = DetRng::seeded(3);
        let mut b = Backoff::new(4, 4);
        b.note_abort();
        b.note_abort();
        assert_eq!(b.attempts(), 2);
        assert_eq!(b.current_window(), 16);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.lifetime_aborts(), 2, "lifetime count survives reset");
        assert_eq!(b.current_window(), 4);
        for _ in 0..50 {
            assert!(b.next_delay(&mut rng) < 4);
        }
    }

    #[test]
    fn escalate_raises_the_cap_and_saturates() {
        let mut b = Backoff::new(4, 3);
        for _ in 0..10 {
            b.note_abort();
        }
        assert_eq!(b.current_window(), 4 << 3);
        b.escalate();
        assert_eq!(b.max_exponent(), 4);
        assert_eq!(b.current_window(), 4 << 4);
        for _ in 0..100 {
            b.escalate();
        }
        assert_eq!(b.max_exponent(), 16, "escalation must saturate");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = DetRng::seeded(42);
        let mut r2 = DetRng::seeded(42);
        let b = Backoff::paper_default();
        for _ in 0..16 {
            assert_eq!(b.next_delay(&mut r1), b.next_delay(&mut r2));
        }
    }
}
