//! Cross-thread-count determinism: the sharded engine must be an
//! *observationally invisible* wall-clock optimization. For a contended
//! workload under every TM system, metrics, event traces, and verification
//! verdicts must be byte-identical to serial execution at every shard
//! count — including counts that don't divide the core count, exceed it,
//! or collapse to one.

use gputm::prelude::*;
use workloads::fuzz::{Fuzz, FuzzShape};

/// A small contended machine: enough cores/partitions to shard unevenly.
fn machine() -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = 4;
    cfg.warps_per_core = 4;
    cfg.warp_width = 8;
    cfg.partitions = 2;
    cfg
}

/// Everyone hammers one cell: maximal conflict traffic through the
/// crossbars, validation units, and abort/backoff paths.
fn contended() -> Fuzz {
    Fuzz::new(FuzzShape::SingleCell, 48, 3, 0x5EED)
}

fn run_at(cfg: &GpuConfig, system: TmSystem, w: &Fuzz, exec: ExecMode) -> Metrics {
    Sim::new(cfg)
        .system(system)
        .run_with(w, &RunOptions::default().exec(exec))
        .expect("run completes")
        .metrics
        .expect("unverified runs always carry metrics")
}

#[test]
fn metrics_are_bit_identical_across_shard_counts() {
    let cfg = machine();
    let w = contended();
    for system in TmSystem::ALL {
        let serial = run_at(&cfg, system, &w, ExecMode::Serial);
        for threads in [1, 2, 3, 4, 8] {
            let sharded = run_at(&cfg, system, &w, ExecMode::Sharded { threads });
            assert_eq!(
                serial, sharded,
                "{system} diverged at {threads} shard threads"
            );
        }
    }
}

#[test]
fn mixed_benchmark_matches_serial_when_sharded() {
    // A benchmark workload (distinct access pattern from the fuzz shapes):
    // scattered accounts plus plain-memory phases exercise the L1-hit
    // deferred-fill and plain-store replay paths.
    let cfg = machine();
    let w = Benchmark::Atm.build(Scale::Fast);
    for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::Eapg] {
        let serial = Sim::new(&cfg).system(system).run(w.as_ref()).expect("run");
        for threads in [2, 4] {
            let sharded = Sim::new(&cfg)
                .system(system)
                .run_with(
                    w.as_ref(),
                    &RunOptions::default().exec(ExecMode::Sharded { threads }),
                )
                .expect("run")
                .metrics
                .expect("metrics");
            assert_eq!(serial, sharded, "{system} diverged at {threads} threads");
        }
    }
}

#[test]
fn rollover_heavy_run_matches_serial() {
    // A tiny timestamp limit forces stall-the-world rollovers, driving the
    // sharded loop through its serial-issue guard window (the cycles where
    // the timestamp high-water mark is too close to `ts_limit` for a
    // parallel issue phase) and through rollover completion itself.
    let mut cfg = machine();
    cfg.ts_limit = 96;
    let w = contended();
    let serial = run_at(&cfg, TmSystem::Getm, &w, ExecMode::Serial);
    assert!(serial.rollovers > 0, "the workload must roll the clocks");
    for threads in [2, 4, 8] {
        let sharded = run_at(&cfg, TmSystem::Getm, &w, ExecMode::Sharded { threads });
        assert_eq!(serial, sharded, "rollover path diverged at {threads}");
    }
}

#[test]
fn traced_runs_are_byte_identical_under_sharding() {
    // Tracing forces the serial loop internally (event order is defined by
    // serial execution), but through the public API a traced sharded run
    // must still produce the identical event stream and metrics.
    let cfg = machine();
    let w = contended();
    let capture = |exec: ExecMode| {
        let rec = sim_core::Recorder::recording(1 << 20);
        let m = Sim::new(&cfg)
            .system(TmSystem::Getm)
            .run_with(&w, &RunOptions::default().exec(exec).trace(rec.clone()))
            .expect("traced run")
            .metrics
            .expect("metrics");
        let bus = rec.bus().expect("recording recorder has a bus");
        let events = bus
            .borrow()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect::<Vec<_>>();
        (m, events)
    };
    let (serial_m, serial_ev) = capture(ExecMode::Serial);
    let (sharded_m, sharded_ev) = capture(ExecMode::Sharded { threads: 4 });
    assert_eq!(serial_m, sharded_m);
    assert_eq!(serial_ev.len(), sharded_ev.len(), "trace length diverged");
    assert_eq!(serial_ev, sharded_ev, "trace content diverged");
}

#[test]
fn verified_runs_agree_with_serial_verdicts() {
    let cfg = machine();
    let w = contended();
    for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::Eapg] {
        let run = |exec: ExecMode| {
            Sim::new(&cfg)
                .system(system)
                .run_with(&w, &RunOptions::default().exec(exec).verify(true))
                .expect("verified run")
        };
        let serial = run(ExecMode::Serial);
        let sharded = run(ExecMode::Sharded { threads: 4 });
        assert_eq!(serial.metrics, sharded.metrics, "{system} metrics diverged");
        let (vs, vp) = (
            serial.verdict.expect("verdict"),
            sharded.verdict.expect("verdict"),
        );
        vs.assert_ok();
        assert_eq!(vs.stats, vp.stats, "{system} verdict stats diverged");
        assert_eq!(vs.witness_len, vp.witness_len, "{system} witness diverged");
    }
}

#[test]
fn cache_digest_is_shared_across_exec_modes() {
    // Execution mode never changes results, so a cell computed sharded and
    // one computed serially must address the same cache entry.
    let cell = CellSpec::new(
        Benchmark::Atm,
        Scale::Fast,
        TmSystem::Getm,
        GpuConfig::tiny_test(),
    );
    let serial_key = cell.cache_key();
    for threads in [1, 2, 8] {
        let sharded_key = cell
            .clone()
            .with_exec(ExecMode::Sharded { threads })
            .cache_key();
        assert_eq!(
            serial_key, sharded_key,
            "exec mode must be excluded from the cache digest"
        );
    }
}

#[test]
fn sharded_cell_results_match_serial_cell_results() {
    // End-to-end through the sweep cell API: the digest-sharing above is
    // only sound because the computed metrics really are identical.
    let cfg = machine();
    let serial = CellSpec::new(Benchmark::Atm, Scale::Fast, TmSystem::Getm, cfg.clone())
        .run()
        .expect("serial cell");
    let sharded = CellSpec::new(Benchmark::Atm, Scale::Fast, TmSystem::Getm, cfg)
        .with_exec(ExecMode::Sharded { threads: 4 })
        .run()
        .expect("sharded cell");
    assert_eq!(serial, sharded);
}
