//! Logical-timestamp rollover, end to end: with an artificially tiny
//! timestamp limit, the engine must stall the world, flush every metadata
//! table, restart the clocks, and still finish the workload correctly.

use gputm::config::{GpuConfig, TmSystem};
use gputm::runner::Sim;
use workloads::atm::Atm;

fn tiny_limit_cfg(limit: u64) -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = 2;
    cfg.warps_per_core = 4;
    cfg.warp_width = 8;
    cfg.partitions = 2;
    cfg.ts_limit = limit;
    cfg
}

#[test]
fn rollover_fires_and_preserves_correctness() {
    // Contended transfers push logical clocks up quickly; a limit of 96
    // forces several rollovers (initial warpts already reach 0..63).
    let w = Atm::new(64, 64, 4, 11);
    let m = Sim::new(&tiny_limit_cfg(96))
        .system(TmSystem::Getm)
        .run(&w)
        .expect("run");
    m.assert_correct();
    assert!(
        m.rollovers > 0,
        "a 96-tick clock limit must trigger at least one rollover"
    );
    assert!(m.commits == 64 * 4, "every transfer still commits");
}

#[test]
fn generous_limit_never_rolls_over() {
    let w = Atm::new(64, 64, 2, 11);
    let m = Sim::new(&tiny_limit_cfg(1 << 48))
        .system(TmSystem::Getm)
        .run(&w)
        .expect("run");
    m.assert_correct();
    assert_eq!(m.rollovers, 0);
}

#[test]
fn repeated_rollovers_are_deterministic() {
    let w = Atm::new(32, 48, 4, 3);
    let cfg = tiny_limit_cfg(80);
    let a = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run(&w)
        .expect("first");
    let b = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run(&w)
        .expect("second");
    a.assert_correct();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.rollovers, b.rollovers);
    assert!(a.rollovers >= 1);
}
