//! The backend trait contract: [`SimBackend`] is observationally a thin
//! adapter (metrics bit-identical to driving [`Sim`] directly), and one
//! backend-neutral [`TxProgram`] definition runs unmodified on both the
//! simulator and the host-threaded TL2 STM, certified by the same oracle.

mod common;

use common::CounterStress;
use gputm::prelude::*;
use workloads::atm::Atm;
use workloads::fuzz::{Fuzz, FuzzShape};
use workloads::hashtable::HashTable;

fn small_programs(seed: u64) -> Vec<TxProgram> {
    vec![
        HashTable::new("HT-H", 256, 256, seed).tx_program(),
        Atm::new(2_048, 256, 2, seed).tx_program(),
    ]
}

/// `SimBackend::execute` must produce exactly the metrics a direct
/// `Sim::run_with` produces for the equivalent `RunOptions` — the adapter
/// adds an API, not a behavior.
#[test]
fn sim_backend_metrics_match_direct_sim() {
    let cfg = GpuConfig::tiny_test();
    for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::FgLock] {
        for prog in small_programs(0xA11CE) {
            for threads in [1usize, 4] {
                let backend = SimBackend::new(cfg.clone(), system);
                let bopts = BackendOptions::default().threads(threads);
                let via_backend = backend
                    .execute(&prog, &bopts)
                    .expect("sim backend run completes")
                    .metrics;

                let mut ropts = RunOptions::default();
                if threads > 1 {
                    ropts = ropts.exec(ExecMode::Sharded { threads });
                }
                let direct = Sim::new(&cfg)
                    .system(system)
                    .run_with(prog.workload(), &ropts)
                    .expect("direct sim run completes")
                    .metrics
                    .expect("completed runs carry metrics");

                assert_eq!(
                    via_backend,
                    direct,
                    "{} on {} with {threads} thread(s): backend metrics diverge from direct Sim",
                    prog.name(),
                    system.label()
                );
            }
        }
    }
}

/// The same `TxProgram` values — hashtable, bank, fuzz, counter — run on
/// both backends; each run passes its workload invariant check and is
/// certified by the oracle at the strictness the backend promises.
#[test]
fn one_definition_runs_on_both_backends() {
    let mut programs = small_programs(0xBEEF);
    programs.push(Fuzz::new(FuzzShape::MixedAliasing, 24, 3, 0xBEEF).tx_program());
    programs.push(CounterStress::new(16, 25, 64).tx_program());

    let backends: Vec<Box<dyn TmBackend>> = vec![
        Box::new(SimBackend::new(GpuConfig::tiny_test(), TmSystem::Getm)),
        Box::new(Tl2Backend::new()),
    ];
    let opts = BackendOptions::default().record_history(true).threads(4);

    for prog in &programs {
        for backend in &backends {
            let out = backend
                .execute(prog, &opts)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", prog.name(), backend.name()));
            out.check(prog)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", prog.name(), backend.name()));
            let verdict = out
                .verdict(prog, backend.guarantees_opacity())
                .expect("recording runs carry a history");
            assert!(
                verdict.ok(),
                "{} on {}: {}",
                prog.name(),
                backend.name(),
                verdict.summary()
            );
            assert!(
                out.metrics.commits > 0,
                "{} on {}: no commits recorded",
                prog.name(),
                backend.name()
            );
        }
    }
}

/// The contended counter is exact on TL2 across thread counts: every
/// lost update is a missed conflict, so equality with threads*rounds is
/// the sharpest possible linearization check.
#[test]
fn tl2_counter_stress_is_exact() {
    let stress = CounterStress::new(24, 50, 128);
    let prog = stress.tx_program();
    let backend = Tl2Backend::new();
    for threads in [2usize, 4, 8] {
        let opts = BackendOptions::default()
            .record_history(true)
            .threads(threads)
            .seed(0xC0_FFEE + threads as u64);
        let out = backend.execute(&prog, &opts).expect("TL2 run completes");
        out.check(&prog)
            .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        let verdict = out.verdict(&prog, true).expect("history recorded");
        assert!(verdict.ok(), "{threads} threads: {}", verdict.summary());
    }
}
