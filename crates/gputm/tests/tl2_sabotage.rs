//! Negative control for the cross-validation pipeline: a TL2 variant with
//! commit-time read-set revalidation deliberately skipped must produce
//! real serializability violations on a contended workload, and the
//! oracle must catch them with a concrete counterexample. If this test
//! fails, the oracle is rubber-stamping real-thread histories.
//!
//! Compiled only with `--features sabotage` (never in benchmarking
//! builds); CI runs it as part of the stm stress job.

#![cfg(feature = "sabotage")]

mod common;

use common::CounterStress;
use gputm::prelude::*;
use gputm::verify::export_counterexample;

#[test]
fn oracle_catches_skipped_read_validation_with_counterexample() {
    // High contention by construction: many threads, a long compute pad
    // between the transactional read and write, one shared cell. With
    // revalidation skipped, lost updates are near-certain; retry a few
    // seeds so scheduler luck can't produce a flaky pass.
    let stress = CounterStress::new(32, 60, 512);
    let prog = stress.tx_program();
    let backend =
        Tl2Backend::with_options(Tl2Options::default().sabotage(Tl2Sabotage::SkipReadValidation));

    for attempt in 0..5u64 {
        let opts = BackendOptions::default()
            .record_history(true)
            .threads(8)
            .seed(0x5AB0 + attempt);
        let out = backend
            .execute(&prog, &opts)
            .expect("sabotaged run completes");
        let verdict = out.verdict(&prog, true).expect("history recorded");
        let lost_updates = out.check(&prog).is_err();
        if verdict.ok() {
            // The race window didn't fire this time: the final state must
            // then also be correct (the oracle may not pass a run the
            // invariant check fails).
            assert!(
                !lost_updates,
                "invariant check caught lost updates the oracle missed"
            );
            continue;
        }

        // Caught. The verdict must carry an exportable counterexample.
        let v = verdict
            .violations
            .first()
            .expect("failed verdict carries a violation");
        let mut trace = Vec::new();
        export_counterexample(v, &mut trace).expect("in-memory export cannot fail");
        assert!(
            !trace.is_empty(),
            "counterexample export produced an empty trace"
        );
        return;
    }
    panic!("sabotaged TL2 survived 5 contended runs without an oracle violation");
}
