//! Diagnostic: small runs with tight cycle budgets that dump engine state
//! on livelock instead of hanging the test suite.

use gputm::config::{GpuConfig, TmSystem};
use gputm::engine::Engine;
use workloads::atm::Atm;
use workloads::Workload;

fn tiny() -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = 1;
    cfg.warps_per_core = 2;
    cfg.warp_width = 4;
    cfg.partitions = 2;
    cfg.max_cycles = 2_000_000;
    cfg
}

fn run_or_dump(system: TmSystem, threads: usize) {
    let w = Atm::new(16, threads, 1, 5);
    let mut e = Engine::new(&w, system, &tiny()).expect("engine");
    match e.run() {
        Ok(m) => {
            assert!(m.cycles > 0);
            if let Err(err) = w.check(&e.memory_reader()) {
                panic!("{system} with {threads} threads violated invariants: {err}");
            }
        }
        Err(err) => panic!("{system} livelocked: {err}\n{}", e.debug_dump()),
    }
}

#[test]
fn single_warp_fglock() {
    run_or_dump(TmSystem::FgLock, 4);
}

#[test]
fn single_warp_getm() {
    run_or_dump(TmSystem::Getm, 4);
}

#[test]
fn single_warp_warptm() {
    run_or_dump(TmSystem::WarpTmLL, 4);
}

#[test]
fn two_warps_each_system() {
    for s in TmSystem::ALL {
        run_or_dump(s, 8);
    }
}
