//! Opacity across logical-timestamp rollovers: with an artificially tiny
//! timestamp limit the engine stalls the world and restarts every clock
//! mid-run, so transaction histories straddle rollover epochs. The
//! verification oracle must still certify them — a rollover reshuffles
//! *timestamps*, never the committed order's effects.

use gputm::config::{GpuConfig, TmSystem};
use gputm::runner::{RunOptions, Sim};
use workloads::atm::Atm;
use workloads::fuzz::{Fuzz, FuzzShape};

fn verified() -> RunOptions {
    RunOptions::default().verify(true)
}

fn tiny_limit_cfg(limit: u64) -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = 2;
    cfg.warps_per_core = 4;
    cfg.warp_width = 8;
    cfg.partitions = 2;
    cfg.ts_limit = limit;
    cfg
}

#[test]
fn rollover_straddling_atm_certifies_on_all_systems() {
    let w = Atm::new(64, 64, 4, 11);
    let cfg = tiny_limit_cfg(96);
    for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::Eapg] {
        let run = Sim::new(&cfg)
            .system(system)
            .run_with(&w, &verified())
            .unwrap_or_else(|e| panic!("{system}: {e}"));
        let m = run.metrics.as_ref().expect("no protocol violation");
        let verdict = run.verdict.as_ref().expect("verified run");
        if system == TmSystem::Getm {
            assert!(
                m.rollovers > 0,
                "a 96-tick limit must force rollovers under GETM"
            );
        }
        assert!(
            verdict.ok(),
            "{system} across rollovers: {}",
            verdict.summary()
        );
        // The opacity scan always runs (torn snapshots are waived, not
        // ignored, for systems without the guarantee).
        assert!(verdict.opacity_checked > 0 || m.aborts == 0);
    }
}

#[test]
fn rollover_straddling_contended_fuzz_certifies() {
    // The single-cell shape keeps timestamps climbing fast (every retry
    // bumps a warpts), so several epochs pass mid-history.
    let w = Fuzz::new(FuzzShape::SingleCell, 32, 4, 7);
    let cfg = tiny_limit_cfg(96);
    let run = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run_with(&w, &verified())
        .expect("run");
    let m = run.metrics.as_ref().expect("no protocol violation");
    let verdict = run.verdict.as_ref().expect("verified run");
    assert!(m.rollovers > 0, "hot fuzz must roll the clocks over");
    assert!(matches!(m.check, Some(Ok(()))), "{:?}", m.check);
    assert!(verdict.ok(), "{}", verdict.summary());
}

#[test]
fn repeated_rollover_verification_is_deterministic() {
    let w = Fuzz::new(FuzzShape::LockSteal, 24, 3, 3);
    let cfg = tiny_limit_cfg(80);
    let a = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run_with(&w, &verified())
        .expect("first");
    let b = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run_with(&w, &verified())
        .expect("second");
    assert_eq!(a.metrics, b.metrics);
    let (va, vb) = (a.verdict.expect("verdict"), b.verdict.expect("verdict"));
    assert_eq!(va.stats, vb.stats);
    assert_eq!(va.witness_len, vb.witness_len);
}
