//! End-to-end engine smoke tests: every workload under every TM system on
//! a small machine, with the workload's invariant checker applied to the
//! final memory image and determinism verified.

use gputm::config::{GpuConfig, TmSystem};
use gputm::runner::Sim;
use workloads::apriori::Apriori;
use workloads::atm::Atm;
use workloads::barneshut::BarnesHut;
use workloads::cloth::Cloth;
use workloads::cudacuts::CudaCuts;
use workloads::hashtable::HashTable;
use workloads::Workload;

fn small_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = 3;
    cfg.warps_per_core = 6;
    cfg.warp_width = 8;
    cfg.partitions = 3;
    cfg
}

fn run_all_systems(w: &dyn Workload) {
    for system in TmSystem::ALL {
        let m = Sim::new(&small_cfg())
            .system(system)
            .run(w)
            .unwrap_or_else(|e| panic!("{} under {system}: {e}", w.name()));
        assert!(m.cycles > 0);
        match &m.check {
            Some(Ok(())) => {}
            Some(Err(e)) => panic!("{} under {system} violated invariants: {e}", w.name()),
            None => panic!("check missing"),
        }
        if system.is_tm() {
            assert!(
                m.commits > 0,
                "{} under {system} committed nothing",
                w.name()
            );
        }
    }
}

#[test]
fn hashtable_all_systems() {
    run_all_systems(&HashTable::new("HT-T", 32, 128, 9));
}

#[test]
fn atm_all_systems() {
    run_all_systems(&Atm::new(64, 96, 2, 5));
}

#[test]
fn cloth_all_systems() {
    run_all_systems(&Cloth::cl(6, 6, 1));
    run_all_systems(&Cloth::clto(6, 6, 1));
}

#[test]
fn barneshut_all_systems() {
    run_all_systems(&BarnesHut::new(96, 3));
}

#[test]
fn cudacuts_all_systems() {
    run_all_systems(&CudaCuts::new(8, 6, 1));
}

#[test]
fn apriori_all_systems() {
    run_all_systems(&Apriori::new(16, 64, 2, 7));
}

#[test]
fn deterministic_across_runs() {
    let w = Atm::new(32, 64, 2, 5);
    let cfg = small_cfg();
    for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::FgLock] {
        let a = Sim::new(&cfg).system(system).run(&w).unwrap();
        let b = Sim::new(&cfg).system(system).run(&w).unwrap();
        assert_eq!(a.cycles, b.cycles, "{system} not deterministic");
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.xbar_bytes, b.xbar_bytes);
    }
}

#[test]
fn contention_drives_aborts() {
    // A single hot counter under GETM must see plenty of aborts; a
    // spread-out hashtable should see far fewer per commit.
    let hot = Apriori::new(2, 64, 2, 7);
    let cold = HashTable::new("HT-C", 4096, 128, 9);
    let cfg = small_cfg();
    let m_hot = Sim::new(&cfg).system(TmSystem::Getm).run(&hot).unwrap();
    let m_cold = Sim::new(&cfg).system(TmSystem::Getm).run(&cold).unwrap();
    assert!(
        m_hot.aborts_per_1k_commits() > m_cold.aborts_per_1k_commits(),
        "hot {} <= cold {}",
        m_hot.aborts_per_1k_commits(),
        m_cold.aborts_per_1k_commits()
    );
}

#[test]
fn concurrency_throttle_respected() {
    let w = Atm::new(64, 96, 2, 5);
    let cfg = small_cfg().with_concurrency(Some(1));
    let m = Sim::new(&cfg).system(TmSystem::Getm).run(&w).unwrap();
    m.assert_correct();
    // Severe throttling should show up as wait cycles.
    assert!(m.tx_wait_cycles > 0);
}

#[test]
fn getm_uses_tm_access_traffic() {
    let w = Atm::new(64, 96, 2, 5);
    let m = Sim::new(&small_cfg())
        .system(TmSystem::Getm)
        .run(&w)
        .unwrap();
    assert!(m.xbar_by_category.get("tm-access").copied().unwrap_or(0) > 0);
    assert!(m.xbar_by_category.get("commit").copied().unwrap_or(0) > 0);
    // GETM never validates at commit time.
    assert_eq!(
        m.xbar_by_category.get("validation").copied().unwrap_or(0),
        0
    );
}

#[test]
fn warptm_validates_at_commit() {
    let w = Atm::new(64, 96, 2, 5);
    let m = Sim::new(&small_cfg())
        .system(TmSystem::WarpTmLL)
        .run(&w)
        .unwrap();
    assert!(m.xbar_by_category.get("validation").copied().unwrap_or(0) > 0);
}

#[test]
fn eapg_broadcasts() {
    let w = Apriori::new(4, 64, 2, 7);
    let m = Sim::new(&small_cfg())
        .system(TmSystem::Eapg)
        .run(&w)
        .unwrap();
    assert!(m.eapg_broadcasts > 0);
    assert!(
        m.xbar_by_category
            .get("eapg-broadcast")
            .copied()
            .unwrap_or(0)
            > 0
    );
}
