//! Mutation testing for the verification oracle: build with the `sabotage`
//! feature and deliberately break each protocol, then insist the checker
//! catches the damage with a minimized counterexample. A verifier that
//! certifies a sabotaged engine is worthless — these tests are the
//! oracle's own oracle.
//!
//! Run with `cargo test -p gputm --features sabotage --test sabotage`.
#![cfg(feature = "sabotage")]

use gputm::config::{GpuConfig, Sabotage, TmSystem};
use gputm::runner::{RunOptions, Sim};
use gputm::verify::export_counterexample;
use workloads::fuzz::{Fuzz, FuzzShape};

fn hot_machine(sabotage: Sabotage) -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = 2;
    cfg.warps_per_core = 4;
    cfg.warp_width = 8;
    cfg.partitions = 2;
    cfg.sabotage = sabotage;
    cfg
}

/// The sabotaged run must fail certification, and the violation must come
/// with a non-empty, exportable counterexample trace.
///
/// Both this and [`assert_clean`] run the checker with
/// `require_opacity(true)`: no TM system here promises opaque aborts in
/// general (GETM's WAR aborts are asynchronous), but on these small
/// deterministic machines the faithful engines *do* deliver consistent
/// doomed snapshots — the clean baseline proves it — so a torn one is the
/// mutation's fingerprint, not background noise.
fn assert_caught(system: TmSystem, sabotage: Sabotage, w: &Fuzz) {
    let cfg = hot_machine(sabotage);
    let run = Sim::new(&cfg)
        .system(system)
        .require_opacity(true)
        .run_with(w, &RunOptions::default().verify(true))
        .expect("sabotaged run still completes");
    let verdict = run.verdict.as_ref().expect("verified run");
    assert!(
        !verdict.ok(),
        "{system} with {sabotage:?} must fail certification, got: {}",
        verdict.summary()
    );
    let v = &verdict.violations[0];
    assert!(
        !v.counterexample.is_empty(),
        "violation must carry a minimized counterexample: {v:?}"
    );
    let mut json = Vec::new();
    export_counterexample(v, &mut json).expect("counterexample exports");
    let text = String::from_utf8(json).expect("chrome trace is utf-8");
    assert!(
        text.contains("traceEvents"),
        "export must be a Chrome/Perfetto trace"
    );
}

/// Same workload, faithful engine: the baseline must certify, proving the
/// failures below come from the sabotage and not the workload.
fn assert_clean(system: TmSystem, w: &Fuzz) {
    let cfg = hot_machine(Sabotage::None);
    let run = Sim::new(&cfg)
        .system(system)
        .require_opacity(true)
        .run_with(w, &RunOptions::default().verify(true))
        .expect("clean run completes");
    let verdict = run.verdict.as_ref().expect("verified run");
    assert!(
        verdict.ok(),
        "{system} un-sabotaged must certify: {}",
        verdict.summary()
    );
}

#[test]
fn getm_ignoring_load_aborts_is_caught() {
    // The lock-steal shape loads cells it never stores, so a lane that
    // ignores a load-conflict abort carries the forbidden value forward
    // instead of having its own store conflict mask the damage (which is
    // why the single-cell shape can NOT catch this mutation: there every
    // poisoned load feeds a store on the same granule, and the store's own
    // conflict abort discards the attempt).
    let w = Fuzz::new(FuzzShape::LockSteal, 24, 3, 0xBAD1);
    assert_clean(TmSystem::Getm, &w);
    assert_caught(TmSystem::Getm, Sabotage::GetmIgnoreLoadAborts, &w);
}

#[test]
fn wtm_forged_read_validation_is_caught() {
    // Forged validation lets stale snapshots commit: classic lost updates
    // on the hot cell, which the sequential-oracle replay flags.
    let w = Fuzz::new(FuzzShape::SingleCell, 24, 3, 0xBAD2);
    assert_clean(TmSystem::WarpTmLL, &w);
    assert_caught(TmSystem::WarpTmLL, Sabotage::WtmForgeReadValidation, &w);
}
