//! Transaction-history fuzzing: random adversarial plans from every
//! [`FuzzShape`] run under every TM system, and every run must both pass
//! the workload's final-state arithmetic and earn a serializability +
//! opacity certificate from the verification oracle.
//!
//! Case counts are deliberately small (each case is a handful of full
//! cycle-level simulations); `PROPTEST_CASES` scales them up for deeper
//! soak runs.

use gputm::config::{GpuConfig, TmSystem};
use gputm::runner::{RunOptions, Sim};
use proptest::prelude::*;
use workloads::fuzz::{Fuzz, FuzzShape};

fn verified() -> RunOptions {
    RunOptions::default().verify(true)
}

fn machine(cores: u32, parts: u32) -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = cores;
    cfg.warps_per_core = 4;
    cfg.warp_width = 8;
    cfg.partitions = parts;
    cfg
}

fn shape_strategy() -> impl Strategy<Value = FuzzShape> {
    prop_oneof![
        Just(FuzzShape::SingleCell),
        Just(FuzzShape::LockSteal),
        Just(FuzzShape::MixedAliasing),
        Just(FuzzShape::Scatter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case simulates three full systems
        ..ProptestConfig::default()
    })]

    /// Every adversarial shape, under every TM system, certifies.
    #[test]
    fn fuzzed_histories_certify_on_all_systems(
        shape in shape_strategy(),
        threads in 8usize..48,
        txns in 1usize..5,
        seed in 0u64..10_000,
        cores in 1u32..4,
        parts in 1u32..4,
    ) {
        let w = Fuzz::new(shape, threads, txns, seed);
        let cfg = machine(cores, parts);
        for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::Eapg] {
            let run = Sim::new(&cfg)
                .system(system)
                .run_with(&w, &verified())
                .unwrap_or_else(|e| panic!("{shape} under {system}: {e}"));
            let verdict = run.verdict.as_ref().expect("verified run");
            let m = run.metrics.as_ref().unwrap_or_else(|| {
                panic!(
                    "{shape} under {system} died on a protocol violation: {}",
                    verdict.summary()
                )
            });
            prop_assert!(
                matches!(m.check, Some(Ok(()))),
                "{shape} under {system} failed its arithmetic: {:?}",
                m.check
            );
            prop_assert!(
                verdict.ok(),
                "{shape} under {system} failed certification: {}",
                verdict.summary()
            );
            prop_assert!(verdict.stats.committed > 0);
        }
    }

    /// The eager-lock (WarpTM-EL) variant also certifies on the
    /// lock-stealing and single-cell shapes, where its conflict handling
    /// differs most from lazy validation.
    #[test]
    fn eager_lock_variant_certifies(
        hot in prop_oneof![Just(FuzzShape::SingleCell), Just(FuzzShape::LockSteal)],
        threads in 8usize..32,
        seed in 0u64..10_000,
    ) {
        let w = Fuzz::new(hot, threads, 2, seed);
        let run = Sim::new(&machine(2, 2))
            .system(TmSystem::WarpTmEL)
            .run_with(&w, &verified())
            .expect("run");
        let verdict = run.verdict.as_ref().expect("verified run");
        prop_assert!(
            verdict.ok(),
            "{hot} under WarpTM-EL failed certification: {}",
            verdict.summary()
        );
    }
}

/// One deterministic, seed-pinned case per shape so CI exercises every
/// shape even at minimal proptest budgets.
#[test]
fn fixed_seed_cases_certify() {
    let cfg = machine(2, 2);
    for (i, shape) in FuzzShape::ALL.into_iter().enumerate() {
        let w = Fuzz::new(shape, 24, 3, 0xFA_57 + i as u64);
        for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::Eapg] {
            let run = Sim::new(&cfg)
                .system(system)
                .run_with(&w, &verified())
                .unwrap_or_else(|e| panic!("{shape} under {system}: {e}"));
            let verdict = run.verdict.as_ref().expect("verified run");
            assert!(
                verdict.ok(),
                "{shape} under {system}: {}",
                verdict.summary()
            );
        }
    }
}
