//! Idle skip-ahead edge cases.
//!
//! The engine may jump the clock over stretches where every warp is
//! parked, but the jump must be invisible: watchdog windows that straddle
//! the skipped region still run, probe gauges are still sampled at every
//! 64-cycle boundary, the cancel token is still polled on its cadence, and
//! the cycle budget still trips at the exact same point. Each test here
//! pins one of those seams with a workload that spends most of its life
//! idle.

use gpu_mem::Addr;
use gpu_simt::program::ScriptProgram;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};
use gputm::config::{GpuConfig, TmSystem};
use gputm::engine::Engine;
use gputm::metrics::Metrics;
use sim_core::{CancelToken, Recorder, SimError};
use workloads::{SyncMode, Workload};

/// Private-slot counter loop: each thread spins for `spin` cycles, then
/// increments its own word transactionally. No two threads share an
/// address, so the machine spends almost the whole run waiting on compute
/// timers — the idle-heaviest shape the engine can see.
struct IdleHeavy {
    threads: usize,
    rounds: u64,
    spin: u32,
}

impl IdleHeavy {
    fn slot(tid: usize) -> Addr {
        Addr(0x1000 + tid as u64 * 8)
    }
}

impl Workload for IdleHeavy {
    fn name(&self) -> &str {
        "IDLE"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn program(&self, tid: usize, _mode: SyncMode) -> BoxedProgram {
        let slot = Self::slot(tid);
        let mut ops = Vec::with_capacity(self.rounds as usize * 5);
        for round in 0..self.rounds {
            ops.push(Op::Compute(self.spin));
            ops.push(Op::TxBegin);
            ops.push(Op::TxLoad(slot));
            ops.push(Op::TxStore(slot, round + 1));
            ops.push(Op::TxCommit);
        }
        Box::new(ScriptProgram::new(ops))
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        for tid in 0..self.threads {
            let got = mem(Self::slot(tid));
            if got != self.rounds {
                return Err(format!(
                    "thread {tid}: slot holds {got}, want {}",
                    self.rounds
                ));
            }
        }
        Ok(())
    }
}

/// A thread program that spins and commits forever: the run only ends
/// when something outside the machine stops it.
struct EndlessSpin {
    slot: Addr,
    spin: u32,
    phase: u8,
    round: u64,
}

impl ThreadProgram for EndlessSpin {
    fn next(&mut self, _prev: OpResult) -> Op {
        let op = match self.phase {
            0 => Op::Compute(self.spin),
            1 => Op::TxBegin,
            2 => Op::TxLoad(self.slot),
            3 => Op::TxStore(self.slot, self.round + 1),
            _ => Op::TxCommit,
        };
        if self.phase == 4 {
            self.phase = 0;
            self.round += 1;
        } else {
            self.phase += 1;
        }
        op
    }

    fn rollback(&mut self) {
        // Rewind to the first op inside the (private, never-aborting)
        // transaction.
        self.phase = 2;
    }
}

/// An [`IdleHeavy`]-shaped workload that never terminates.
struct Endless {
    threads: usize,
    spin: u32,
}

impl Workload for Endless {
    fn name(&self) -> &str {
        "ENDLESS"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn program(&self, tid: usize, _mode: SyncMode) -> BoxedProgram {
        Box::new(EndlessSpin {
            slot: IdleHeavy::slot(tid),
            spin: self.spin,
            phase: 0,
            round: 0,
        })
    }

    fn check(&self, _mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        Ok(())
    }
}

/// Runs `w` with the given loop path, returning metrics, trace, and the
/// workload's own invariant check.
fn run_path(
    w: &IdleHeavy,
    cfg: &GpuConfig,
    idle_skip: bool,
) -> (Metrics, String, Result<(), String>) {
    let rec = Recorder::recording(1 << 21);
    let mut e = Engine::new(w, TmSystem::Getm, cfg).expect("engine builds");
    e.set_idle_skip(idle_skip);
    e.attach_recorder(rec.clone());
    let m = e.run().expect("run completes");
    let check = w.check(&e.memory_reader());
    let text = rec
        .bus()
        .expect("recording recorder has a bus")
        .borrow()
        .serialize_text();
    (m, text, check)
}

/// Watchdog windows that start or end inside a skipped region must still
/// be accounted: an odd window length guarantees check cycles land at
/// unaligned points all over the skipped spans.
#[test]
fn watchdog_windows_straddle_skipped_regions() {
    let mut cfg = GpuConfig::tiny_test();
    cfg.watchdog.window = 1013;
    let w = IdleHeavy {
        threads: 32,
        rounds: 12,
        spin: 3000,
    };
    let (m_off, t_off, c_off) = run_path(&w, &cfg, false);
    let (m_on, t_on, c_on) = run_path(&w, &cfg, true);
    c_off.expect("legacy path satisfies the workload invariant");
    c_on.expect("skip path satisfies the workload invariant");
    assert_eq!(m_off, m_on, "watchdog accounting diverged across a skip");
    assert_eq!(t_off, t_on, "traces diverged with a straddling watchdog");
}

/// Probe gauges sample every 64 cycles while tracing. A skip over
/// thousands of idle cycles must synthesize exactly the samples the
/// cycle-by-cycle loop would have emitted.
#[test]
fn probe_gauges_are_synthesized_across_jumps() {
    let cfg = GpuConfig::tiny_test();
    let w = IdleHeavy {
        threads: 8,
        rounds: 6,
        spin: 5000,
    };
    let (m_off, t_off, _) = run_path(&w, &cfg, false);
    let (m_on, t_on, _) = run_path(&w, &cfg, true);
    assert_eq!(m_off, m_on);
    assert!(
        t_on.contains("vu-backlog"),
        "idle-heavy traced run must contain probe samples"
    );
    assert_eq!(t_off, t_on, "probe samples diverged across a jump");
}

/// The cancel token is polled every 8192 cycles. A skip must never jump
/// over a poll point, so cancellation is always noticed at a poll
/// boundary no matter how long the idle stretch it interrupts.
#[test]
fn cancellation_lands_on_a_poll_boundary_despite_skips() {
    let mut cfg = GpuConfig::tiny_test();
    cfg.max_cycles = u64::MAX;
    let w = Endless {
        threads: 32,
        spin: 40_000,
    };
    let mut e = Engine::new(&w, TmSystem::Getm, &cfg).expect("engine builds");
    e.set_idle_skip(true);
    let token = CancelToken::new();
    e.attach_cancel(token.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        token.cancel();
    });
    let err = e.run().expect_err("cancelled run must not complete");
    canceller.join().expect("canceller thread");
    match err {
        SimError::Interrupted { cycle } => {
            assert_eq!(
                cycle % 0x2000,
                0,
                "cancellation noticed off the poll cadence (cycle {cycle})"
            );
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

/// A cycle budget that lands mid-skip must still trip at exactly the
/// budget: the skip target is capped at `max_cycles`.
#[test]
fn cycle_limit_trips_identically_when_it_lands_mid_skip() {
    let mut cfg = GpuConfig::tiny_test();
    cfg.max_cycles = 12_345; // deliberately not a multiple of any cadence
    let w = IdleHeavy {
        threads: 32,
        rounds: 1000,
        spin: 7000,
    };
    let mut results = Vec::new();
    for idle_skip in [false, true] {
        let rec = Recorder::recording(1 << 21);
        let mut e = Engine::new(&w, TmSystem::Getm, &cfg).expect("engine builds");
        e.set_idle_skip(idle_skip);
        e.attach_recorder(rec.clone());
        let err = e.run().expect_err("budget must trip");
        assert_eq!(
            err,
            SimError::CycleLimitExceeded { limit: 12_345 },
            "idle_skip={idle_skip}"
        );
        results.push(
            rec.bus()
                .expect("recording recorder has a bus")
                .borrow()
                .serialize_text(),
        );
    }
    assert_eq!(
        results[0], results[1],
        "pre-limit traces diverged between loop paths"
    );
}
