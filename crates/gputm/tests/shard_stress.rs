//! Property-based stress for the sharded execution engine: random machine
//! shapes, shard counts, and adversarial workloads must always produce
//! metrics bit-identical to serial execution. This is the fuzzer for the
//! barrier/mailbox machinery — uneven shard splits, empty shards (more
//! threads than cores), the up-crossbar parallelism threshold straddled in
//! both directions, and idle skip-ahead windows with all shards inert.
//!
//! Case counts are small by default (every case runs full simulations
//! twice); `PROPTEST_CASES` scales them up for soak runs.

use gputm::config::{GpuConfig, TmSystem};
use gputm::exec::ExecMode;
use gputm::runner::{RunOptions, Sim};
use proptest::prelude::*;
use workloads::fuzz::{Fuzz, FuzzShape};

fn machine(cores: u32, parts: u32) -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = cores;
    cfg.warps_per_core = 4;
    cfg.warp_width = 8;
    cfg.partitions = parts;
    cfg
}

fn shape_strategy() -> impl Strategy<Value = FuzzShape> {
    prop_oneof![
        Just(FuzzShape::SingleCell),
        Just(FuzzShape::LockSteal),
        Just(FuzzShape::MixedAliasing),
        Just(FuzzShape::Scatter),
    ]
}

fn system_strategy() -> impl Strategy<Value = TmSystem> {
    prop_oneof![
        Just(TmSystem::Getm),
        Just(TmSystem::WarpTmLL),
        Just(TmSystem::Eapg),
        Just(TmSystem::FgLock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// The core property: for any machine shape, shard count, and
    /// workload, `Sharded { threads }` is observationally identical to
    /// `Serial`. Thread counts run past the core count on purpose so some
    /// shards own zero cores and zero partitions.
    #[test]
    fn sharded_always_matches_serial(
        shape in shape_strategy(),
        system in system_strategy(),
        threads in 8usize..48,
        txns in 1usize..4,
        seed in 0u64..10_000,
        cores in 1u32..6,
        parts in 1u32..5,
        shard_threads in 2usize..10,
    ) {
        let w = Fuzz::new(shape, threads, txns, seed);
        let cfg = machine(cores, parts);
        let serial = Sim::new(&cfg)
            .system(system)
            .run(&w)
            .unwrap_or_else(|e| panic!("{shape} under {system} (serial): {e}"));
        let sharded = Sim::new(&cfg)
            .system(system)
            .run_with(
                &w,
                &RunOptions::default().exec(ExecMode::Sharded { threads: shard_threads }),
            )
            .unwrap_or_else(|e| panic!("{shape} under {system} ({shard_threads} shards): {e}"))
            .metrics
            .expect("unverified runs always carry metrics");
        prop_assert_eq!(
            serial, sharded,
            "{} under {} diverged at {} shard threads on a {}x{} machine",
            shape, system, shard_threads, cores, parts
        );
    }

    /// Sparse workloads leave long idle stretches where every shard is
    /// inert and the engine takes its skip-ahead path; the sharded loop
    /// must cross those windows without disturbing the cycle count.
    #[test]
    fn idle_skip_ahead_is_shard_invariant(
        seed in 0u64..10_000,
        shard_threads in 2usize..9,
    ) {
        // One warp's worth of threads on a 4-core machine: three cores
        // never issue, and between that warp's memory round trips the
        // whole machine is idle.
        let w = Fuzz::new(FuzzShape::Scatter, 8, 2, seed);
        let cfg = machine(4, 2);
        let serial = Sim::new(&cfg).system(TmSystem::Getm).run(&w).expect("serial");
        let sharded = Sim::new(&cfg)
            .system(TmSystem::Getm)
            .run_with(
                &w,
                &RunOptions::default().exec(ExecMode::Sharded { threads: shard_threads }),
            )
            .expect("sharded")
            .metrics
            .expect("metrics");
        prop_assert_eq!(serial, sharded);
    }

    /// The sequential-consistency sanity floor: whatever the shard count,
    /// the workload's own final-state arithmetic must still pass (this
    /// would catch a bug that broke serial and sharded *identically*,
    /// which the equality property above cannot).
    #[test]
    fn sharded_runs_pass_workload_arithmetic(
        shape in shape_strategy(),
        seed in 0u64..10_000,
        shard_threads in 2usize..8,
    ) {
        let w = Fuzz::new(shape, 24, 3, seed);
        let m = Sim::new(&machine(3, 3))
            .system(TmSystem::Getm)
            .run_with(
                &w,
                &RunOptions::default().exec(ExecMode::Sharded { threads: shard_threads }),
            )
            .expect("run")
            .metrics
            .expect("metrics");
        prop_assert!(
            matches!(m.check, Some(Ok(()))),
            "{} failed its arithmetic sharded: {:?}",
            shape,
            m.check
        );
    }
}

/// A single core and a single partition still shard (into one populated
/// shard plus empties) — the degenerate split must not wedge the barriers.
#[test]
fn single_core_machine_survives_many_shards() {
    let w = Fuzz::new(FuzzShape::SingleCell, 16, 3, 0x1C0);
    let cfg = machine(1, 1);
    let serial = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run(&w)
        .expect("serial");
    for threads in [2, 5, 8] {
        let sharded = Sim::new(&cfg)
            .system(TmSystem::Getm)
            .run_with(
                &w,
                &RunOptions::default().exec(ExecMode::Sharded { threads }),
            )
            .expect("sharded")
            .metrics
            .expect("metrics");
        assert_eq!(serial, sharded, "degenerate split diverged at {threads}");
    }
}
