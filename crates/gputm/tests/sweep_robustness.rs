//! Fault-isolated sweeps through the public API: a livelocking cell is
//! contained as a structured failure, an interrupted campaign resumes
//! bit-identically, and the journal tracks incomplete campaigns.

use gputm::config::{GpuConfig, TmSystem, WatchdogConfig};
use gputm::prelude::*;
use gputm::sweep::{run_sweep_report, sweep_digest, SweepJournal};
use std::path::PathBuf;

fn healthy_cell(b: Benchmark) -> CellSpec {
    CellSpec::new(b, Scale::Fast, TmSystem::Getm, GpuConfig::tiny_test())
}

/// A cell doomed by construction: a hair-trigger watchdog with the
/// serialization fallback disabled declares livelock before the first
/// commit can land (every first access is a ~100-cycle LLC round trip).
fn doomed_cell() -> CellSpec {
    let mut cfg = GpuConfig::tiny_test();
    cfg.watchdog = WatchdogConfig {
        enabled: true,
        window: 50,
        escalate_after: 1,
        serialize_after: 2,
        livelock_after: 2,
    }
    .without_fallback();
    CellSpec::new(Benchmark::Atm, Scale::Fast, TmSystem::Getm, cfg)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("getm-sweeprob-{tag}-{}", std::process::id()))
}

#[test]
fn livelocking_cell_surfaces_as_failure_and_spares_siblings() {
    let spec = ExperimentSpec::from_cells(vec![
        healthy_cell(Benchmark::Atm),
        doomed_cell(),
        healthy_cell(Benchmark::HtH),
    ]);
    let opts = SweepOptions::new()
        .threads(2)
        .failure_policy(FailurePolicy::CollectAll);
    let report = run_sweep_report(&spec, &opts);
    assert_eq!(report.outcomes.len(), 2, "siblings must complete");
    assert_eq!(report.skipped, 0);
    assert_eq!(report.failures.len(), 1);
    let f = &report.failures[0];
    assert!(
        matches!(&f.error, FailureKind::Sim(SimError::Livelock(_))),
        "expected a typed livelock, got {:?}",
        f.error
    );
    assert!(f.to_string().contains("livelock"), "{f}");
    for o in &report.outcomes {
        o.metrics.assert_correct();
    }
}

#[test]
fn fail_fast_sweep_skips_work_after_a_doomed_cell() {
    // Serial + doomed first: everything behind it is skipped unclaimed.
    let spec = ExperimentSpec::from_cells(vec![
        doomed_cell(),
        healthy_cell(Benchmark::Atm),
        healthy_cell(Benchmark::HtH),
    ]);
    let opts = SweepOptions::new().threads(1);
    let report = run_sweep_report(&spec, &opts);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.skipped, 2);
    assert!(report.outcomes.is_empty());
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let all = vec![
        healthy_cell(Benchmark::Atm),
        healthy_cell(Benchmark::HtH),
        healthy_cell(Benchmark::Cc),
        healthy_cell(Benchmark::Ap),
    ];

    // Reference: the uninterrupted campaign, its own cache directory.
    let ref_dir = tmp_dir("ref");
    let opts = SweepOptions::new()
        .threads(2)
        .cache(ResultCache::new(&ref_dir));
    let reference = run_sweep(&ExperimentSpec::from_cells(all.clone()), &opts).unwrap();

    // "Crashed" campaign: only the first two cells ever completed
    // (exactly the disk state a SIGKILL after two journal appends
    // leaves), then the full sweep is rerun with resume on.
    let crash_dir = tmp_dir("crash");
    let opts = SweepOptions::new()
        .threads(2)
        .cache(ResultCache::new(&crash_dir));
    run_sweep(&ExperimentSpec::from_cells(all[..2].to_vec()), &opts).unwrap();
    let resumed = run_sweep(
        &ExperimentSpec::from_cells(all.clone()),
        &opts.clone().resume(true),
    )
    .unwrap();

    assert_eq!(reference.len(), resumed.len());
    for (a, b) in reference.iter().zip(&resumed) {
        assert_eq!(
            a.metrics,
            b.metrics,
            "resumed metrics must be bit-identical ({})",
            a.cell.label()
        );
    }
    // The first two cells were recalled, not recomputed.
    assert!(resumed[0].cached && resumed[1].cached);
    assert!(!resumed[2].cached && !resumed[3].cached);

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn journal_outlives_failed_campaigns_and_resume_recalls_survivors() {
    let dir = tmp_dir("journal");
    std::fs::remove_dir_all(&dir).ok();
    let cells = vec![
        healthy_cell(Benchmark::Atm),
        doomed_cell(),
        healthy_cell(Benchmark::HtH),
    ];
    let spec = ExperimentSpec::from_cells(cells.clone());
    let digest = sweep_digest(&cells);
    let opts = SweepOptions::new()
        .threads(1)
        .cache(ResultCache::new(&dir))
        .failure_policy(FailurePolicy::CollectAll);

    let first = run_sweep_report(&spec, &opts);
    assert!(!first.is_complete());
    // The journal survives an incomplete campaign and names exactly the
    // completed cells.
    let journal = SweepJournal::open(&dir, &digest, true).expect("journal");
    assert_eq!(journal.completed(), 2);
    assert!(journal.is_completed(&cells[0].cache_key()));
    assert!(!journal.is_completed(&cells[1].cache_key()));
    drop(journal);

    // Resuming recalls the survivors from disk and re-fails the doomed
    // cell deterministically.
    let resumed = run_sweep_report(&spec, &opts.clone().resume(true));
    assert_eq!(resumed.outcomes.len(), 2);
    assert!(resumed.outcomes.iter().all(|o| o.cached));
    assert_eq!(resumed.failures.len(), 1);

    // A fully healthy campaign deletes its journal on completion.
    let healthy = vec![healthy_cell(Benchmark::Atm), healthy_cell(Benchmark::HtH)];
    let healthy_digest = sweep_digest(&healthy);
    let report = run_sweep_report(&ExperimentSpec::from_cells(healthy), &opts);
    assert!(report.is_complete());
    assert!(
        !dir.join(format!("sweep-{healthy_digest}.journal")).exists(),
        "a completed campaign must leave no journal behind"
    );

    std::fs::remove_dir_all(&dir).ok();
}
