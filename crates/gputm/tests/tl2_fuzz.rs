//! Property-based cross-validation of the TL2 backend: randomized tiny
//! transactional programs run on real OS threads, and every recorded
//! history — genuinely nondeterministic interleavings, not simulator
//! schedules — must be certified serializable *and opaque* by the oracle,
//! with the workload's own invariants intact.
//!
//! `PROPTEST_CASES` scales the randomized sweep; the volume test below
//! additionally pins the ISSUE acceptance floor of ten thousand
//! oracle-certified transactional attempts at eight worker threads.

mod common;

use common::CounterStress;
use gputm::prelude::*;
use proptest::prelude::*;
use workloads::fuzz::{Fuzz, FuzzShape};
use workloads::hashtable::HashTable;

/// Runs one program on TL2, asserts invariants + strict (opaque) oracle
/// verdict, and returns the number of transactional attempts certified.
fn certify_on_tl2(prog: &TxProgram, threads: usize, seed: u64) -> u64 {
    let opts = BackendOptions::default()
        .record_history(true)
        .threads(threads)
        .seed(seed);
    let out = Tl2Backend::new()
        .execute(prog, &opts)
        .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", prog.name()));
    out.check(prog)
        .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", prog.name()));
    let history = out.history.as_ref().expect("recording run carries history");
    let attempts = history.stats().attempts;
    let verdict = out.verdict(prog, true).expect("history recorded");
    assert!(
        verdict.ok(),
        "{} at {threads} threads seed {seed:#x}: {}",
        prog.name(),
        verdict.summary()
    );
    attempts
}

/// A tiny randomized TxProgram: one of the adversarial fuzz shapes, a
/// small hashtable, or the contended counter.
fn tiny_program() -> impl Strategy<Value = TxProgram> {
    let fuzz = (0..FuzzShape::ALL.len(), 8usize..24, 0u64..1_000_000)
        .prop_map(|(i, threads, seed)| Fuzz::new(FuzzShape::ALL[i], threads, 2, seed).tx_program());
    let ht = (32u64..256, 16usize..128, 0u64..1_000_000).prop_map(|(buckets, inserts, seed)| {
        HashTable::new("HT-fuzz", buckets, inserts, seed).tx_program()
    });
    let counter = (2usize..12, 2usize..20, 0u32..128)
        .prop_map(|(threads, rounds, pad)| CounterStress::new(threads, rounds, pad).tx_program());
    prop_oneof![fuzz, ht, counter]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn fuzzed_programs_are_opaque_on_tl2(
        prog in tiny_program(),
        threads in prop_oneof![Just(2usize), Just(4), Just(8)],
        seed in 0u64..1_000_000,
    ) {
        certify_on_tl2(&prog, threads, seed);
    }
}

/// ISSUE acceptance floor: at eight worker threads, at least ten thousand
/// transactional attempts pass through the oracle with every single run
/// certified opaque. The contended counter supplies the abort-heavy
/// attempts; the hashtable supplies breadth.
#[test]
fn ten_thousand_attempts_certified_at_eight_threads() {
    let mut attempts = 0u64;
    let mut seed = 0x10_000u64;
    while attempts < 10_000 {
        let stress = CounterStress::new(32, 40, 96);
        attempts += certify_on_tl2(&stress.tx_program(), 8, seed);
        let ht = HashTable::new("HT-vol", 512, 512, seed);
        attempts += certify_on_tl2(&ht.tx_program(), 8, seed);
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    }
    assert!(attempts >= 10_000, "only {attempts} attempts accumulated");
}
