//! Shared helpers for the backend/TL2 integration tests.

use gpu_mem::Addr;
use gpu_simt::{BoxedProgram, Op, OpResult, ThreadProgram};
use workloads::{MemSpan, Region, SyncMode, TxProgram, Workload};

/// A deliberately contended workload: `threads` logical threads each
/// increment one shared counter `rounds` times inside a transaction, with
/// a [`Op::Compute`] pad between the read and the write stretching the
/// race window so concurrent attempts genuinely overlap on host threads.
///
/// Correct TM of any flavor must serialize the increments: the counter
/// ends at exactly `threads * rounds`. A TM that loses an update (the TL2
/// sabotage mutation skips commit-time read revalidation) fails both the
/// invariant check and the oracle.
#[derive(Debug, Clone)]
pub struct CounterStress {
    pub threads: usize,
    pub rounds: usize,
    /// Compute pad (spin iterations) between the transactional read and
    /// write.
    pub pad: u32,
}

const CELL: Region = Region::new(0x9000_0000, 8);

impl CounterStress {
    pub fn new(threads: usize, rounds: usize, pad: u32) -> Self {
        CounterStress {
            threads,
            rounds,
            pad,
        }
    }

    pub fn tx_program(&self) -> TxProgram {
        TxProgram::new(Box::new(self.clone()), vec![MemSpan::of_region(CELL, 1)])
    }
}

impl Workload for CounterStress {
    fn name(&self) -> &str {
        "counter-stress"
    }

    fn initial_memory(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn program(&self, _tid: usize, _mode: SyncMode) -> BoxedProgram {
        Box::new(CounterThread {
            rounds: self.rounds,
            pad: self.pad,
            done: 0,
            step: 0,
            seen: 0,
        })
    }

    fn check(&self, mem: &dyn Fn(Addr) -> u64) -> Result<(), String> {
        let want = (self.threads * self.rounds) as u64;
        let got = mem(CELL.at(0));
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "counter: expected {want} ({} threads x {} rounds), found {got}",
                self.threads, self.rounds
            ))
        }
    }
}

struct CounterThread {
    rounds: usize,
    pad: u32,
    /// Completed increments.
    done: usize,
    /// Position inside the current transaction (0 = before begin).
    step: u8,
    /// Value loaded by the current attempt.
    seen: u64,
}

impl ThreadProgram for CounterThread {
    fn next(&mut self, prev: OpResult) -> Op {
        // Reaching step 5 means the previous TxCommit succeeded (on
        // failure the runtime calls rollback instead, which rewinds to
        // step 1) — only now is the increment durable.
        if self.step == 5 {
            self.step = 0;
            self.done += 1;
        }
        if self.done == self.rounds {
            return Op::Done;
        }
        self.step += 1;
        match self.step {
            1 => Op::TxBegin,
            2 => Op::TxLoad(CELL.at(0)),
            3 => {
                self.seen = prev.value();
                Op::Compute(self.pad)
            }
            4 => Op::TxStore(CELL.at(0), self.seen + 1),
            5 => Op::TxCommit,
            _ => unreachable!("counter thread has five steps"),
        }
    }

    fn rollback(&mut self) {
        // Back to the first op inside the transaction; the runtime
        // re-issues TxBegin implicitly, so the next op is the load.
        self.step = 1;
    }
}
