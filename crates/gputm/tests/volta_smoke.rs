//! End-to-end smoke of the Volta-class memory tier: every TM system must
//! run to completion on the `tiny_volta` machine (sectored streaming L1,
//! xor-hashed banked LLC, HBM pseudo-channel timing), populate the
//! memory-tier counters the Fermi model cannot produce, and stay
//! bit-identical between serial and sharded execution — the HBM engine
//! state (bank/channel busy horizons, bounded in-flight queue) is
//! per-partition mutable state and must obey the same canonical-order
//! determinism contract as the LLC tag arrays.

use gputm::prelude::*;

#[test]
fn every_system_completes_on_the_volta_tier() {
    let cfg = GpuConfig::tiny_volta();
    cfg.validate().expect("tiny_volta is a valid machine");
    for system in TmSystem::ALL {
        let w = Benchmark::HtM.build(Scale::Fast);
        let m = Sim::new(&cfg)
            .system(system)
            .run(w.as_ref())
            .unwrap_or_else(|e| panic!("HT-M under {system} on volta tier: {e}"));
        // FGLock is the non-transactional baseline: it locks instead of
        // committing, so only progress (cycles) is asserted for it.
        if system != TmSystem::FgLock {
            assert!(m.commits > 0, "{system}: no commits on the volta tier");
        }
        assert!(m.cycles > 0, "{system}: empty run on the volta tier");
        assert!(
            m.dram_accesses > 0,
            "{system}: volta runs must count DRAM accesses"
        );
        // The xor-hash interleave must keep partition pressure balanced
        // (the gauge is None only below its significance floor).
        if let Some(imb) = m.partition_imbalance {
            assert!(
                imb < 10.0,
                "{system}: xor-hash interleave left {imb:.1}x partition imbalance"
            );
        }
    }
}

#[test]
fn volta_tier_metrics_differ_from_fermi_on_the_same_workload() {
    // Same workload, same scale: the two memory models must actually
    // produce different timing (if they agreed, the tier would be dead
    // config). The volta tier also surfaces sector misses, which the
    // unsectored fermi arrays can never count.
    let w = Benchmark::HtH.build(Scale::Fast);
    let run = |cfg: &GpuConfig| {
        Sim::new(cfg)
            .system(TmSystem::Getm)
            .run(w.as_ref())
            .expect("run completes")
    };
    let fermi = run(&GpuConfig::tiny_test());
    let volta = run(&GpuConfig::tiny_volta());
    assert_ne!(
        fermi.cycles, volta.cycles,
        "fermi and volta tiers produced identical timing"
    );
    assert_eq!(
        fermi.l1_sector_misses + fermi.llc_sector_misses,
        0,
        "unsectored fermi arrays cannot have sector misses"
    );
    assert_eq!(
        fermi.dram_queue_stalls, 0,
        "the fixed-latency fermi model has no HBM queue"
    );
    // Both machines ran the same program to completion.
    assert_eq!(fermi.commits, volta.commits);
}

#[test]
fn volta_tier_is_bit_identical_between_serial_and_sharded() {
    let cfg = GpuConfig::tiny_volta();
    let w = Benchmark::Atm.build(Scale::Fast);
    for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::Eapg] {
        let serial = Sim::new(&cfg)
            .system(system)
            .run(w.as_ref())
            .expect("serial run");
        for threads in [2, 3] {
            let sharded = Sim::new(&cfg)
                .system(system)
                .run_with(
                    w.as_ref(),
                    &RunOptions::default().exec(ExecMode::Sharded { threads }),
                )
                .expect("sharded run")
                .metrics
                .expect("unverified runs carry metrics");
            assert_eq!(
                serial, sharded,
                "{system} volta tier diverged at {threads} shard threads"
            );
        }
    }
}

#[test]
fn volta_runs_certify_under_the_history_oracle() {
    // The memory tier changes timing only — a verified run on the volta
    // machine must still serialize. This guards against the HBM path
    // reordering value capture relative to commit application.
    let w = Benchmark::HtH.build(Scale::Fast);
    let out = Sim::new(&GpuConfig::tiny_volta())
        .system(TmSystem::Getm)
        .run_with(w.as_ref(), &RunOptions::default().verify(true))
        .expect("verified run completes");
    let verdict = out.verdict.expect("verify(true) always yields a verdict");
    assert!(
        verdict.ok(),
        "volta-tier GETM run failed certification: {}",
        verdict.summary()
    );
}
