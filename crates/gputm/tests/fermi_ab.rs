//! Fermi-preset A/B regression guard.
//!
//! The modern memory-model tier (sectored caches, hashed interleave, HBM
//! timing — DESIGN.md §16) is additive behind config: a
//! [`GpuConfig::fermi_15core`] run must stay **bit-identical** to the
//! tree that predates the tier. These fingerprints were captured from
//! that tree and committed; if a refactor of `gpu-mem` or the engine's
//! memory path shifts any of them, the Fermi model changed behaviour and
//! every published figure is in question.
//!
//! The fingerprint covers the headline metrics *and* an FNV-1a digest of
//! the full serialized event stream, so both timing and event ordering
//! are pinned. New metrics fields added by later PRs are deliberately
//! outside the fingerprint: the contract is that *pre-existing*
//! observables never move.
//!
//! To regenerate after an intentional model change (requires a ROADMAP
//! decision, not a casual rerun):
//!
//! ```text
//! FERMI_AB_PRINT=1 cargo test -p gputm --release --test fermi_ab -- --nocapture
//! ```

use gputm::config::{GpuConfig, TmSystem};
use gputm::engine::Engine;
use gputm::metrics::Metrics;
use sim_core::hash::{fnv1a_64, FNV_OFFSET};
use sim_core::Recorder;
use workloads::suite::{Benchmark, Scale};

/// Cells pinned by the guard: every TM system on a contended and a
/// mixed-contention benchmark, plus GETM across the rest of the suite's
/// `TxProgram`-independent benchmarks, all on the paper's 15-core Fermi.
fn cells() -> Vec<(Benchmark, TmSystem)> {
    let mut v = Vec::new();
    for system in TmSystem::ALL {
        v.push((Benchmark::Atm, system));
        v.push((Benchmark::HtH, system));
    }
    for b in [Benchmark::HtM, Benchmark::HtL, Benchmark::Cl, Benchmark::Bh] {
        v.push((b, TmSystem::Getm));
    }
    v
}

/// The committed fingerprints: `label => fingerprint` (see
/// [`fingerprint`]), captured on the pre-tier tree.
const GOLDEN: &[(&str, &str)] = &[
    ("ATM/FGLock", "cyc=22327 cmt=0 abt=0 sil=0 txe=0 txw=0 xbar=3001200 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=0 abtv=0 l1=0000000000000000 llc=3fb405c7850e946d atom=32120 cas=943 roll=0 rt=0000000000000000 rounds=0000000000000000 vu=0000000000000000 data=0000000000000000 deg=false trace=2c49a6310da220c7"),
    ("HT-H/FGLock", "cyc=9527 cmt=0 abt=0 sil=0 txe=0 txw=0 xbar=1014880 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=0 abtv=0 l1=0000000000000000 llc=3fedde4f0c0cabd5 atom=12529 cas=4849 roll=0 rt=0000000000000000 rounds=0000000000000000 vu=0000000000000000 data=0000000000000000 deg=false trace=e8aa497ff6f7e65f"),
    ("ATM/WarpTM", "cyc=29903 cmt=15360 abt=668 sil=0 txe=2918100 txw=1859602 xbar=2143216 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=12 abtv=656 l1=0000000000000000 llc=3fd4a2c08e9f764e atom=0 cas=0 roll=0 rt=4081bf1f8697ef11 rounds=3ffc911111111111 vu=0000000000000000 data=0000000000000000 deg=false trace=dbe24756da892232"),
    ("HT-H/WarpTM", "cyc=9671 cmt=7680 abt=4818 sil=0 txe=967613 txw=784863 xbar=1095008 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=97 abtv=4721 l1=0000000000000000 llc=3fee139b22dbd212 atom=0 cas=0 roll=0 rt=40779e398345a169 rounds=400ef77777777777 vu=0000000000000000 data=0000000000000000 deg=false trace=9d3207893954fe0b"),
    ("ATM/WarpTM-EL", "cyc=12426 cmt=15360 abt=157 sil=0 txe=1252285 txw=746356 xbar=1509264 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=12 abtv=145 l1=0000000000000000 llc=3fc81c7f1b3b53e0 atom=0 cas=0 roll=0 rt=408337d0b87eb76c rounds=3ff4800000000000 vu=0000000000000000 data=0000000000000000 deg=false trace=7c0bb02240e2faed"),
    ("HT-H/WarpTM-EL", "cyc=6067 cmt=7680 abt=1062 sil=0 txe=635016 txw=425929 xbar=543272 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=51 abtv=1011 l1=0000000000000000 llc=3fecce2108c92528 atom=0 cas=0 roll=0 rt=407d5a3435729806 rounds=4002000000000000 vu=0000000000000000 data=0000000000000000 deg=false trace=3dbec1bd8158d11f"),
    ("ATM/EAPG", "cyc=29485 cmt=15360 abt=884 sil=0 txe=2891757 txw=1924081 xbar=2639264 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=12 abtv=565 l1=0000000000000000 llc=3fd7172e53abf4b2 atom=0 cas=0 roll=0 rt=407f45e1b4117e52 rounds=3fff555555555555 vu=0000000000000000 data=0000000000000000 deg=false trace=c7eacc9165cb7f38"),
    ("HT-H/EAPG", "cyc=9998 cmt=7680 abt=5195 sil=0 txe=1005130 txw=818129 xbar=1578840 meta=ffffffffffffffff stallocc=0 stallq=0 abtl=0 abts=0 abta=0 abtiw=97 abtv=4288 l1=0000000000000000 llc=3fee132c8bfe4e50 atom=0 cas=0 roll=0 rt=4075c4420b38960b rounds=4011444444444444 vu=0000000000000000 data=0000000000000000 deg=false trace=06683becd2a6a537"),
    ("ATM/GETM", "cyc=42041 cmt=15360 abt=22726 sil=0 txe=3696646 txw=1412469 xbar=4717616 meta=4005247f0dd62433 stallocc=6 stallq=112 abtl=9175 abts=19118 abta=22968 abtiw=19 abtv=0 l1=0000000000000000 llc=3fd8420750998a0e atom=0 cas=0 roll=0 rt=4074f6731b21826c rounds=400e5dddddddddde vu=40239f90ed34bcb2 data=405e0f60179dd673 deg=false trace=859f3bbc400080aa"),
    ("HT-H/GETM", "cyc=12080 cmt=7680 abt=9746 sil=0 txe=942954 txw=377273 xbar=1702208 meta=3ffaaf261ddafe35 stallocc=19 stallq=655 abtl=4235 abts=6674 abta=3489 abtiw=101 abtv=0 l1=0000000000000000 llc=3fed4b7fb4faa28a atom=0 cas=0 roll=0 rt=4069714a51cd5a95 rounds=4010555555555555 vu=4038370799b7c424 data=403c45458a741c5b deg=false trace=53c52d12928b703b"),
    ("HT-M/GETM", "cyc=11596 cmt=7680 abt=8338 sil=0 txe=879674 txw=258220 xbar=1577200 meta=4001e353f094f9dd stallocc=5 stallq=90 abtl=3890 abts=6184 abta=8868 abtiw=4 abtv=0 l1=0000000000000000 llc=3fe6ed04016a78fc atom=0 cas=0 roll=0 rt=40727bfd6149dc87 rounds=4007ddddddddddde vu=4034a7d2fa2e6f39 data=404b398edf4f95a4 deg=false trace=cf11dc40bd7bbf08"),
    ("HT-L/GETM", "cyc=11792 cmt=7680 abt=9076 sil=0 txe=933293 txw=286335 xbar=1642304 meta=4002a4a9f7f13115 stallocc=1 stallq=10 abtl=4032 abts=7182 abta=10945 abtiw=0 abtv=0 l1=0000000000000000 llc=3fe0d5858f7a6730 atom=0 cas=0 roll=0 rt=407376da2718dd0a rounds=4007111111111111 vu=403376d51ad44798 data=4052c628e0e144b2 deg=false trace=f2848994510d8f14"),
    ("CL/GETM", "cyc=79156 cmt=12640 abt=176524 sil=0 txe=6616306 txw=10445324 xbar=6134272 meta=3ff0000000000000 stallocc=28 stallq=4170 abtl=9207 abts=28124 abta=0 abtiw=125625 abtv=0 l1=0000000000000000 llc=3fefe6279889b507 atom=0 cas=0 roll=0 rt=405b6a800ea9a2fd rounds=403c6aefcc26e2d6 vu=3fe0ec937bee334d data=4049fa7ac6a808dc deg=false trace=387e188f32f3ac83"),
    ("BH/GETM", "cyc=85467 cmt=7680 abt=104526 sil=0 txe=8117410 txw=6399169 xbar=3406912 meta=3ff73b3a09b9c78a stallocc=47 stallq=2020 abtl=14393 abts=5895 abta=1816 abtiw=38050 abtv=0 l1=0000000000000000 llc=3feab96427731040 atom=0 cas=0 roll=0 rt=406b17ca60d1c8c6 rounds=4036633333333333 vu=3ff91e1f761a76e8 data=4050b8333d5a8589 deg=false trace=66bb3705d9c5bb7c"),
];

/// An explicit-field fingerprint of one run. Floats are formatted with
/// full precision via their bit patterns so "bit-identical" means exactly
/// that.
fn fingerprint(m: &Metrics, trace: &str) -> String {
    let f = |x: f64| x.to_bits();
    let of = |x: Option<f64>| x.map(|v| v.to_bits()).unwrap_or(u64::MAX);
    format!(
        "cyc={} cmt={} abt={} sil={} txe={} txw={} xbar={} meta={:016x} \
         stallocc={} stallq={} abtl={} abts={} abta={} abtiw={} abtv={} \
         l1={:016x} llc={:016x} atom={} cas={} roll={} rt={:016x} \
         rounds={:016x} vu={:016x} data={:016x} deg={} trace={:016x}",
        m.cycles,
        m.commits,
        m.aborts,
        m.silent_commits,
        m.tx_exec_cycles,
        m.tx_wait_cycles,
        m.xbar_bytes,
        of(m.mean_metadata_access_cycles),
        m.max_stall_occupancy,
        m.stall_queued,
        m.getm_aborts_load,
        m.getm_aborts_store,
        m.getm_aborts_approx,
        m.aborts_intra_warp,
        m.aborts_validation,
        f(m.l1_hit_rate),
        f(m.llc_hit_rate),
        m.atomics,
        m.cas_failures,
        m.rollovers,
        f(m.mean_access_rt),
        f(m.mean_rounds_per_region),
        f(m.mean_vu_queue_delay),
        f(m.mean_data_latency),
        m.degraded,
        fnv1a_64(trace.as_bytes(), FNV_OFFSET),
    )
}

fn run_cell(b: Benchmark, system: TmSystem) -> String {
    let cfg = GpuConfig::fermi_15core();
    let w = b.build(Scale::Fast);
    let rec = Recorder::recording(1 << 16);
    let mut e = Engine::new(w.as_ref(), system, &cfg).expect("engine builds");
    e.attach_recorder(rec.clone());
    let m = e.run().expect("fermi cell completes");
    let trace = rec
        .bus()
        .expect("recording recorder has a bus")
        .borrow()
        .serialize_text();
    fingerprint(&m, &trace)
}

#[test]
fn fermi_15core_is_bit_identical_to_the_pretier_tree() {
    let print = std::env::var("FERMI_AB_PRINT").is_ok();
    let mut failures = Vec::new();
    for (b, system) in cells() {
        let label = format!("{}/{}", b.name(), system.label());
        let actual = run_cell(b, system);
        if print {
            println!("    (\"{label}\", \"{actual}\"),");
            continue;
        }
        match GOLDEN.iter().find(|(l, _)| *l == label) {
            Some((_, want)) if *want == actual => {}
            Some((_, want)) => {
                failures.push(format!("{label}:\n  pinned  {want}\n  actual  {actual}"))
            }
            None => failures.push(format!("{label}: no pinned fingerprint")),
        }
    }
    assert!(
        failures.is_empty(),
        "fermi_15core drifted from the pre-tier tree:\n{}",
        failures.join("\n")
    );
}
