//! Golden-trace determinism: the event stream a traced cell produces is a
//! pure function of its [`CellSpec`] — byte-identical whether the cell
//! runs alone on the main thread or concurrently with a parallel sweep
//! hammering every worker core.
//!
//! This is the tracing companion to the sweep's serial-vs-parallel
//! metrics-equality test: if these streams ever diverge, some simulator
//! state leaked across runs (a global, an unseeded RNG, iteration over an
//! unordered map) and neither traces nor metrics can be trusted.

use gputm::config::{GpuConfig, TmSystem};
use gputm::sweep::{run_sweep, CellSpec, ExperimentSpec, SweepOptions};
use sim_core::Recorder;
use workloads::suite::{Benchmark, Scale};

fn traced_cell() -> CellSpec {
    CellSpec::new(
        Benchmark::Atm,
        Scale::Fast,
        TmSystem::Getm,
        GpuConfig::tiny_test(),
    )
}

/// Runs the cell with a fresh recorder and returns the serialized stream.
fn capture() -> (String, gputm::metrics::Metrics) {
    let rec = Recorder::recording(1 << 20);
    let metrics = traced_cell().run_traced(rec.clone()).expect("traced run");
    let bus = rec.bus().expect("recording recorder has a bus");
    let text = bus.borrow().serialize_text();
    assert_eq!(bus.borrow().dropped(), 0, "ring must not wrap in this test");
    (text, metrics)
}

#[test]
fn golden_trace_is_identical_across_serial_and_parallel_runs() {
    // Golden stream: serial, quiet machine.
    let (golden, golden_metrics) = capture();
    assert!(!golden.is_empty(), "the traced run must emit events");

    // Re-capture while a parallel sweep saturates the worker pool, and in
    // sibling threads racing each other — scheduling noise must not reach
    // the stream.
    let spec = ExperimentSpec::grid()
        .benchmarks([Benchmark::HtH])
        .systems([TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::FgLock])
        .base(GpuConfig::tiny_test())
        .build();
    std::thread::scope(|scope| {
        let sweep = scope.spawn(|| run_sweep(&spec, &SweepOptions::new().threads(3)));
        let racers: Vec<_> = (0..2).map(|_| scope.spawn(capture)).collect();
        for r in racers {
            let (text, metrics) = r.join().expect("racer thread");
            assert_eq!(text, golden, "event stream diverged under contention");
            assert_eq!(metrics, golden_metrics);
        }
        sweep
            .join()
            .expect("sweep thread")
            .expect("sweep must succeed");
    });

    // And the sweep path itself (untraced) still agrees with the traced
    // run's metrics: tracing is observational.
    let swept = traced_cell().run().expect("untraced run");
    assert_eq!(swept, golden_metrics);
}
