//! Integration tests for the sweep subsystem: parallel execution is
//! bit-identical to serial, and the on-disk result cache actually skips
//! re-simulation.

use gputm::config::{GpuConfig, TmSystem};
use gputm::sweep::{run_sweep, CellSpec, ExperimentSpec, ResultCache, SweepOptions};
use std::path::PathBuf;
use workloads::suite::{Benchmark, Scale};

fn small_spec() -> ExperimentSpec {
    ExperimentSpec::grid()
        .benchmarks([Benchmark::HtH])
        .systems([TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::FgLock])
        .base(GpuConfig::tiny_test())
        .build()
}

/// A scratch directory that cleans up after itself (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("getm-sweep-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let spec = small_spec();
    let serial = run_sweep(&spec, &SweepOptions::new().threads(1)).expect("serial");
    let parallel = run_sweep(&spec, &SweepOptions::new().threads(4)).expect("parallel");

    assert_eq!(serial.len(), spec.len());
    assert_eq!(parallel.len(), spec.len());
    for (s, p) in serial.iter().zip(&parallel) {
        // Same cell, same order...
        assert_eq!(s.cell.cache_key(), p.cell.cache_key());
        // ...and every metric equal, floats included: all engine
        // randomness derives from cfg.seed, so thread scheduling of the
        // sweep cannot leak into the results.
        assert_eq!(s.metrics, p.metrics, "{} diverged", s.cell.label());
        assert!(!s.cached && !p.cached);
        s.metrics.assert_correct();
    }
}

#[test]
fn cache_hit_skips_the_simulation() {
    let tmp = TempDir::new("hit");
    let spec = ExperimentSpec::grid()
        .benchmarks([Benchmark::HtH])
        .base(GpuConfig::tiny_test())
        .build();
    let cell = spec.cells()[0].clone();
    let opts = || {
        SweepOptions::new()
            .threads(1)
            .cache(ResultCache::new(&tmp.0))
    };

    // Cold: the cell simulates and its result lands in the cache.
    let cold = run_sweep(&spec, &opts()).expect("cold run");
    assert!(!cold[0].cached);
    let cache = ResultCache::new(&tmp.0);
    assert_eq!(cache.entry_count(), 1);
    assert_eq!(cache.load(&cell.cache_key()), Some(cold[0].metrics.clone()));

    // Warm: the cell is recalled, not recomputed.
    let warm = run_sweep(&spec, &opts()).expect("warm run");
    assert!(warm[0].cached);
    assert_eq!(warm[0].metrics, cold[0].metrics);

    // Proof that a hit bypasses the engine entirely: poison the cached
    // entry and observe the sweep return the poisoned metrics verbatim.
    let mut poisoned = cold[0].metrics.clone();
    poisoned.cycles += 123_456_789;
    cache.store(&cell.cache_key(), &poisoned).expect("store");
    let resurrected = run_sweep(&spec, &opts()).expect("poisoned run");
    assert!(resurrected[0].cached);
    assert_eq!(resurrected[0].metrics.cycles, poisoned.cycles);

    // Without the cache attached, the true result comes back.
    let fresh = run_sweep(&spec, &SweepOptions::new().threads(1)).expect("fresh");
    assert!(!fresh[0].cached);
    assert_eq!(fresh[0].metrics, cold[0].metrics);
}

#[test]
fn corrupt_cache_entries_fall_back_to_simulation() {
    let tmp = TempDir::new("corrupt");
    let spec = ExperimentSpec::from_cells(vec![CellSpec::new(
        Benchmark::HtH,
        Scale::Fast,
        TmSystem::FgLock,
        GpuConfig::tiny_test(),
    )]);
    let key = spec.cells()[0].cache_key();

    std::fs::create_dir_all(&tmp.0).unwrap();
    std::fs::write(tmp.0.join(format!("{key}.metrics")), b"not metrics").unwrap();

    let opts = SweepOptions::new()
        .threads(1)
        .cache(ResultCache::new(&tmp.0));
    let out = run_sweep(&spec, &opts).expect("run");
    assert!(!out[0].cached, "corrupt entry must be treated as a miss");
    out[0].metrics.assert_correct();
    // And the corrupt entry was repaired by the store that followed.
    assert_eq!(
        ResultCache::new(&tmp.0).load(&key),
        Some(out[0].metrics.clone())
    );
}
