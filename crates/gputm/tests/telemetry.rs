//! Integration tests for campaign telemetry: the event stream a sweep
//! emits is coherent (one terminal event per cell, bracketed by campaign
//! start/finish), equivalent across execution modes modulo timing fields,
//! and schema-valid JSONL on disk.

use gputm::config::{GpuConfig, TmSystem};
use gputm::sweep::{run_sweep, ExperimentSpec, ResultCache, SweepOptions};
use gputm::telemetry::{CampaignEvent, JsonlSink, MemorySink, Telemetry};
use gputm::ExecMode;
use std::path::PathBuf;
use workloads::suite::Benchmark;

fn small_spec() -> ExperimentSpec {
    ExperimentSpec::grid()
        .benchmarks([Benchmark::HtH])
        .systems([TmSystem::Getm, TmSystem::FgLock])
        .base(GpuConfig::tiny_test())
        .build()
}

/// A scratch directory that cleans up after itself (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("getm-tel-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Strips the wall-clock fields out of an event, leaving only the
/// deterministic payload two equivalent streams must agree on.
fn normalized(ev: &CampaignEvent) -> CampaignEvent {
    let mut e = ev.clone();
    match &mut e {
        CampaignEvent::CellFinished { elapsed_ms, .. } => *elapsed_ms = 0,
        CampaignEvent::Throughput {
            cells_per_sec,
            eta_ms,
            ..
        } => {
            *cells_per_sec = 0.0;
            *eta_ms = 0;
        }
        CampaignEvent::CampaignFinished { elapsed_ms, .. } => *elapsed_ms = 0,
        _ => {}
    }
    e
}

/// Runs the small grid on one sweep worker with a capture sink attached,
/// using `exec` for every cell, and returns (metrics, events).
fn run_captured(exec: Option<ExecMode>) -> (Vec<gputm::Metrics>, Vec<CampaignEvent>) {
    let (sink, captured) = MemorySink::new();
    let mut opts = SweepOptions::new()
        .threads(1)
        .telemetry(Telemetry::to_sinks(vec![Box::new(sink)]));
    if let Some(exec) = exec {
        opts = opts.cell_exec(exec);
    }
    let outcomes = run_sweep(&small_spec(), &opts).expect("sweep");
    let metrics = outcomes.into_iter().map(|o| o.metrics).collect();
    let events = captured
        .lock()
        .unwrap()
        .iter()
        .map(|(_, e)| e.clone())
        .collect();
    (metrics, events)
}

/// The acceptance criterion of the telemetry tentpole: a serial and a
/// sharded run of the same grid produce identical metrics and equivalent
/// event sequences modulo timing fields.
#[test]
fn serial_and_sharded_sweeps_emit_equivalent_streams() {
    let (serial_metrics, serial_events) = run_captured(None);
    let (sharded_metrics, sharded_events) = run_captured(Some(ExecMode::Sharded { threads: 2 }));

    assert_eq!(serial_metrics, sharded_metrics, "determinism contract");
    assert_eq!(
        serial_events.len(),
        sharded_events.len(),
        "event counts diverged:\n  serial: {:?}\n  sharded: {:?}",
        serial_events
            .iter()
            .map(CampaignEvent::kind)
            .collect::<Vec<_>>(),
        sharded_events
            .iter()
            .map(CampaignEvent::kind)
            .collect::<Vec<_>>(),
    );
    for (s, p) in serial_events.iter().zip(&sharded_events) {
        assert_eq!(normalized(s), normalized(p));
    }
}

/// Stream coherence: bracketed by campaign start/finish, every cell
/// queued then started, and exactly one terminal event per cell.
#[test]
fn stream_is_coherent() {
    let (_, events) = run_captured(None);
    let total = small_spec().len();

    assert!(matches!(
        events.first(),
        Some(CampaignEvent::CampaignStarted { resumed: 0, .. })
    ));
    assert!(matches!(
        events.last(),
        Some(CampaignEvent::CampaignFinished {
            failed: 0,
            skipped: 0,
            ..
        })
    ));
    for idx in 0..total {
        let of_cell: Vec<_> = events
            .iter()
            .filter(|e| e.cell_idx() == Some(idx))
            .collect();
        assert!(matches!(
            of_cell.first(),
            Some(CampaignEvent::CellQueued { .. })
        ));
        assert_eq!(
            of_cell.iter().filter(|e| e.is_terminal()).count(),
            1,
            "cell {idx} must have exactly one terminal event"
        );
    }
    // Throughput samples at every completion: deterministic event count.
    let samples = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::Throughput { .. }))
        .count();
    assert_eq!(samples, total);
}

/// A warm second run recalls every cell from the cache and says so.
#[test]
fn cache_hits_are_reported_as_such() {
    let tmp = TempDir::new("hits");
    let run = || {
        let (sink, captured) = MemorySink::new();
        let opts = SweepOptions::new()
            .threads(1)
            .cache(ResultCache::new(&tmp.0))
            .telemetry(Telemetry::to_sinks(vec![Box::new(sink)]));
        run_sweep(&small_spec(), &opts).expect("sweep");
        let events: Vec<CampaignEvent> = captured
            .lock()
            .unwrap()
            .iter()
            .map(|(_, e)| e.clone())
            .collect();
        events
    };
    let cold = run();
    let warm = run();
    let hits = |evs: &[CampaignEvent]| {
        evs.iter()
            .filter(|e| matches!(e, CampaignEvent::CellCacheHit { .. }))
            .count()
    };
    let total = small_spec().len();
    assert_eq!(hits(&cold), 0);
    assert_eq!(hits(&warm), total);
    // Cache hits skip the worker entirely: no started events either.
    assert!(!warm
        .iter()
        .any(|e| matches!(e, CampaignEvent::CellStarted { .. })));
    // The recalled cycles match what the cold run computed.
    let cycles_of = |evs: &[CampaignEvent], want: usize| {
        evs.iter().find_map(|e| match e {
            CampaignEvent::CellFinished { idx, cycles, .. } if *idx == want => Some(*cycles),
            CampaignEvent::CellCacheHit { idx, cycles, .. } if *idx == want => Some(*cycles),
            _ => None,
        })
    };
    for idx in 0..total {
        assert_eq!(cycles_of(&cold, idx), cycles_of(&warm, idx));
    }
}

/// The JSONL sink writes one schema-valid JSON object per line with
/// monotonically non-decreasing timestamps.
#[test]
fn jsonl_file_is_schema_valid() {
    let tmp = TempDir::new("jsonl");
    std::fs::create_dir_all(&tmp.0).unwrap();
    let path = tmp.0.join("campaign.telemetry.jsonl");
    let opts = SweepOptions::new()
        .threads(1)
        .telemetry(Telemetry::to_sinks(vec![Box::new(
            JsonlSink::create(&path).expect("create"),
        )]));
    run_sweep(&small_spec(), &opts).expect("sweep");

    let text = std::fs::read_to_string(&path).expect("read back");
    let mut last_t = 0u64;
    let mut kinds = Vec::new();
    for line in text.lines() {
        assert!(
            line.starts_with("{\"t_ms\":") && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        let t: u64 = line["{\"t_ms\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("t_ms is a number");
        assert!(t >= last_t, "timestamps must be monotone");
        last_t = t;
        let ev = line
            .split("\"ev\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("ev field present");
        kinds.push(ev.to_string());
    }
    assert_eq!(kinds.first().map(String::as_str), Some("campaign_started"));
    assert_eq!(kinds.last().map(String::as_str), Some("campaign_finished"));
    assert_eq!(
        kinds.iter().filter(|k| *k == "cell_finished").count(),
        small_spec().len()
    );
}
