//! Forward-progress watchdog behaviour: graceful degradation on the
//! designed-livelock workload, typed livelock reports when degradation is
//! disabled, and strict no-op behaviour on healthy runs.

use gputm::config::{GpuConfig, TmSystem, WatchdogConfig};
use gputm::runner::{RunOptions, Sim};
use sim_core::{CancelToken, SimError};
use workloads::fuzz::{Fuzz, FuzzShape};
use workloads::suite::{Benchmark, Scale};

fn tiny() -> GpuConfig {
    GpuConfig::tiny_test()
}

/// The AB/BA crossfire workload (16 threads = 4 tiny-config warps).
fn crossfire() -> Fuzz {
    Fuzz::new(FuzzShape::Livelock, 16, 3, 0xD06)
}

/// A watchdog wound so tight that the start-of-run window (before any
/// transaction can possibly commit: every access is a ~100-cycle LLC round
/// trip) counts as starvation. Deterministic by construction.
fn hair_trigger() -> WatchdogConfig {
    WatchdogConfig {
        enabled: true,
        window: 50,
        escalate_after: 1,
        serialize_after: 2,
        livelock_after: 5,
    }
}

#[test]
fn without_fallback_reports_typed_livelock() {
    let mut cfg = tiny();
    cfg.watchdog = hair_trigger().without_fallback();
    let err = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run(&crossfire())
        .expect_err("a hair-trigger watchdog with no fallback must give up");
    let SimError::Livelock(report) = err else {
        panic!("expected SimError::Livelock, got {err:?}");
    };
    assert_eq!(report.window, 50);
    assert!(report.detected_cycle >= 5 * 50);
    assert!(
        report.detected_cycle < 1_000,
        "livelock must be declared promptly, not at max_cycles"
    );
    assert!(
        report.last_progress_cycle < report.detected_cycle,
        "progress stopped before the declaration"
    );
    assert!(
        report.aborts > report.commits,
        "a livelock report implies an abort storm ({} aborts, {} commits)",
        report.aborts,
        report.commits
    );
    assert!(
        !report.hot_addrs.is_empty(),
        "the crossfire cells must show up as hot spots"
    );
    assert!(
        !report.starving_warps.is_empty(),
        "open regions mean starving warps"
    );
    // The report must render its numbers for operators.
    let msg = report.to_string();
    assert!(msg.contains("livelock at cycle"), "message: {msg}");
}

#[test]
fn fallback_completes_the_crossfire_degraded_and_correct() {
    let mut cfg = tiny();
    cfg.watchdog = WatchdogConfig {
        livelock_after: 100_000,
        ..hair_trigger()
    };
    let w = crossfire();
    let m = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run(&w)
        .expect("fallback must push the crossfire through");
    m.assert_correct();
    assert!(m.commits > 0);
    assert!(m.degraded, "the watchdog intervened; metrics must say so");
    assert!(m.watchdog_escalations > 0);
    assert!(
        m.serialized_commits > 0,
        "the machine was serialized before the first commit could land"
    );
}

#[test]
fn degraded_run_still_certifies() {
    let mut cfg = tiny();
    cfg.watchdog = WatchdogConfig {
        livelock_after: 100_000,
        ..hair_trigger()
    };
    let verified = Sim::new(&cfg)
        .system(TmSystem::Getm)
        .run_with(&crossfire(), &RunOptions::default().verify(true))
        .expect("verified run");
    let m = verified.metrics.as_ref().expect("run completed");
    let verdict = verified.verdict.as_ref().expect("verified run");
    assert!(m.degraded);
    m.assert_correct();
    verdict.assert_ok();
    assert!(verdict.stats.committed > 0);
}

#[test]
fn healthy_run_is_bit_identical_with_watchdog_on_or_off() {
    let w = Benchmark::Atm.build(Scale::Fast);
    let on = tiny();
    let mut off = tiny();
    off.watchdog = WatchdogConfig::disabled();
    for system in [TmSystem::Getm, TmSystem::WarpTmLL] {
        let a = Sim::new(&on).system(system).run(w.as_ref()).unwrap();
        let b = Sim::new(&off).system(system).run(w.as_ref()).unwrap();
        assert_eq!(a, b, "an untripped watchdog must be invisible ({system})");
        assert!(!a.degraded);
        assert_eq!(a.watchdog_escalations, 0);
    }
}

#[test]
fn fglock_runs_ignore_the_watchdog() {
    // FGLock never produces transactional commits, so a naive watchdog
    // would declare every lock-mode run livelocked. It must be inert.
    let mut cfg = tiny();
    cfg.watchdog = WatchdogConfig {
        enabled: true,
        window: 10,
        escalate_after: 1,
        serialize_after: 1,
        livelock_after: 1,
    };
    let m = Sim::new(&cfg)
        .system(TmSystem::FgLock)
        .run(&crossfire())
        .expect("lock mode must be exempt from the watchdog");
    m.assert_correct();
    assert!(!m.degraded);
}

#[test]
fn livelock_shape_completes_under_the_default_watchdog() {
    // The default 250k-cycle window is far wider than GETM's real
    // inter-commit gaps even on the crossfire, so the stock config
    // completes it without degradation on this small machine.
    let m = Sim::new(&tiny())
        .system(TmSystem::Getm)
        .run(&crossfire())
        .expect("crossfire completes under the default watchdog");
    m.assert_correct();
    assert!(m.commits > 0);
}

#[test]
fn cancelled_token_interrupts_the_run() {
    let token = CancelToken::new();
    token.cancel();
    let err = Sim::new(&tiny())
        .system(TmSystem::Getm)
        .run_with(&crossfire(), &RunOptions::default().cancel(token))
        .expect_err("a pre-cancelled token must interrupt");
    assert!(matches!(err, SimError::Interrupted { .. }), "got {err:?}");
}

#[test]
fn uncancelled_token_is_observational() {
    let w = crossfire();
    let plain = Sim::new(&tiny()).system(TmSystem::Getm).run(&w).unwrap();
    let cancellable = Sim::new(&tiny())
        .system(TmSystem::Getm)
        .run_with(&w, &RunOptions::default().cancel(CancelToken::new()))
        .unwrap()
        .metrics
        .expect("unverified runs always carry metrics");
    assert_eq!(plain, cancellable);
}
