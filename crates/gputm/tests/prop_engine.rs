//! Property-based tests over the full engine: random workload shapes,
//! seeds, and machine geometries must always produce invariant-satisfying
//! final memory under every TM system. These are the closest thing the
//! repository has to a model checker for the protocols.

use gputm::config::{GpuConfig, TmSystem};
use gputm::runner::Sim;
use proptest::prelude::*;
use workloads::atm::Atm;
use workloads::hashtable::HashTable;

fn cfg(cores: u32, warps: u32, width: u32, parts: u32, limit: Option<u32>) -> GpuConfig {
    let mut cfg = GpuConfig::tiny_test();
    cfg.cores = cores;
    cfg.warps_per_core = warps;
    cfg.warp_width = width;
    cfg.partitions = parts;
    cfg.tx_concurrency = limit;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full simulation
        ..ProptestConfig::default()
    })]

    /// Money is conserved under arbitrary contention, machine shape, and
    /// concurrency limit, for every TM system.
    #[test]
    fn atm_conserves_money_everywhere(
        accounts in 8u64..256,
        threads in 16usize..128,
        seed in 0u64..1000,
        cores in 1u32..4,
        parts in 1u32..4,
        limit in prop_oneof![Just(None), (1u32..5).prop_map(Some)],
    ) {
        let w = Atm::new(accounts, threads, 2, seed);
        let machine = cfg(cores, 4, 8, parts, limit);
        for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::Eapg] {
            let m = Sim::new(&machine).system(system).run(&w)
                .unwrap_or_else(|e| panic!("{system}: {e}"));
            prop_assert!(
                matches!(m.check, Some(Ok(()))),
                "{system} violated conservation: {:?}",
                m.check
            );
            prop_assert_eq!(m.commits, threads as u64 * 2);
        }
    }

    /// Every hashtable insert lands exactly once regardless of bucket
    /// pressure, under GETM and the lock baseline.
    #[test]
    fn hashtable_inserts_exactly_once(
        buckets in 4u64..512,
        inserts in 16usize..160,
        seed in 0u64..1000,
    ) {
        let w = HashTable::new("HT-P", buckets, inserts, seed);
        let machine = cfg(2, 4, 8, 2, Some(4));
        for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::FgLock] {
            let m = Sim::new(&machine).system(system).run(&w)
                .unwrap_or_else(|e| panic!("{system}: {e}"));
            prop_assert!(
                matches!(m.check, Some(Ok(()))),
                "{system} broke the table: {:?}",
                m.check
            );
        }
    }

    /// Metadata granularity never affects correctness, only performance
    /// (the Fig. 14 knob).
    #[test]
    fn granularity_is_correctness_neutral(
        granule_log2 in 4u32..8, // 16..128 bytes
        seed in 0u64..100,
    ) {
        let w = Atm::new(64, 64, 2, seed);
        let machine = cfg(2, 4, 8, 2, Some(4)).with_granularity(1 << granule_log2);
        let m = Sim::new(&machine).system(TmSystem::Getm).run(&w).expect("run");
        prop_assert!(matches!(m.check, Some(Ok(()))));
    }
}
