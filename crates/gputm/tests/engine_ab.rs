//! Old-path/new-path engine equivalence.
//!
//! The engine's steady-state loop was rebuilt around index-addressed
//! tables, reusable scratch buffers, and idle skip-ahead. None of that may
//! be observable: for every benchmark and system, a run with skip-ahead
//! enabled must produce bit-identical [`gputm::metrics::Metrics`] and a
//! byte-identical event stream to a run that walks every cycle — and no
//! run may leave a request context behind in the token tables.

use gputm::config::{GpuConfig, TmSystem};
use gputm::engine::Engine;
use gputm::metrics::Metrics;
use sim_core::history::HistoryRecorder;
use sim_core::Recorder;
use workloads::fuzz::{Fuzz, FuzzShape};
use workloads::suite::{Benchmark, Scale};
use workloads::Workload;

/// Runs `w` on a fresh engine and returns (metrics, serialized trace,
/// outstanding tokens after the drain).
fn run_engine(
    w: &dyn Workload,
    system: TmSystem,
    cfg: &GpuConfig,
    idle_skip: bool,
) -> (Metrics, String, usize) {
    let rec = Recorder::recording(1 << 21);
    let mut e = Engine::new(w, system, cfg).expect("engine builds");
    e.set_idle_skip(idle_skip);
    e.attach_recorder(rec.clone());
    let m = e.run().expect("run completes");
    let text = rec
        .bus()
        .expect("recording recorder has a bus")
        .borrow()
        .serialize_text();
    (m, text, e.outstanding_tokens())
}

fn assert_ab(w: &dyn Workload, system: TmSystem, cfg: &GpuConfig) {
    let (m_off, t_off, tok_off) = run_engine(w, system, cfg, false);
    let (m_on, t_on, tok_on) = run_engine(w, system, cfg, true);
    let who = format!("{} under {system}", w.name());
    assert_eq!(m_off, m_on, "{who}: metrics diverged between loop paths");
    assert_eq!(t_off, t_on, "{who}: traces diverged between loop paths");
    assert_eq!(tok_off, 0, "{who}: legacy path leaked tokens");
    assert_eq!(tok_on, 0, "{who}: skip path leaked tokens");
}

/// Every benchmark under the paper's system: skip-ahead is invisible.
#[test]
fn idle_skip_is_invisible_for_every_benchmark_under_getm() {
    let cfg = GpuConfig::tiny_test();
    for b in Benchmark::ALL {
        let w = b.build(Scale::Fast);
        assert_ab(w.as_ref(), TmSystem::Getm, &cfg);
    }
}

/// A contended and an uncontended benchmark under every other system.
#[test]
fn idle_skip_is_invisible_across_systems() {
    let cfg = GpuConfig::tiny_test();
    for system in [
        TmSystem::WarpTmLL,
        TmSystem::WarpTmEL,
        TmSystem::Eapg,
        TmSystem::FgLock,
    ] {
        for b in [Benchmark::Atm, Benchmark::HtL] {
            let w = b.build(Scale::Fast);
            assert_ab(w.as_ref(), system, &cfg);
        }
    }
}

/// Two engines in one process own differently seeded hashers for any
/// `HashMap` they might hold; bit-identical results across back-to-back
/// runs prove no hash-iteration order feeds an engine decision.
#[test]
fn repeated_runs_are_bit_identical_within_one_process() {
    let cfg = GpuConfig::tiny_test();
    for system in [TmSystem::Getm, TmSystem::WarpTmLL] {
        let w = Benchmark::Atm.build(Scale::Fast);
        let (m1, t1, _) = run_engine(w.as_ref(), system, &cfg, true);
        let (m2, t2, _) = run_engine(w.as_ref(), system, &cfg, true);
        assert_eq!(m1, m2, "ATM under {system}: metrics vary across runs");
        assert_eq!(t1, t2, "ATM under {system}: traces vary across runs");
    }
}

/// Token-leak regression: long verified runs (history recording exercises
/// the per-token version capture that used to live in a side map) must
/// drain every pending access and commit context.
#[test]
fn verified_fuzz_runs_leak_no_tokens() {
    let cfg = GpuConfig::tiny_test();
    let shapes = [
        FuzzShape::SingleCell,
        FuzzShape::LockSteal,
        FuzzShape::MixedAliasing,
        FuzzShape::Scatter,
    ];
    let mut completed = 0;
    for system in [TmSystem::Getm, TmSystem::WarpTmLL, TmSystem::WarpTmEL] {
        for shape in shapes {
            let w = Fuzz::new(shape, 16, 4, 0xC0FFEE ^ shape as u64);
            let mut e = Engine::new(&w, system, &cfg).expect("engine builds");
            e.attach_history(HistoryRecorder::recording());
            match e.run() {
                Ok(_) => {}
                // Adversarial fuzz shapes can genuinely livelock the
                // WarpTM protocols; an interrupted run legitimately has
                // requests in flight, so only completed runs are checked.
                Err(sim_core::SimError::Livelock(_)) => continue,
                Err(e) => panic!("{shape:?} under {system}: {e}"),
            }
            completed += 1;
            assert_eq!(
                e.outstanding_tokens(),
                0,
                "{} under {system} left request contexts behind",
                w.name(),
            );
        }
    }
    assert!(
        completed >= 8,
        "too few fuzz runs completed ({completed}/12); the leak check lost its teeth"
    );
}
