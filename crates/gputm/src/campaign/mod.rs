//! Distributed sweep campaigns: one coordinator, N disposable workers.
//!
//! A *campaign* runs the same experiment grid a [`crate::sweep`] does,
//! but spread across worker **processes** that rendezvous with a
//! coordinator over a Unix domain socket. The design goal is that a
//! campaign is indistinguishable from a single-process sweep in its
//! outputs — same [`SweepReport`](crate::sweep::SweepReport), same
//! stdout bytes, same telemetry invariants — while any subset of the
//! fleet (workers *or* the coordinator itself) can be SIGKILLed and the
//! campaign still converges:
//!
//! * **Results never cross the socket.** Workers store metrics into the
//!   shared content-addressed [`ResultCache`](crate::sweep::ResultCache)
//!   and send only a verdict; the coordinator loads the bytes by cache
//!   key. Two workers racing on one cell write identical content under
//!   the cache's atomic temp-file+rename discipline, so the race is
//!   logged and harmless.
//! * **Work moves under time-bounded leases.** A lease dies with its
//!   worker (socket EOF), with its heartbeats (three missed intervals),
//!   or at a hard wall-clock deadline — whichever comes first — and its
//!   cells are reassigned, up to a reassignment cap per cell.
//! * **The coordinator's durable state is the sweep journal.** The same
//!   fsynced append-only journal single-process sweeps keep (guarded by
//!   a pid-stamped lock file) records each completed cell, so a
//!   SIGKILLed coordinator restarted with `resume` recalls finished
//!   cells from the cache and hands out only the remainder.
//! * **Telemetry stays coherent.** Workers stream per-cell events over
//!   the socket; the coordinator re-stamps and forwards only
//!   non-terminal ones, emitting every terminal event itself — exactly
//!   once per cell, no matter how many workers touched it.
//!
//! The module is Unix-only (`#[cfg(unix)]` at the crate root): the wire
//! is a `UnixListener`/`UnixStream` pair and liveness detection leans on
//! Unix process semantics.

mod coordinator;
mod protocol;
mod worker;

pub use coordinator::coordinate;
pub use protocol::PROTOCOL_VERSION;
pub use worker::work;

use std::path::PathBuf;
use std::time::Duration;

/// Coordinator-side knobs for a distributed campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Rendezvous point: the Unix socket the coordinator binds and
    /// workers connect to. A stale file from a killed predecessor is
    /// unlinked before binding.
    pub socket: PathBuf,
    /// Heartbeat interval advertised to workers; a lease with no ping
    /// for three intervals is considered lost. Default 2s.
    pub heartbeat: Duration,
    /// Hard wall-clock bound on a single lease, heartbeats or not — the
    /// backstop against a worker that is alive but wedged inside a cell.
    /// Default 120s; set it comfortably above the slowest expected cell.
    pub lease_timeout: Duration,
    /// Cells granted per lease. Default 1 — maximal reassignment
    /// granularity; raise it to amortize round-trips on tiny cells.
    pub chunk: usize,
    /// How many times one cell may be reassigned after worker losses
    /// before it is failed terminally (kind `worker`). Default 5.
    pub max_deaths: u32,
    /// Worker count reported in the `campaign_started` telemetry event;
    /// purely informational (workers join dynamically).
    pub workers_hint: usize,
}

impl CampaignOptions {
    /// Options with defaults, rendezvousing at `socket`.
    pub fn at(socket: impl Into<PathBuf>) -> Self {
        CampaignOptions {
            socket: socket.into(),
            heartbeat: Duration::from_secs(2),
            lease_timeout: Duration::from_secs(120),
            chunk: 1,
            max_deaths: 5,
            workers_hint: 0,
        }
    }

    /// Sets the heartbeat interval (floored at 100ms).
    #[must_use]
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval.max(Duration::from_millis(100));
        self
    }

    /// Sets the hard per-lease deadline.
    #[must_use]
    pub fn lease_timeout(mut self, limit: Duration) -> Self {
        self.lease_timeout = limit;
        self
    }

    /// Sets the cells-per-lease grant size (floored at 1).
    #[must_use]
    pub fn chunk(mut self, cells: usize) -> Self {
        self.chunk = cells.max(1);
        self
    }

    /// Sets the per-cell reassignment cap.
    #[must_use]
    pub fn max_deaths(mut self, cap: u32) -> Self {
        self.max_deaths = cap;
        self
    }

    /// Records how many workers the launcher intends to run.
    #[must_use]
    pub fn workers_hint(mut self, n: usize) -> Self {
        self.workers_hint = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::protocol::{ToCoordinator, ToWorker, PROTOCOL_VERSION};
    use super::*;
    use crate::config::{GpuConfig, TmSystem};
    use crate::sweep::{
        run_sweep_report, sweep_digest, CellSpec, ExperimentSpec, FailurePolicy, ResultCache,
        SweepOptions,
    };
    use crate::telemetry::{CampaignEvent, MemorySink, Telemetry};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;
    use workloads::suite::{Benchmark, Scale};

    fn grid() -> ExperimentSpec {
        ExperimentSpec::grid()
            .benchmarks([Benchmark::Atm, Benchmark::HtL])
            .systems([TmSystem::Getm])
            .scale(Scale::Fast)
            .base(GpuConfig::tiny_test())
            .build()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("getm-campaign-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Spawns `n` in-process workers against `socket` and runs the
    /// coordinator on this thread.
    fn run_campaign(
        cells: &[CellSpec],
        opts: &SweepOptions,
        cfg: &CampaignOptions,
        n: usize,
    ) -> crate::sweep::SweepReport {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let cells = cells.to_vec();
                let opts = opts.clone();
                let socket = cfg.socket.clone();
                std::thread::spawn(move || work(&cells, &opts, &socket))
            })
            .collect();
        let report = coordinate(cells, opts, cfg).expect("coordinate");
        for h in handles {
            h.join().expect("worker thread").expect("worker result");
        }
        report
    }

    #[test]
    fn two_workers_match_a_serial_sweep_cell_for_cell() {
        let dir = tmp("basic");
        let spec = grid();
        let cells = spec.cells();
        let opts = SweepOptions::new()
            .cache(ResultCache::new(dir.join("cache")))
            .threads(1);
        let cfg = CampaignOptions::at(dir.join("sock")).workers_hint(2);
        let report = run_campaign(cells, &opts, &cfg, 2);
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        assert_eq!(report.outcomes.len(), cells.len());

        // A fresh serial sweep of the same grid must agree metric-for-metric.
        let serial_opts = SweepOptions::new()
            .cache(ResultCache::new(dir.join("serial-cache")))
            .threads(1);
        let serial = run_sweep_report(&spec, &serial_opts);
        for (a, b) in report.outcomes.iter().zip(serial.outcomes.iter()) {
            assert_eq!(a.cell.label(), b.cell.label());
            assert_eq!(a.metrics.commits, b.metrics.commits);
            assert_eq!(a.metrics.aborts, b.metrics.aborts);
            assert_eq!(a.metrics.cycles, b.metrics.cycles);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_telemetry_has_exactly_one_terminal_event_per_cell() {
        let dir = tmp("telemetry");
        let spec = grid();
        let cells = spec.cells();
        let (sink, captured) = MemorySink::new();
        let opts = SweepOptions::new()
            .cache(ResultCache::new(dir.join("cache")))
            .threads(1)
            .telemetry(Telemetry::to_sinks(vec![Box::new(sink)]));
        let cfg = CampaignOptions::at(dir.join("sock")).workers_hint(2);
        let report = run_campaign(cells, &opts, &cfg, 2);
        assert!(report.is_complete());

        let events = captured.lock().unwrap();
        for idx in 0..cells.len() {
            let terminals = events
                .iter()
                .filter(|(_, e)| e.is_terminal() && e.cell_idx() == Some(idx))
                .count();
            assert_eq!(terminals, 1, "cell {idx} should have exactly one terminal");
        }
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, CampaignEvent::CampaignFinished { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A raw socket client that takes a lease and goes silent: the lease
    /// must expire after three missed heartbeats and its cell complete on
    /// a real worker. The hung client also sends a torn telemetry line,
    /// which must be dropped without disturbing the stream.
    #[test]
    fn hung_worker_lease_expires_and_cell_is_reassigned() {
        let dir = tmp("hung");
        let spec = grid();
        let cells = spec.cells();
        let digest = sweep_digest(cells);
        let opts = SweepOptions::new()
            .cache(ResultCache::new(dir.join("cache")))
            .threads(1);
        let cfg = CampaignOptions::at(dir.join("sock"))
            .heartbeat(Duration::from_millis(150))
            .workers_hint(1);

        let socket = cfg.socket.clone();
        let hang = std::thread::spawn(move || {
            let mut stream = loop {
                match UnixStream::connect(&socket) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            };
            let hello = ToCoordinator::Hello {
                version: PROTOCOL_VERSION.to_string(),
                digest,
                pid: 0,
            };
            writeln!(stream, "{}", hello.encode()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(
                ToWorker::parse(line.trim_end()),
                Some(ToWorker::Welcome { .. })
            ));
            writeln!(stream, "{}", ToCoordinator::Want { n: 1 }.encode()).unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            // Wait replies mean a real worker beat us to every cell;
            // leases land as `lease <id> <cells>`.
            if let Some(ToWorker::Lease { .. }) = ToWorker::parse(line.trim_end()) {
                // Stream a torn telemetry line, then never ping again.
                writeln!(stream, "event {{\"t_ms\":5,\"ev\":\"cell_sta").unwrap();
            }
            // Hold the connection open so EOF detection cannot fire; the
            // expiry path must do the work.
            std::thread::sleep(Duration::from_secs(4));
        });

        let report = run_campaign(cells, &opts, &cfg, 1);
        hang.join().unwrap();
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        assert_eq!(report.outcomes.len(), cells.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Worker-reported failures must flow through the coordinator's retry
    /// policy: a flaky injected runner fails twice, then succeeds.
    #[test]
    fn coordinator_retries_worker_reported_failures() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;

        let dir = tmp("retry");
        let spec = grid();
        let cells = spec.cells();
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in_runner = calls.clone();
        let opts = SweepOptions::new()
            .cache(ResultCache::new(dir.join("cache")))
            .threads(1)
            .failure_policy(FailurePolicy::Retry { attempts: 3 });
        let mut worker_opts = opts.clone();
        worker_opts.runner = Some(crate::sweep::exec::CellRunner(Arc::new(
            move |cell: &CellSpec, token| {
                // The first two executions (across any cells) of the flaky
                // target fail; determinism of the final report is preserved
                // because the cache stores only the eventual success.
                if cell.benchmark == Benchmark::Atm
                    && calls_in_runner.fetch_add(1, Ordering::SeqCst) < 2
                {
                    return Err(sim_core::SimError::ResourceExhausted {
                        what: "injected flake",
                    });
                }
                match token {
                    Some(t) => cell.run_cancellable(t),
                    None => cell.run(),
                }
            },
        )));
        let cfg = CampaignOptions::at(dir.join("sock")).workers_hint(1);

        let worker_cells = cells.to_vec();
        let socket = cfg.socket.clone();
        let handle = std::thread::spawn(move || work(&worker_cells, &worker_opts, &socket));
        let report = coordinate(cells, &opts, &cfg).expect("coordinate");
        handle.join().unwrap().unwrap();

        assert!(report.is_complete(), "failures: {:?}", report.failures);
        assert!(calls.load(Ordering::SeqCst) >= 3, "flake must have retried");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coordinator_without_cache_is_refused() {
        let dir = tmp("nocache");
        let spec = grid();
        let cfg = CampaignOptions::at(dir.join("sock"));
        let err = coordinate(spec.cells(), &SweepOptions::new(), &cfg).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).ok();
    }
}
