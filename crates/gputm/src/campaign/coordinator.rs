//! The campaign coordinator: lease bookkeeping, failure detection, and
//! the single source of truth for the final report.
//!
//! The coordinator owns exactly the state the single-process executor
//! keeps in [`exec::run_report`]'s collector loop — per-cell slots in
//! spec order, the fsynced [`SweepJournal`], terminal telemetry — plus
//! the lease table that makes worker processes disposable. Detection
//! duties are split three ways:
//!
//! * **process exit** — the worker's socket EOFs; its leases requeue
//!   immediately.
//! * **hung worker** — no `ping` for three heartbeat intervals; the lease
//!   expires, a best-effort `revoke` is sent, the cells requeue.
//! * **runaway lease** — a hard per-lease wall-clock deadline bounds even
//!   a worker that heartbeats forever without finishing; same recovery.
//!
//! Reassignment is counted separately from the [`FailurePolicy`] retry
//! budget: a worker dying is the harness's failure, not the cell's. Only
//! after [`CampaignOptions::max_deaths`] reassignments does a cell fail
//! terminally (as [`FailureKind::Remote`] with kind `worker`).
//!
//! Determinism: workers transport results through the content-addressed
//! [`ResultCache`], so whichever worker finishes a cell — or if two race
//! on the same digest — the coordinator loads identical bytes and the
//! final [`SweepReport`] (and stdout rendered from it) is byte-identical
//! to a single-process `sweep` of the same grid.
//!
//! [`ResultCache`]: crate::sweep::ResultCache

use super::protocol::{
    Framed, LineReader, ToCoordinator, ToWorker, POLL_INTERVAL, PROTOCOL_VERSION,
};
use super::CampaignOptions;
use crate::sweep::exec;
use crate::sweep::{
    sweep_digest, CellFailure, CellSpec, FailureKind, FailurePolicy, SweepJournal, SweepOptions,
    SweepOutcome, SweepReport,
};
use crate::telemetry::{intern_failure_kind, CampaignEvent};
use std::collections::HashMap;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Socket-side events funneled into the coordinator's single event loop.
enum Msg {
    /// A connection was accepted; the stream is the writer half.
    Connected(u64, UnixStream),
    /// One complete line from a connection.
    Line(u64, String),
    /// The connection is gone.
    Eof(u64),
}

/// One outstanding lease.
struct Lease {
    conn: u64,
    cells: Vec<usize>,
    /// Liveness horizon: renewed by grant and by every `ping`.
    expires: Instant,
    /// Hard wall-clock bound, fixed at grant time.
    deadline: Instant,
}

/// Per-cell campaign bookkeeping beside the result slot.
#[derive(Clone)]
struct CellTrack {
    /// Policy attempts consumed (worker-reported failures).
    attempts: u32,
    /// Times the cell was requeued because its worker was lost.
    deaths: u32,
    /// Retry backoff horizon; the cell is not grantable before this.
    not_before: Instant,
    /// Whether some live lease currently covers the cell.
    leased: bool,
    /// When the cell was first granted (for failure elapsed accounting).
    first_grant: Option<Instant>,
}

struct Coordinator<'a> {
    cells: &'a [CellSpec],
    opts: &'a SweepOptions,
    cfg: &'a CampaignOptions,
    digest: String,
    journal: Option<SweepJournal>,
    /// Writer halves; readers live on their own threads.
    conns: HashMap<u64, UnixStream>,
    /// Connections that completed the `hello` handshake, by worker pid.
    ready: HashMap<u64, u32>,
    leases: HashMap<u64, Lease>,
    track: Vec<CellTrack>,
    slots: Vec<Option<Result<SweepOutcome, CellFailure>>>,
    done: usize,
    cache_hits: usize,
    failed: usize,
    /// Fail-fast tripped: no further grants, pending cells become skipped.
    stopped: bool,
    next_lease: u64,
    started: Instant,
}

/// Runs a distributed campaign over `cells` as its coordinator: binds
/// `cfg.socket`, grants leases to connecting workers, detects and
/// reassigns lost work, and returns the same [`SweepReport`] a
/// single-process [`crate::sweep::run_sweep_report`] of the grid would.
///
/// The coordinator's durable state is the same fsynced [`SweepJournal`]
/// the single-process executor writes: a SIGKILLed coordinator restarted
/// with [`SweepOptions::resume`] recalls completed cells from the cache
/// and re-runs only the rest, byte-identically.
///
/// # Errors
///
/// Socket setup failures, and [`std::io::ErrorKind::InvalidInput`] when
/// `opts` carries no result cache — the cache is the result transport, a
/// campaign cannot run without it.
pub fn coordinate(
    cells: &[CellSpec],
    opts: &SweepOptions,
    cfg: &CampaignOptions,
) -> std::io::Result<SweepReport> {
    if opts.result_cache.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "distributed campaign needs the result cache (results travel through it)",
        ));
    }
    let total = cells.len();
    if total == 0 {
        return Ok(SweepReport {
            outcomes: Vec::new(),
            failures: Vec::new(),
            skipped: 0,
        });
    }

    // A SIGKILLed predecessor leaves both a stale socket file and a stale
    // journal lock; unlink the one, let LockFile's dead-pid takeover
    // handle the other.
    std::fs::remove_file(&cfg.socket).ok();
    if let Some(parent) = cfg.socket.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;

    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Msg>();
    let accept = {
        let stop = stop.clone();
        let tx = tx.clone();
        std::thread::spawn(move || accept_loop(&listener, &tx, &stop))
    };

    let digest = sweep_digest(cells);
    let journal = open_journal(opts, &digest);
    let started = Instant::now();
    let now = started;
    let mut c = Coordinator {
        cells,
        opts,
        cfg,
        digest,
        journal,
        conns: HashMap::new(),
        ready: HashMap::new(),
        leases: HashMap::new(),
        track: vec![
            CellTrack {
                attempts: 0,
                deaths: 0,
                not_before: now,
                leased: false,
                first_grant: None,
            };
            total
        ],
        slots: std::iter::repeat_with(|| None).take(total).collect(),
        done: 0,
        cache_hits: 0,
        failed: 0,
        stopped: false,
        next_lease: 1,
        started,
    };
    c.announce();
    c.prefill_from_journal();

    while !c.finished() {
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(Msg::Connected(id, writer)) => {
                c.conns.insert(id, writer);
            }
            Ok(Msg::Line(id, line)) => c.handle_line(id, &line),
            Ok(Msg::Eof(id)) => c.handle_eof(id),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        c.tick();
    }

    // Teardown: tell every worker the campaign is over, stop the socket
    // threads, and remove the rendezvous point.
    c.broadcast(&ToWorker::Done);
    stop.store(true, Ordering::SeqCst);
    accept.join().ok();
    std::fs::remove_file(&cfg.socket).ok();

    let mut report = SweepReport {
        outcomes: Vec::new(),
        failures: Vec::new(),
        skipped: 0,
    };
    for slot in c.slots {
        match slot {
            Some(Ok(o)) => report.outcomes.push(o),
            Some(Err(f)) => report.failures.push(f),
            None => report.skipped += 1,
        }
    }
    if report.is_complete() {
        if let Some(j) = c.journal.take() {
            j.finish().ok();
        }
    }
    let tel = &opts.telemetry;
    tel.emit(|| CampaignEvent::CampaignFinished {
        done: report.outcomes.len(),
        failed: report.failures.len(),
        skipped: report.skipped,
        elapsed_ms: started.elapsed().as_millis() as u64,
    });
    tel.flush();
    Ok(report)
}

/// Accepts connections until `stop`, spawning one reader thread per
/// connection; all traffic funnels into `tx`.
fn accept_loop(listener: &UnixListener, tx: &mpsc::Sender<Msg>, stop: &Arc<AtomicBool>) {
    let mut next_id = 1u64;
    let mut readers = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let id = next_id;
                next_id += 1;
                if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
                    continue;
                }
                let writer = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                if tx.send(Msg::Connected(id, writer)).is_err() {
                    return;
                }
                let tx = tx.clone();
                let stop = stop.clone();
                readers.push(std::thread::spawn(move || {
                    let mut reader = LineReader::new(stream);
                    loop {
                        match reader.next_line() {
                            Framed::Line(line) => {
                                if tx.send(Msg::Line(id, line)).is_err() {
                                    return;
                                }
                            }
                            Framed::Idle => {
                                if stop.load(Ordering::SeqCst) {
                                    return;
                                }
                            }
                            Framed::Eof => {
                                tx.send(Msg::Eof(id)).ok();
                                return;
                            }
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    for r in readers {
        r.join().ok();
    }
}

/// Opens the campaign journal next to the result cache, mirroring the
/// single-process executor's logged-not-fatal discipline.
fn open_journal(opts: &SweepOptions, digest: &str) -> Option<SweepJournal> {
    let cache = opts.result_cache.as_ref()?;
    match SweepJournal::open(cache.dir(), digest, opts.resume) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("campaign: journal unavailable ({e}); crash resume disabled");
            None
        }
    }
}

impl Coordinator<'_> {
    fn total(&self) -> usize {
        self.cells.len()
    }

    fn announce(&self) {
        let (total, workers, resumed) = (
            self.total(),
            self.cfg.workers_hint,
            self.journal.as_ref().map_or(0, SweepJournal::completed),
        );
        let tel = &self.opts.telemetry;
        tel.emit(|| CampaignEvent::CampaignStarted {
            total,
            workers,
            resumed,
        });
        if tel.is_on() {
            for (idx, cell) in self.cells.iter().enumerate() {
                tel.emit(|| CampaignEvent::CellQueued {
                    idx,
                    label: cell.label(),
                });
            }
        }
    }

    /// Serves journaled cells from the cache before any lease is granted:
    /// a resumed coordinator recalls everything its SIGKILLed predecessor
    /// finished, so workers only ever see the remainder.
    fn prefill_from_journal(&mut self) {
        let Some(j) = &self.journal else { return };
        let recalled: Vec<(usize, String)> = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.cache_key()))
            .filter(|(_, key)| j.is_completed(key))
            .collect();
        if recalled.is_empty() {
            return;
        }
        if self.opts.progress {
            eprintln!(
                "campaign: resuming {} — {}/{} cells already complete",
                j.path().display(),
                recalled.len(),
                self.total()
            );
        }
        let cache = self.opts.result_cache.as_ref().expect("campaign has cache");
        for (idx, key) in recalled {
            // A journaled key missing from the cache (eviction, corrupt
            // entry) simply recomputes: the journal is accounting, the
            // cache is truth.
            if let Some(metrics) = cache.load(&key) {
                let outcome = SweepOutcome {
                    cell: self.cells[idx].clone(),
                    metrics,
                    cached: true,
                    elapsed: Duration::ZERO,
                };
                self.finish_cell(idx, Ok(outcome));
            }
        }
    }

    /// All cells terminal, or fail-fast stopped with no lease left to
    /// drain.
    fn finished(&self) -> bool {
        self.slots.iter().all(Option::is_some) || (self.stopped && self.leases.is_empty())
    }

    fn send_to(&mut self, conn: u64, msg: &ToWorker) {
        if let Some(stream) = self.conns.get(&conn) {
            let mut s = stream;
            if writeln!(s, "{}", msg.encode()).is_err() {
                // The reader thread will surface the EOF; nothing to do.
            }
        }
    }

    fn broadcast(&mut self, msg: &ToWorker) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.send_to(id, msg);
        }
    }

    fn handle_line(&mut self, conn: u64, line: &str) {
        let Some(msg) = ToCoordinator::parse(line) else {
            eprintln!("campaign: dropping malformed line from worker connection {conn}: {line:?}");
            return;
        };
        match msg {
            ToCoordinator::Hello {
                version,
                digest,
                pid,
            } => self.on_hello(conn, &version, &digest, pid),
            ToCoordinator::Want { n } => self.on_want(conn, n),
            ToCoordinator::Ping { lease } => {
                let horizon = Instant::now() + 3 * self.cfg.heartbeat;
                if let Some(l) = self.leases.get_mut(&lease) {
                    l.expires = horizon;
                }
            }
            ToCoordinator::Finished {
                lease,
                idx,
                cached,
                elapsed_ms,
            } => self.on_finished(lease, idx, cached, elapsed_ms),
            ToCoordinator::Failed {
                lease,
                idx,
                kind,
                attempts,
                error,
            } => self.on_failed(lease, idx, &kind, attempts, error),
            ToCoordinator::Event { json } => self.on_event(&json),
            ToCoordinator::Bye => self.handle_eof(conn),
        }
    }

    fn on_hello(&mut self, conn: u64, version: &str, digest: &str, pid: u32) {
        if version != PROTOCOL_VERSION {
            let reason = format!("protocol mismatch: coordinator speaks {PROTOCOL_VERSION}");
            self.send_to(conn, &ToWorker::Reject { reason });
            return;
        }
        if digest != self.digest {
            // A different digest is a different campaign: the worker was
            // started with a different grid and its results would be
            // nonsense here.
            let reason = format!("grid digest mismatch: campaign is {}", self.digest);
            self.send_to(conn, &ToWorker::Reject { reason });
            return;
        }
        self.ready.insert(conn, pid);
        if self.opts.progress {
            eprintln!("campaign: worker pid {pid} joined");
        }
        let msg = ToWorker::Welcome {
            heartbeat_ms: self.cfg.heartbeat.as_millis() as u64,
            lease_ms: self.cfg.lease_timeout.as_millis() as u64,
        };
        self.send_to(conn, &msg);
    }

    fn on_want(&mut self, conn: u64, n: usize) {
        if !self.ready.contains_key(&conn) {
            return; // no lease before a successful handshake
        }
        if self.stopped {
            self.send_to(conn, &ToWorker::Done);
            return;
        }
        let now = Instant::now();
        let grant: Vec<usize> = (0..self.total())
            .filter(|&i| {
                self.slots[i].is_none() && !self.track[i].leased && now >= self.track[i].not_before
            })
            .take(n.clamp(1, self.cfg.chunk.max(1)))
            .collect();
        if grant.is_empty() {
            let reply = if self.slots.iter().all(Option::is_some) {
                ToWorker::Done
            } else {
                // Cells exist but are leased elsewhere or backing off.
                ToWorker::Wait
            };
            self.send_to(conn, &reply);
            return;
        }
        let lease = self.next_lease;
        self.next_lease += 1;
        for &i in &grant {
            self.track[i].leased = true;
            self.track[i].first_grant.get_or_insert(now);
        }
        self.leases.insert(
            lease,
            Lease {
                conn,
                cells: grant.clone(),
                expires: now + 3 * self.cfg.heartbeat,
                deadline: now + self.cfg.lease_timeout,
            },
        );
        self.send_to(
            conn,
            &ToWorker::Lease {
                lease,
                cells: grant,
            },
        );
    }

    /// Removes `idx` from `lease`'s cell set (if that lease still exists
    /// and covers it), dropping the lease when it empties.
    fn release(&mut self, lease: u64, idx: usize) {
        if let Some(l) = self.leases.get_mut(&lease) {
            if let Some(pos) = l.cells.iter().position(|&i| i == idx) {
                l.cells.swap_remove(pos);
                self.track[idx].leased = false;
                if l.cells.is_empty() {
                    self.leases.remove(&lease);
                }
            }
        }
    }

    fn on_finished(&mut self, lease: u64, idx: usize, cached: bool, elapsed_ms: u64) {
        if idx >= self.total() {
            return;
        }
        self.release(lease, idx);
        let label = self.cells[idx].label();
        if self.slots[idx].is_some() {
            // Two workers raced on one digest (a revoked lease's worker
            // finished late). The cache is content-addressed, so both
            // wrote identical bytes: logged, not fatal.
            eprintln!("campaign: duplicate result for {label} ignored (reassigned worker raced)");
            return;
        }
        let key = self.cells[idx].cache_key();
        let cache = self.opts.result_cache.as_ref().expect("campaign has cache");
        let Some(metrics) = cache.load(&key) else {
            // The worker said "done" but the cache has no (valid) entry —
            // a torn store would have been renamed away. Requeue, bounded
            // by the death counter so a lying worker cannot loop forever.
            eprintln!("campaign: {label} reported complete but cache entry {key} is missing");
            self.requeue_or_bury(idx, "result missing from shared cache");
            return;
        };
        let outcome = SweepOutcome {
            cell: self.cells[idx].clone(),
            metrics,
            cached,
            elapsed: Duration::from_millis(elapsed_ms),
        };
        self.finish_cell(idx, Ok(outcome));
    }

    fn on_failed(&mut self, lease: u64, idx: usize, kind: &str, attempts: u32, error: String) {
        if idx >= self.total() {
            return;
        }
        let Some(kind) = intern_failure_kind(kind) else {
            eprintln!("campaign: dropping failure report with unknown kind {kind:?}");
            return;
        };
        self.release(lease, idx);
        let label = self.cells[idx].label();
        if self.slots[idx].is_some() {
            eprintln!("campaign: duplicate failure for {label} ignored");
            return;
        }
        self.track[idx].attempts += attempts.max(1);
        let budget = match self.opts.failure_policy {
            FailurePolicy::Retry { attempts } => attempts.max(1),
            _ => 1,
        };
        let spent = self.track[idx].attempts;
        if spent < budget {
            // Same backoff curve as the single-process executor, applied
            // as a not-before horizon instead of a worker-side sleep.
            self.track[idx].not_before = Instant::now() + exec::retry_backoff(spent + 1);
            let err = error.clone();
            self.opts.telemetry.emit(|| CampaignEvent::CellRetried {
                idx,
                label,
                attempt: spent,
                error: err,
            });
            return;
        }
        let failure = CellFailure {
            cell: self.cells[idx].clone(),
            error: FailureKind::Remote {
                kind,
                detail: error,
            },
            attempts: spent,
            elapsed: self.track[idx]
                .first_grant
                .map_or(Duration::ZERO, |t| t.elapsed()),
        };
        self.finish_cell(idx, Err(failure));
        if self.opts.failure_policy == FailurePolicy::FailFast && !self.stopped {
            self.stop_campaign();
        }
    }

    /// Fail-fast trip: revoke everything in flight and grant nothing
    /// more; unfinished cells become the report's skipped count.
    fn stop_campaign(&mut self) {
        self.stopped = true;
        let leases: Vec<(u64, u64)> = self.leases.iter().map(|(&id, l)| (id, l.conn)).collect();
        for (lease, conn) in leases {
            self.send_to(conn, &ToWorker::Revoke { lease });
        }
        for l in self.leases.values() {
            for &i in &l.cells {
                self.track[i].leased = false;
            }
        }
        self.leases.clear();
        self.broadcast(&ToWorker::Shutdown);
    }

    /// Worker-side telemetry passthrough: non-terminal per-cell events
    /// re-emit into the coordinator's sinks (re-stamped on its clock);
    /// terminal events are suppressed — the coordinator emits those
    /// itself, exactly once per cell, however many workers touched it.
    fn on_event(&mut self, json: &str) {
        match CampaignEvent::parse_json(json) {
            Some((
                _,
                ev @ (CampaignEvent::CellStarted { .. } | CampaignEvent::CellRetried { .. }),
            )) => {
                self.opts.telemetry.emit(|| ev);
            }
            Some(_) => {}
            None => {
                eprintln!("campaign: dropping torn telemetry line from worker: {json:?}");
            }
        }
    }

    fn handle_eof(&mut self, conn: u64) {
        self.conns.remove(&conn);
        let pid = self.ready.remove(&conn);
        let orphaned: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.conn == conn)
            .map(|(&id, _)| id)
            .collect();
        if !orphaned.is_empty() {
            let who = pid.map_or_else(|| format!("connection {conn}"), |p| format!("pid {p}"));
            eprintln!("campaign: worker {who} disconnected mid-lease");
        }
        for lease in orphaned {
            self.reclaim_lease(lease, "worker process exited");
        }
    }

    /// Lease-expiry scan, run on every loop tick.
    fn tick(&mut self) {
        let now = Instant::now();
        let expired: Vec<(u64, u64, &'static str)> = self
            .leases
            .iter()
            .filter_map(|(&id, l)| {
                if now > l.deadline {
                    Some((id, l.conn, "lease deadline exceeded"))
                } else if now > l.expires {
                    Some((id, l.conn, "missed heartbeats"))
                } else {
                    None
                }
            })
            .collect();
        for (lease, conn, reason) in expired {
            // Best-effort revoke: a hung-but-alive worker stops its cell
            // via the CancelToken; a dead one never reads it.
            self.send_to(conn, &ToWorker::Revoke { lease });
            self.reclaim_lease(lease, reason);
        }
    }

    /// Takes a lease back (worker lost or lease expired) and requeues its
    /// unfinished cells under the death counter.
    fn reclaim_lease(&mut self, lease: u64, reason: &str) {
        let Some(l) = self.leases.remove(&lease) else {
            return;
        };
        for idx in l.cells {
            self.track[idx].leased = false;
            if self.slots[idx].is_none() {
                eprintln!(
                    "campaign: reassigning {} ({reason})",
                    self.cells[idx].label()
                );
                self.requeue_or_bury(idx, reason);
            }
        }
    }

    /// Counts a worker-loss against `idx` and either requeues it or — past
    /// the reassignment cap — fails it terminally.
    fn requeue_or_bury(&mut self, idx: usize, reason: &str) {
        self.track[idx].deaths += 1;
        if self.track[idx].deaths <= self.cfg.max_deaths {
            self.track[idx].not_before = Instant::now();
            return;
        }
        let failure = CellFailure {
            cell: self.cells[idx].clone(),
            error: FailureKind::Remote {
                kind: "worker",
                detail: format!(
                    "worker lost {} times (last: {reason}); cell abandoned",
                    self.track[idx].deaths
                ),
            },
            attempts: self.track[idx].attempts.max(1),
            elapsed: self.track[idx]
                .first_grant
                .map_or(Duration::ZERO, |t| t.elapsed()),
        };
        self.finish_cell(idx, Err(failure));
        if self.opts.failure_policy == FailurePolicy::FailFast && !self.stopped {
            self.stop_campaign();
        }
    }

    /// Records a cell's terminal result: slot, counters, journal, the
    /// cell's one terminal telemetry event, a throughput sample, and the
    /// shared progress line.
    fn finish_cell(&mut self, idx: usize, result: Result<SweepOutcome, CellFailure>) {
        debug_assert!(self.slots[idx].is_none(), "terminal results are unique");
        self.done += 1;
        if self.opts.progress {
            exec::report(self.done, self.total(), &result, self.started);
        }
        match &result {
            Ok(o) if o.cached => self.cache_hits += 1,
            Err(_) => self.failed += 1,
            _ => {}
        }
        let tel = &self.opts.telemetry;
        exec::emit_terminal(tel, idx, &result);
        let (done, total) = (self.done, self.total());
        let (cache_hits, failures) = (self.cache_hits, self.failed);
        let started = self.started;
        tel.emit(|| {
            let secs = started.elapsed().as_secs_f64();
            let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
            let eta_ms = if rate > 0.0 && total > done {
                ((total - done) as f64 / rate * 1000.0) as u64
            } else {
                0
            };
            CampaignEvent::Throughput {
                done,
                total,
                cache_hits,
                failures,
                cells_per_sec: rate,
                eta_ms,
            }
        });
        if result.is_ok() {
            if let Some(j) = self.journal.as_mut() {
                let key = self.cells[idx].cache_key();
                if let Err(e) = j.record(&key) {
                    eprintln!(
                        "campaign: could not journal {}: {e}",
                        self.cells[idx].label()
                    );
                }
            }
        }
        self.slots[idx] = Some(result);
    }
}
