//! The campaign wire protocol: line-oriented text over a Unix socket.
//!
//! The protocol is deliberately thin because the heavy payload — cell
//! results — never crosses the socket at all. Workers write [`Metrics`]
//! into the shared content-addressed [`ResultCache`] (atomic temp +
//! rename) and the wire carries only *control*: which cells a lease
//! covers, that a cell finished (the coordinator re-loads it from the
//! cache by key), heartbeats, and streamed telemetry lines. The cache
//! digest protocol of PR 4 thereby becomes the wire protocol: both sides
//! build the same grid from the same arguments, and the worker's `hello`
//! carries [`sweep_digest`] so a mismatched grid is rejected before any
//! lease is granted.
//!
//! Framing: one message per `\n`-terminated line, ASCII verbs, fields
//! separated by single spaces. Only the *last* field of a message may
//! contain spaces; it is escaped ([`escape`]) so a rendered error or a
//! JSON telemetry line can never smuggle a newline into the framing.
//! Unknown or malformed lines parse as `None` — the receiving side logs
//! and drops them (a half-written line from a SIGKILLed peer must not
//! poison the stream).
//!
//! [`Metrics`]: crate::metrics::Metrics
//! [`ResultCache`]: crate::sweep::ResultCache
//! [`sweep_digest`]: crate::sweep::sweep_digest

use std::io::Read;
use std::time::Duration;

/// Protocol version tag, sent in `hello` and checked by the coordinator:
/// coordinator and workers must come from compatible builds.
pub const PROTOCOL_VERSION: &str = "getm-campaign-v1";

/// Messages a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToCoordinator {
    /// Handshake: the worker's grid digest and pid. A digest that does
    /// not match the coordinator's grid is a different campaign —
    /// rejected.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: String,
        /// [`crate::sweep::sweep_digest`] of the worker's cell list.
        digest: String,
        /// The worker's process id (for operator logs).
        pid: u32,
    },
    /// The worker is idle and wants up to `n` cells leased.
    Want {
        /// Requested cell count (the coordinator may grant fewer).
        n: usize,
    },
    /// Heartbeat: the lease is still being worked.
    Ping {
        /// The lease being renewed.
        lease: u64,
    },
    /// A cell completed; its metrics are in the shared cache under the
    /// cell's content-addressed key.
    Finished {
        /// The lease the cell belongs to.
        lease: u64,
        /// The cell's global spec index.
        idx: usize,
        /// Whether the worker recalled it from the cache.
        cached: bool,
        /// Worker-side wall-clock for the cell (timing field).
        elapsed_ms: u64,
    },
    /// A cell failed on the worker.
    Failed {
        /// The lease the cell belongs to.
        lease: u64,
        /// The cell's global spec index.
        idx: usize,
        /// Taxonomy tag: `sim`, `panic`, or `timeout`.
        kind: String,
        /// Attempts the worker made (always 1 — retries are the
        /// coordinator's job).
        attempts: u32,
        /// Rendered error (escaped free text).
        error: String,
    },
    /// One worker-side telemetry event as a
    /// [`crate::telemetry::CampaignEvent::to_json`] line.
    Event {
        /// The JSON line (escaped free text).
        json: String,
    },
    /// Clean goodbye; the worker is about to disconnect.
    Bye,
}

/// Messages the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToWorker {
    /// Handshake accepted; the campaign's timing contract.
    Welcome {
        /// Expected heartbeat interval; a lease unpinged for three of
        /// these is considered abandoned.
        heartbeat_ms: u64,
        /// Hard wall-clock deadline per lease.
        lease_ms: u64,
    },
    /// Handshake refused (digest/version mismatch, campaign over).
    Reject {
        /// Why (escaped free text).
        reason: String,
    },
    /// A lease: the worker owns these cells until it reports them,
    /// the lease expires, or a revoke arrives.
    Lease {
        /// Lease id, unique within the campaign.
        lease: u64,
        /// Global spec indices of the leased cells.
        cells: Vec<usize>,
    },
    /// Nothing grantable right now (cells in flight elsewhere or backing
    /// off); ask again shortly.
    Wait,
    /// The campaign is over (or stopping); no more leases will ever be
    /// granted — disconnect.
    Done,
    /// The lease is withdrawn (expired or campaign aborting); stop its
    /// cells promptly and do not report them.
    Revoke {
        /// The withdrawn lease.
        lease: u64,
    },
    /// Stop everything immediately (fail-fast abort).
    Shutdown,
}

/// Escapes a free-text trailing field: backslashes and newlines only —
/// the two characters that could break framing.
pub fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Inverse of [`escape`].
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl ToCoordinator {
    /// Renders the message as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ToCoordinator::Hello {
                version,
                digest,
                pid,
            } => format!("hello {version} {digest} {pid}"),
            ToCoordinator::Want { n } => format!("want {n}"),
            ToCoordinator::Ping { lease } => format!("ping {lease}"),
            ToCoordinator::Finished {
                lease,
                idx,
                cached,
                elapsed_ms,
            } => format!("ok {lease} {idx} {} {elapsed_ms}", u8::from(*cached)),
            ToCoordinator::Failed {
                lease,
                idx,
                kind,
                attempts,
                error,
            } => format!("fail {lease} {idx} {kind} {attempts} {}", escape(error)),
            ToCoordinator::Event { json } => format!("event {}", escape(json)),
            ToCoordinator::Bye => "bye".to_string(),
        }
    }

    /// Parses one wire line; `None` for anything malformed.
    pub fn parse(line: &str) -> Option<ToCoordinator> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = split_verb(line);
        match verb {
            "hello" => {
                let mut f = rest?.splitn(3, ' ');
                Some(ToCoordinator::Hello {
                    version: nonempty(f.next()?)?.to_string(),
                    digest: nonempty(f.next()?)?.to_string(),
                    pid: f.next()?.parse().ok()?,
                })
            }
            "want" => Some(ToCoordinator::Want {
                n: rest?.parse().ok()?,
            }),
            "ping" => Some(ToCoordinator::Ping {
                lease: rest?.parse().ok()?,
            }),
            "ok" => {
                let mut f = rest?.split(' ');
                let msg = ToCoordinator::Finished {
                    lease: f.next()?.parse().ok()?,
                    idx: f.next()?.parse().ok()?,
                    cached: match f.next()? {
                        "0" => false,
                        "1" => true,
                        _ => return None,
                    },
                    elapsed_ms: f.next()?.parse().ok()?,
                };
                if f.next().is_some() {
                    return None;
                }
                Some(msg)
            }
            "fail" => {
                let mut f = rest?.splitn(5, ' ');
                Some(ToCoordinator::Failed {
                    lease: f.next()?.parse().ok()?,
                    idx: f.next()?.parse().ok()?,
                    kind: nonempty(f.next()?)?.to_string(),
                    attempts: f.next()?.parse().ok()?,
                    error: unescape(f.next()?),
                })
            }
            "event" => Some(ToCoordinator::Event {
                json: unescape(rest?),
            }),
            "bye" if rest.is_none() => Some(ToCoordinator::Bye),
            _ => None,
        }
    }
}

impl ToWorker {
    /// Renders the message as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ToWorker::Welcome {
                heartbeat_ms,
                lease_ms,
            } => format!("welcome {heartbeat_ms} {lease_ms}"),
            ToWorker::Reject { reason } => format!("reject {}", escape(reason)),
            ToWorker::Lease { lease, cells } => {
                let list: Vec<String> = cells.iter().map(usize::to_string).collect();
                format!("lease {lease} {}", list.join(","))
            }
            ToWorker::Wait => "wait".to_string(),
            ToWorker::Done => "done".to_string(),
            ToWorker::Revoke { lease } => format!("revoke {lease}"),
            ToWorker::Shutdown => "shutdown".to_string(),
        }
    }

    /// Parses one wire line; `None` for anything malformed.
    pub fn parse(line: &str) -> Option<ToWorker> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = split_verb(line);
        match verb {
            "welcome" => {
                let mut f = rest?.split(' ');
                let msg = ToWorker::Welcome {
                    heartbeat_ms: f.next()?.parse().ok()?,
                    lease_ms: f.next()?.parse().ok()?,
                };
                if f.next().is_some() {
                    return None;
                }
                Some(msg)
            }
            "reject" => Some(ToWorker::Reject {
                reason: unescape(rest?),
            }),
            "lease" => {
                let (id, list) = rest?.split_once(' ')?;
                let cells: Option<Vec<usize>> = list.split(',').map(|c| c.parse().ok()).collect();
                let cells = cells?;
                if cells.is_empty() {
                    return None;
                }
                Some(ToWorker::Lease {
                    lease: id.parse().ok()?,
                    cells,
                })
            }
            "wait" if rest.is_none() => Some(ToWorker::Wait),
            "done" if rest.is_none() => Some(ToWorker::Done),
            "revoke" => Some(ToWorker::Revoke {
                lease: rest?.parse().ok()?,
            }),
            "shutdown" if rest.is_none() => Some(ToWorker::Shutdown),
            _ => None,
        }
    }
}

fn split_verb(line: &str) -> (&str, Option<&str>) {
    match line.split_once(' ') {
        Some((v, rest)) => (v, Some(rest)),
        None => (line, None),
    }
}

fn nonempty(s: &str) -> Option<&str> {
    (!s.is_empty()).then_some(s)
}

/// Incremental line framing over a read-timeout socket.
///
/// Reads raw bytes into a buffer and yields complete `\n`-terminated
/// lines; a read timeout yields [`Framed::Idle`] so the owning thread can
/// poll its stop flag, and EOF (or a hard error) yields [`Framed::Eof`].
/// Bytes of a half-written line stay buffered across timeouts — a peer
/// SIGKILLed mid-line leaves the fragment unread forever, which is
/// exactly the torn-tail behaviour the parsers tolerate.
#[derive(Debug)]
pub struct LineReader<R> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
}

/// One step of [`LineReader::next_line`].
#[derive(Debug, PartialEq, Eq)]
pub enum Framed {
    /// A complete line (terminator stripped).
    Line(String),
    /// The read timed out with no complete line; poll and retry.
    Idle,
    /// The peer is gone (EOF or a non-timeout error).
    Eof,
}

impl<R: Read> LineReader<R> {
    /// Wraps a readable source (a `UnixStream` with a read timeout set).
    pub fn new(src: R) -> LineReader<R> {
        LineReader {
            src,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Returns the next framed step. Call in a loop; `Idle` is the
    /// natural point to check a shutdown flag.
    pub fn next_line(&mut self) -> Framed {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let line = self.buf[self.pos..self.pos + nl].to_vec();
                self.pos += nl + 1;
                if self.pos >= self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                // Invalid UTF-8 is a malformed line: surfaced as empty,
                // which no parser accepts, so it is logged and dropped.
                return Framed::Line(String::from_utf8(line).unwrap_or_default());
            }
            let mut chunk = [0u8; 4096];
            match self.src.read(&mut chunk) {
                Ok(0) => return Framed::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Framed::Idle;
                }
                Err(_) => return Framed::Eof,
            }
        }
    }
}

/// The poll granularity for socket reads and the coordinator's tick: how
/// stale a stop flag or an expired lease can go unnoticed.
pub const POLL_INTERVAL: Duration = Duration::from_millis(100);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_coordinator_messages_round_trip() {
        let msgs = vec![
            ToCoordinator::Hello {
                version: PROTOCOL_VERSION.to_string(),
                digest: "0123456789abcdef0123456789abcdef".to_string(),
                pid: 4242,
            },
            ToCoordinator::Want { n: 2 },
            ToCoordinator::Ping { lease: 7 },
            ToCoordinator::Finished {
                lease: 7,
                idx: 3,
                cached: true,
                elapsed_ms: 125,
            },
            ToCoordinator::Failed {
                lease: 7,
                idx: 3,
                kind: "panic".to_string(),
                attempts: 1,
                error: "went \\ boom\nacross lines".to_string(),
            },
            ToCoordinator::Event {
                json:
                    "{\"t_ms\":1,\"ev\":\"cell_started\",\"idx\":0,\"label\":\"x\",\"attempt\":1}"
                        .to_string(),
            },
            ToCoordinator::Bye,
        ];
        for m in msgs {
            let line = m.encode();
            assert!(!line.contains('\n'), "framing must survive: {line}");
            assert_eq!(ToCoordinator::parse(&line), Some(m.clone()), "{line}");
            assert_eq!(ToCoordinator::parse(&format!("{line}\n")), Some(m));
        }
    }

    #[test]
    fn to_worker_messages_round_trip() {
        let msgs = vec![
            ToWorker::Welcome {
                heartbeat_ms: 2000,
                lease_ms: 60000,
            },
            ToWorker::Reject {
                reason: "digest mismatch:\nyours != mine".to_string(),
            },
            ToWorker::Lease {
                lease: 1,
                cells: vec![0, 5, 9],
            },
            ToWorker::Wait,
            ToWorker::Done,
            ToWorker::Revoke { lease: 1 },
            ToWorker::Shutdown,
        ];
        for m in msgs {
            let line = m.encode();
            assert!(!line.contains('\n'), "framing must survive: {line}");
            assert_eq!(ToWorker::parse(&line), Some(m), "{line}");
        }
    }

    #[test]
    fn malformed_lines_parse_as_none() {
        for line in [
            "",
            "frobnicate 1 2 3",
            "want",
            "want -3",
            "ok 1 2",            // missing fields
            "ok 1 2 3 4",        // cached must be 0|1
            "ok 1 2 1 4 excess", // trailing field
            "bye now",           // bye takes no operand
            "hello v1",          // missing digest+pid
        ] {
            assert_eq!(ToCoordinator::parse(line), None, "{line:?}");
        }
        for line in [
            "",
            "lease 1",
            "lease 1 ",
            "lease x 0",
            "welcome 1",
            "wait 0",
        ] {
            assert_eq!(ToWorker::parse(line), None, "{line:?}");
        }
    }

    #[test]
    fn escape_round_trips_and_frames() {
        for s in ["", "plain", "a\nb", "back\\slash", "\\n literal", "\n\\\n"] {
            let e = escape(s);
            assert!(!e.contains('\n'), "{e:?}");
            assert_eq!(unescape(&e), s, "{e:?}");
        }
    }

    #[test]
    fn line_reader_frames_split_reads_and_keeps_torn_tails() {
        // A source that yields its chunks one read() at a time, then
        // "blocks" (WouldBlock) once, then EOFs.
        struct Chunks(Vec<Vec<u8>>, bool);
        impl Read for Chunks {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if let Some(c) = self.0.first() {
                    let n = c.len().min(buf.len());
                    buf[..n].copy_from_slice(&c[..n]);
                    if n == c.len() {
                        self.0.remove(0);
                    } else {
                        self.0[0] = c[n..].to_vec();
                    }
                    return Ok(n);
                }
                if !self.1 {
                    self.1 = true;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                Ok(0)
            }
        }
        let mut r = LineReader::new(Chunks(
            vec![
                b"first li".to_vec(),
                b"ne\nsecond\nto".to_vec(),
                b"rn-tail-without-newline".to_vec(),
            ],
            false,
        ));
        assert_eq!(r.next_line(), Framed::Line("first line".to_string()));
        assert_eq!(r.next_line(), Framed::Line("second".to_string()));
        assert_eq!(r.next_line(), Framed::Idle, "timeout surfaces as Idle");
        assert_eq!(r.next_line(), Framed::Eof, "torn tail never becomes a line");
    }
}
