//! The campaign worker: a disposable cell-execution process.
//!
//! A worker connects to the coordinator's socket, proves it was launched
//! with the same grid (the `hello` carries [`sweep_digest`]), and then
//! loops: ask for work, run the leased cells through the same
//! [`exec::run_cell`] path the single-process executor uses, report
//! `ok`/`fail` verdicts. Results themselves never cross the socket —
//! `run_cell` stores them in the shared content-addressed cache, and the
//! verdict only tells the coordinator to load them.
//!
//! Three threads cooperate:
//!
//! * the **main loop** runs cells and sends `want`/`ok`/`fail`;
//! * a **reader** thread turns coordinator messages into control events,
//!   and services `revoke`/`shutdown` immediately by cancelling the
//!   current lease's [`CancelToken`] — which stops the engine at its
//!   next watchdog poll, even mid-cell;
//! * a **heartbeat** thread pings the current lease every half heartbeat
//!   interval, so a worker that is merely slow is never mistaken for a
//!   dead one.
//!
//! Cells abandoned by a revoke are reported by *nobody*: the coordinator
//! already requeued them when it revoked, and a late result for a cell
//! another worker since finished is deduplicated coordinator-side.

use super::protocol::{
    Framed, LineReader, ToCoordinator, ToWorker, POLL_INTERVAL, PROTOCOL_VERSION,
};
use crate::sweep::exec;
use crate::sweep::{sweep_digest, CellSpec, FailureKind, FailurePolicy, SweepOptions};
use crate::telemetry::{CampaignEvent, Telemetry, TelemetrySink};
use sim_core::CancelToken;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a worker keeps retrying the initial connect — covers the
/// coordinator still binding its socket when workers launch first.
const CONNECT_WINDOW: Duration = Duration::from_secs(10);

/// How long the main loop waits for a coordinator reply before deciding
/// the far side is wedged.
const REPLY_WINDOW: Duration = Duration::from_secs(60);

/// Control events the reader thread forwards to the main loop. Revoke
/// and shutdown are *not* forwarded — they act on the current lease's
/// cancel token directly so a running cell stops promptly.
enum Ctrl {
    Lease(u64, Vec<usize>),
    Wait,
    Done,
    Eof,
}

/// The lease currently being executed, shared with the reader and
/// heartbeat threads.
type Current = Arc<Mutex<Option<(u64, CancelToken)>>>;

/// Runs one worker process against the coordinator at `socket` until the
/// coordinator says the campaign is over.
///
/// `cells` must be the same grid (same spec, same order) the coordinator
/// was launched with — the handshake enforces this by digest. `opts`
/// should carry the same shared result cache; per-lease execution forces
/// `CollectAll` (the coordinator owns the retry policy), disables resume
/// and progress lines, and re-routes telemetry onto the socket.
///
/// # Errors
///
/// Connect/handshake failures, a rejected hello, or the coordinator
/// vanishing mid-campaign. A campaign completing normally (`done` /
/// `shutdown`) returns `Ok(())`.
pub fn work(cells: &[CellSpec], opts: &SweepOptions, socket: &Path) -> std::io::Result<()> {
    if opts.result_cache.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "campaign worker needs the shared result cache (results travel through it)",
        ));
    }
    let stream = connect_with_retry(socket)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = LineReader::new(stream);

    send(
        &writer,
        &ToCoordinator::Hello {
            version: PROTOCOL_VERSION.to_string(),
            digest: sweep_digest(cells),
            pid: std::process::id(),
        },
    )?;
    let (heartbeat, _lease_ms) = await_welcome(&mut reader)?;

    let stop = Arc::new(AtomicBool::new(false));
    let current: Current = Arc::new(Mutex::new(None));
    let (ctrl_tx, ctrl_rx) = mpsc::channel::<Ctrl>();

    let reader_thread = {
        let stop = stop.clone();
        let current = current.clone();
        std::thread::spawn(move || {
            loop {
                match reader.next_line() {
                    Framed::Line(line) => match ToWorker::parse(&line) {
                        Some(ToWorker::Lease { lease, cells }) => {
                            if ctrl_tx.send(Ctrl::Lease(lease, cells)).is_err() {
                                return;
                            }
                        }
                        Some(ToWorker::Wait) => {
                            if ctrl_tx.send(Ctrl::Wait).is_err() {
                                return;
                            }
                        }
                        Some(ToWorker::Done) => {
                            ctrl_tx.send(Ctrl::Done).ok();
                            return;
                        }
                        Some(ToWorker::Revoke { lease }) => {
                            let held = current.lock().expect("current lease lock");
                            if let Some((id, token)) = held.as_ref() {
                                if *id == lease {
                                    token.cancel();
                                }
                            }
                        }
                        Some(ToWorker::Shutdown) => {
                            stop.store(true, Ordering::SeqCst);
                            if let Some((_, token)) =
                                current.lock().expect("current lease lock").as_ref()
                            {
                                token.cancel();
                            }
                            ctrl_tx.send(Ctrl::Done).ok();
                            return;
                        }
                        Some(_) | None => {} // welcome replays / malformed: ignore
                    },
                    Framed::Idle => {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                    Framed::Eof => {
                        ctrl_tx.send(Ctrl::Eof).ok();
                        return;
                    }
                }
            }
        })
    };

    let heartbeat_thread = {
        let stop = stop.clone();
        let current = current.clone();
        let writer = writer.clone();
        let tick = (heartbeat / 2).max(Duration::from_millis(50));
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                let lease = current
                    .lock()
                    .expect("current lease lock")
                    .as_ref()
                    .map(|(id, _)| *id);
                if let Some(lease) = lease {
                    if send(&writer, &ToCoordinator::Ping { lease }).is_err() {
                        return; // coordinator gone; reader will notice too
                    }
                }
            }
        })
    };

    let outcome = lease_loop(cells, opts, &writer, &current, &stop, &ctrl_rx);

    stop.store(true, Ordering::SeqCst);
    send(&writer, &ToCoordinator::Bye).ok();
    heartbeat_thread.join().ok();
    reader_thread.join().ok();
    outcome
}

/// The worker's main loop: want → lease → run cells → report, until done.
fn lease_loop(
    cells: &[CellSpec],
    opts: &SweepOptions,
    writer: &Arc<Mutex<UnixStream>>,
    current: &Current,
    stop: &Arc<AtomicBool>,
    ctrl_rx: &mpsc::Receiver<Ctrl>,
) -> std::io::Result<()> {
    // Worker telemetry streams over the socket; the coordinator
    // re-stamps and fans out to the human-facing sinks.
    let socket_tel = Telemetry::to_sinks(vec![Box::new(SocketSink {
        out: writer.clone(),
    })]);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        send(writer, &ToCoordinator::Want { n: 16 })?;
        match ctrl_rx.recv_timeout(REPLY_WINDOW) {
            Ok(Ctrl::Lease(lease, idxs)) => {
                let token = CancelToken::new();
                *current.lock().expect("current lease lock") = Some((lease, token.clone()));
                let result =
                    run_lease(cells, opts, &socket_tel, writer, lease, &idxs, &token, stop);
                *current.lock().expect("current lease lock") = None;
                result?;
            }
            Ok(Ctrl::Wait) => std::thread::sleep(POLL_INTERVAL),
            Ok(Ctrl::Done) => return Ok(()),
            Ok(Ctrl::Eof) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "coordinator vanished mid-campaign",
                ));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "coordinator stopped replying",
                ));
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "coordinator connection lost",
                ));
            }
        }
    }
}

/// Executes one lease's cells, reporting a verdict per cell. A cancelled
/// token (revoke or shutdown) abandons the remainder silently — the
/// coordinator has already requeued them.
#[allow(clippy::too_many_arguments)]
fn run_lease(
    cells: &[CellSpec],
    opts: &SweepOptions,
    socket_tel: &Telemetry,
    writer: &Arc<Mutex<UnixStream>>,
    lease: u64,
    idxs: &[usize],
    token: &CancelToken,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let mut run_opts = opts.clone();
    // The coordinator owns retries (its policy, its backoff), resume
    // recall (its journal), and the progress stream: a worker is just
    // run_cell plus a socket.
    run_opts.failure_policy = FailurePolicy::CollectAll;
    run_opts.resume = false;
    run_opts.progress = false;
    run_opts.cancel = Some(token.clone());
    run_opts.telemetry = socket_tel.clone();
    for &idx in idxs {
        if stop.load(Ordering::SeqCst) || token.is_cancelled() {
            return Ok(());
        }
        let Some(cell) = cells.get(idx) else {
            continue; // a lease for cells we don't have is a protocol bug
        };
        match exec::run_cell(idx, cell, &run_opts) {
            Ok(outcome) => {
                send(
                    writer,
                    &ToCoordinator::Finished {
                        lease,
                        idx,
                        cached: outcome.cached,
                        elapsed_ms: outcome.elapsed.as_millis() as u64,
                    },
                )?;
            }
            Err(failure) => {
                if token.is_cancelled() {
                    // The revoke interrupted the engine; this cell is the
                    // coordinator's to reassign, not ours to report.
                    return Ok(());
                }
                let kind = match &failure.error {
                    FailureKind::Sim(_) => "sim",
                    FailureKind::Panic(_) => "panic",
                    FailureKind::TimedOut { .. } => "timeout",
                    FailureKind::Remote { kind, .. } => kind,
                };
                send(
                    writer,
                    &ToCoordinator::Failed {
                        lease,
                        idx,
                        kind: kind.to_string(),
                        attempts: failure.attempts,
                        error: failure.error.to_string(),
                    },
                )?;
            }
        }
    }
    Ok(())
}

/// A [`TelemetrySink`] that frames each event as a protocol `event` line.
/// Terminal events are filtered coordinator-side, but a worker under
/// `CollectAll` with no journal only ever emits `cell_started`,
/// `cell_cache_hit`, `cell_finished`, `cell_failed`, and `cell_degraded`
/// — of which the coordinator passes through only the non-terminal ones.
struct SocketSink {
    out: Arc<Mutex<UnixStream>>,
}

impl TelemetrySink for SocketSink {
    fn record(&mut self, at_ms: u64, event: &CampaignEvent) {
        let msg = ToCoordinator::Event {
            json: event.to_json(at_ms),
        };
        if let Ok(mut s) = self.out.lock() {
            let _ = writeln!(&mut *s, "{}", msg.encode());
        }
    }

    fn flush(&mut self) {}
}

fn send(out: &Arc<Mutex<UnixStream>>, msg: &ToCoordinator) -> std::io::Result<()> {
    let mut s = out
        .lock()
        .map_err(|_| std::io::Error::other("socket writer poisoned"))?;
    writeln!(&mut *s, "{}", msg.encode())
}

/// Connects to the coordinator socket, retrying for [`CONNECT_WINDOW`]
/// to cover workers racing the coordinator's bind.
fn connect_with_retry(socket: &Path) -> std::io::Result<UnixStream> {
    let deadline = Instant::now() + CONNECT_WINDOW;
    loop {
        match UnixStream::connect(socket) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("no coordinator at {}: {e}", socket.display()),
                    ));
                }
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// Drains the handshake reply; anything but a `welcome` is fatal.
fn await_welcome<R: std::io::Read>(reader: &mut LineReader<R>) -> std::io::Result<(Duration, u64)> {
    let deadline = Instant::now() + CONNECT_WINDOW;
    loop {
        match reader.next_line() {
            Framed::Line(line) => match ToWorker::parse(&line) {
                Some(ToWorker::Welcome {
                    heartbeat_ms,
                    lease_ms,
                }) => {
                    return Ok((Duration::from_millis(heartbeat_ms.max(100)), lease_ms));
                }
                Some(ToWorker::Reject { reason }) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::PermissionDenied,
                        format!("coordinator rejected this worker: {reason}"),
                    ));
                }
                _ => {} // not part of the handshake; keep draining
            },
            Framed::Idle => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "coordinator never completed the handshake",
                    ));
                }
            }
            Framed::Eof => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "coordinator closed the connection during the handshake",
                ));
            }
        }
    }
}
