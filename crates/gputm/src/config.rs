//! Machine configuration: the simulated GPU's geometry and timing, plus
//! the transactional-memory system selector.
//!
//! The defaults follow the paper's Table II: a Fermi-class GPU with 15
//! SIMT cores of 48 x 32-wide warps, six memory partitions with 128 KB LLC
//! banks, two crossbars, and GDDR5-like latencies. The 56-core scalability
//! configuration (Sec. VI-B, Fig. 17) doubles the precise metadata table
//! and scales the LLC to 4 MB in eight banks.

use getm::vu::GetmConfig;
use gpu_mem::{CacheConfig, DramConfig, Interleave, XbarConfig};
use sim_core::SimError;
use tm_structs::{CuckooConfig, StallConfig};

/// How the engine times LLC-miss traffic (DESIGN.md §16).
///
/// The two models are *additive behind config*: every pre-existing
/// preset uses [`MemModel::FermiFixed`] and is bit-identical to the tree
/// that predates [`MemModel::Hbm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemModel {
    /// The paper's Fermi-class model: every LLC miss costs exactly
    /// `llc_service + dram.latency` cycles, with no occupancy tracking.
    #[default]
    FermiFixed,
    /// Modern-GPU model (Khairy et al.): per-partition HBM pseudo-channels
    /// with bandwidth occupancy and bounded outstanding-request queues,
    /// plus a banked-LLC service model ([`GpuConfig::llc_banks`]) where
    /// concurrent accesses to one bank queue behind each other.
    Hbm,
}

/// Which synchronization system executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TmSystem {
    /// GETM: eager conflict detection, lazy versioning (this paper).
    Getm,
    /// WarpTM: lazy value-based validation with TCD silent commits (best
    /// prior art, the paper's main baseline).
    WarpTmLL,
    /// The idealized eager-lazy WarpTM variant of the paper's Sec. III
    /// study (zero-latency per-access validation).
    WarpTmEL,
    /// Idealized EAPG: WarpTM plus commit-time conflict broadcasts.
    Eapg,
    /// Hand-optimized fine-grained locks (non-TM baseline).
    FgLock,
}

impl TmSystem {
    /// All systems, in the order the paper's figures present them.
    pub const ALL: [TmSystem; 5] = [
        TmSystem::FgLock,
        TmSystem::WarpTmLL,
        TmSystem::WarpTmEL,
        TmSystem::Eapg,
        TmSystem::Getm,
    ];

    /// Whether this system runs workloads in transactional mode.
    pub fn is_tm(self) -> bool {
        !matches!(self, TmSystem::FgLock)
    }

    /// Whether the system guarantees *opacity*: every transactional
    /// attempt — aborted ones included — observes a consistent snapshot.
    ///
    /// No TM system here makes that promise, each for its own reason.
    /// Value-based validation (WarpTM-LL, and EAPG which layers broadcasts
    /// over it) only checks at commit; even the idealized eager-lazy
    /// variant (WarpTM-EL) re-validates at the *next* access, so a commit
    /// landing between two reads is discovered one access too late. GETM
    /// comes closest — eager access-time locks squash most doomed attempts
    /// before a conflicting write can land — but its WAR aborts are
    /// *asynchronous*: when a logically-earlier writer invalidates a
    /// later reader's reservation, the doomed reader keeps issuing reads
    /// until the abort notification reaches its core, and those reads can
    /// observe logically-future state (the paper, like all GPU HTMs,
    /// relies on sandboxing doomed lanes rather than claiming opacity).
    /// The verifier therefore *waives* (but still counts, see
    /// [`crate::verify::Verdict::opacity_waived`]) torn aborted snapshots
    /// for every TM system; committed transactions are always held to full
    /// serializability.
    pub fn guarantees_opacity(self) -> bool {
        match self {
            TmSystem::Getm | TmSystem::WarpTmLL | TmSystem::WarpTmEL | TmSystem::Eapg => false,
            // No transactions at all: vacuously opaque.
            TmSystem::FgLock => true,
        }
    }

    /// Display label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            TmSystem::Getm => "GETM",
            TmSystem::WarpTmLL => "WarpTM",
            TmSystem::WarpTmEL => "WarpTM-EL",
            TmSystem::Eapg => "EAPG",
            TmSystem::FgLock => "FGLock",
        }
    }
}

impl std::fmt::Display for TmSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown TM-system name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTmSystem(pub String);

impl std::fmt::Display for UnknownTmSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = TmSystem::ALL.iter().map(|s| s.label()).collect();
        write!(
            f,
            "unknown TM system {:?} (expected one of {})",
            self.0,
            names.join(", ")
        )
    }
}

impl std::error::Error for UnknownTmSystem {}

impl std::str::FromStr for TmSystem {
    type Err = UnknownTmSystem;

    /// Case-insensitive parse of the harness labels ("GETM", "WarpTM",
    /// "WarpTM-EL", "EAPG", "FGLock"), so CLI surfaces round-trip
    /// [`TmSystem::label`] without their own lookup tables.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TmSystem::ALL
            .into_iter()
            .find(|sys| sys.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| UnknownTmSystem(s.to_owned()))
    }
}

/// Deliberate protocol faults for exercising the verification oracle.
///
/// Every variant other than [`Sabotage::None`] is inert unless the crate is
/// built with the `sabotage` feature; release builds carry only the enum so
/// configurations hash and cache identically across feature sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sabotage {
    /// Faithful protocol execution.
    #[default]
    None,
    /// GETM cores treat load-conflict abort replies as successes, so a
    /// doomed transaction keeps running on stale data and commits.
    GetmIgnoreLoadAborts,
    /// WarpTM partitions forge logged read values to the current committed
    /// values during validation, so stale snapshots always pass and push
    /// their writes through commit (manufactured lost updates).
    WtmForgeReadValidation,
}

/// Forward-progress watchdog configuration.
///
/// The watchdog samples GPU-wide commit progress once per `window` cycles.
/// A window in which transactional warps were live but *nothing committed*
/// counts as starved; consecutive starved windows walk a degradation
/// ladder — widen every warp's backoff (cheap, often enough), then enter
/// *serialization fallback* (one starving warp is granted priority while
/// the rest are throttled, the software analogue of the serial-irrevocable
/// fallback hardware TMs use), and finally give up with a diagnostic
/// [`sim_core::LivelockReport`] instead of burning the whole
/// [`GpuConfig::max_cycles`] budget.
///
/// Healthy workloads commit every window, so an enabled watchdog never
/// fires on them and the simulation is bit-identical to one without it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch; `false` restores the bare `max_cycles` bail.
    pub enabled: bool,
    /// Progress window in cycles.
    pub window: u64,
    /// Consecutive starved windows before backoff escalation.
    pub escalate_after: u32,
    /// Consecutive starved windows before serialization fallback. Set
    /// above `livelock_after` to disable the fallback entirely (the
    /// watchdog then reports livelock without trying to degrade).
    pub serialize_after: u32,
    /// Consecutive starved windows before declaring livelock.
    pub livelock_after: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            window: 250_000,
            escalate_after: 2,
            serialize_after: 4,
            livelock_after: 16,
        }
    }
}

impl WatchdogConfig {
    /// A disabled watchdog (bare `max_cycles` behaviour).
    pub fn disabled() -> Self {
        WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::default()
        }
    }

    /// A watchdog that never serializes: starvation escalates backoff and
    /// then reports livelock directly. Used to *diagnose* pathological
    /// workloads rather than push them through.
    #[must_use]
    pub fn without_fallback(mut self) -> Self {
        self.serialize_after = self.livelock_after + 1;
        self
    }

    /// Whether serialization fallback can ever engage.
    pub fn fallback_enabled(&self) -> bool {
        self.serialize_after <= self.livelock_after
    }
}

/// Full machine + protocol configuration.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of SIMT cores.
    pub cores: u32,
    /// Resident warps per core.
    pub warps_per_core: u32,
    /// Threads per warp.
    pub warp_width: u32,
    /// Memory partitions (LLC banks).
    pub partitions: u32,
    /// LLC line size in bytes.
    pub line_bytes: u64,
    /// TM metadata granularity in bytes (Fig. 14 sweeps 16..128).
    pub granule_bytes: u64,
    /// Max warps per core with open transactions; `None` = unlimited.
    pub tx_concurrency: Option<u32>,
    /// Crossbar timing (each direction).
    pub xbar: XbarConfig,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// LLC bank geometry (per partition).
    pub llc_bank: CacheConfig,
    /// LLC service latency in cycles (tag + data access, pipelined).
    pub llc_service: u64,
    /// Independent LLC sub-banks per partition. With 1 the LLC is the
    /// paper's single pipelined bank; more banks only matter under
    /// [`MemModel::Hbm`], where same-bank accesses queue behind each
    /// other and different banks proceed in parallel.
    pub llc_banks: u32,
    /// How line addresses interleave across partitions.
    pub interleave: Interleave,
    /// LLC-miss timing model (fixed Fermi latency vs occupied HBM).
    pub mem_model: MemModel,
    /// DRAM channel timing (per partition).
    pub dram: DramConfig,
    /// GETM validation-unit configuration (per partition).
    pub getm: GetmConfig,
    /// TCD table entries per partition (WarpTM).
    pub tcd_entries: usize,
    /// Logical-timestamp rollover threshold (48-bit by default).
    pub ts_limit: u64,
    /// Simulation cycle budget before a run is declared livelocked.
    pub max_cycles: u64,
    /// Forward-progress watchdog (starvation detection + degradation).
    pub watchdog: WatchdogConfig,
    /// Root seed for every random stream in the run.
    pub seed: u64,
    /// Fault-injection selector (a no-op without the `sabotage` feature).
    pub sabotage: Sabotage,
}

impl GpuConfig {
    /// The paper's baseline: a GTX 480-like GPU (Table II).
    pub fn fermi_15core() -> Self {
        GpuConfig {
            cores: 15,
            warps_per_core: 48,
            warp_width: 32,
            partitions: 6,
            line_bytes: 128,
            granule_bytes: 32,
            tx_concurrency: Some(8),
            xbar: XbarConfig::default(),
            l1: CacheConfig::paper_l1d(),
            llc_bank: CacheConfig::paper_llc_bank(),
            llc_service: 90,
            llc_banks: 1,
            interleave: Interleave::Modulo,
            mem_model: MemModel::FermiFixed,
            dram: DramConfig::default(),
            getm: GetmConfig::paper_default_per_partition(6),
            tcd_entries: 1024,
            ts_limit: 1 << 48,
            max_cycles: 200_000_000,
            watchdog: WatchdogConfig::default(),
            seed: 0x6E7A,
            sabotage: Sabotage::None,
        }
    }

    /// The 56-core scalability configuration: 4 MB LLC in eight banks,
    /// doubled precise metadata tables (Sec. VI-B).
    pub fn large_56core() -> Self {
        let mut cfg = GpuConfig::fermi_15core();
        cfg.cores = 56;
        cfg.partitions = 8;
        cfg.llc_bank = CacheConfig::unsectored(4 * 1024 * 1024 / 8, 128, 8);
        // GETM: double only the precise table; WarpTM doubles its recency
        // filter, which the engine scales via tcd_entries.
        cfg.getm = GetmConfig {
            cuckoo: CuckooConfig {
                total_entries: (8192 / 8 / 4) * 4,
                ..CuckooConfig::default()
            },
            bloom_entries_per_way: 1024 / 8 / 4,
            bloom_ways: 4,
            stall: StallConfig::default(),
            ..GetmConfig::default()
        };
        cfg.tcd_entries = 2048;
        cfg
    }

    /// A Volta-class GPU (GV100-like), the modern memory-model tier of
    /// DESIGN.md §16: 80 SIMT cores of 64 warps, 24 memory partitions
    /// behind a hashed interleave, a 128 KB sectored streaming L1, 6 MB
    /// of sectored banked LLC, and HBM2 timing with dual pseudo-channels
    /// per partition. Metadata structures scale with the partition count
    /// the same way the paper's do, so the protocol comparison stays
    /// apples-to-apples with [`GpuConfig::fermi_15core`] — only the
    /// memory system moves.
    pub fn volta_80core() -> Self {
        let mut cfg = GpuConfig::fermi_15core();
        cfg.cores = 80;
        cfg.warps_per_core = 64;
        cfg.partitions = 24;
        cfg.l1 = CacheConfig::volta_l1d();
        cfg.llc_bank = CacheConfig::volta_llc_bank();
        cfg.llc_banks = 4;
        cfg.interleave = Interleave::XorHash;
        cfg.mem_model = MemModel::Hbm;
        cfg.dram = DramConfig::hbm();
        // ~2 TB/s of NVLink-era crossbar across 24 ports.
        cfg.xbar = XbarConfig {
            latency: 5,
            port_bytes_per_cycle: 64,
        };
        cfg.getm = GetmConfig::paper_default_per_partition(24);
        cfg.tcd_entries = 4096;
        cfg
    }

    /// A tiny Volta-tier machine for unit tests and CI smoke: the
    /// [`GpuConfig::tiny_test`] core/warp scale with every modern
    /// memory-model knob on (sectored streaming L1, hashed interleave,
    /// banked LLC, HBM timing).
    pub fn tiny_volta() -> Self {
        let mut cfg = GpuConfig::tiny_test();
        cfg.l1 = CacheConfig {
            capacity_bytes: 8 * 1024,
            ..CacheConfig::volta_l1d()
        };
        cfg.llc_bank = CacheConfig {
            capacity_bytes: 32 * 1024,
            ..CacheConfig::volta_llc_bank()
        };
        cfg.llc_banks = 2;
        cfg.interleave = Interleave::XorHash;
        cfg.mem_model = MemModel::Hbm;
        cfg.dram = DramConfig::hbm();
        cfg
    }

    /// A small machine for unit tests: 2 cores, 4 warps, 2 partitions.
    pub fn tiny_test() -> Self {
        let mut cfg = GpuConfig::fermi_15core();
        cfg.cores = 2;
        cfg.warps_per_core = 4;
        cfg.warp_width = 4;
        cfg.partitions = 2;
        cfg.getm = GetmConfig::paper_default_per_partition(2);
        cfg.max_cycles = 20_000_000;
        cfg
    }

    /// Overrides the per-core transactional-concurrency throttle.
    pub fn with_concurrency(mut self, limit: Option<u32>) -> Self {
        self.tx_concurrency = limit;
        self
    }

    /// Overrides the metadata granularity (Fig. 14 bottom).
    pub fn with_granularity(mut self, bytes: u64) -> Self {
        self.granule_bytes = bytes;
        self
    }

    /// Overrides the GPU-wide precise-table entry budget (Fig. 14 top).
    pub fn with_metadata_entries(mut self, gpu_wide: usize) -> Self {
        self.getm.cuckoo.total_entries = ((gpu_wide / self.partitions as usize / 4).max(1)) * 4;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate geometry.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::invalid_config("cores", "must be nonzero"));
        }
        if self.warps_per_core == 0 || self.warp_width == 0 || self.warp_width > 64 {
            return Err(SimError::invalid_config(
                "warps",
                "warps_per_core must be nonzero and warp_width in 1..=64",
            ));
        }
        if self.partitions == 0 {
            return Err(SimError::invalid_config("partitions", "must be nonzero"));
        }
        if !self.granule_bytes.is_power_of_two()
            || !self.line_bytes.is_power_of_two()
            || self.granule_bytes > self.line_bytes
        {
            return Err(SimError::invalid_config(
                "granularity",
                "granule and line must be powers of two with granule <= line",
            ));
        }
        // Cache geometry errors surface here as typed failures instead
        // of panicking inside SetAssocCache::new mid-sweep.
        for (what, cache) in [("l1 cache", &self.l1), ("llc bank", &self.llc_bank)] {
            if let Err(e) = cache.validate() {
                return Err(SimError::invalid_config(what, format!("{e}")));
            }
            if cache.line_bytes != self.line_bytes {
                return Err(SimError::invalid_config(
                    what,
                    format!(
                        "line size {} B disagrees with the machine's {} B lines",
                        cache.line_bytes, self.line_bytes
                    ),
                ));
            }
        }
        if self.llc_banks == 0 {
            return Err(SimError::invalid_config("llc_banks", "must be nonzero"));
        }
        if self.dram.pseudo_channels == 0 || self.dram.bytes_per_cycle == 0 {
            return Err(SimError::invalid_config(
                "dram",
                "pseudo_channels and bytes_per_cycle must be nonzero",
            ));
        }
        if self.tx_concurrency == Some(0) {
            return Err(SimError::invalid_config(
                "tx_concurrency",
                "use None for unlimited, not zero",
            ));
        }
        if self.watchdog.enabled {
            if self.watchdog.window == 0 {
                return Err(SimError::invalid_config(
                    "watchdog",
                    "window must be nonzero when the watchdog is enabled",
                ));
            }
            if self.watchdog.escalate_after == 0 || self.watchdog.livelock_after == 0 {
                return Err(SimError::invalid_config(
                    "watchdog",
                    "escalate_after and livelock_after must be nonzero",
                ));
            }
            if self.watchdog.escalate_after > self.watchdog.livelock_after {
                return Err(SimError::invalid_config(
                    "watchdog",
                    "escalate_after must not exceed livelock_after",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        GpuConfig::fermi_15core().validate().unwrap();
        GpuConfig::large_56core().validate().unwrap();
        GpuConfig::tiny_test().validate().unwrap();
        GpuConfig::volta_80core().validate().unwrap();
        GpuConfig::tiny_volta().validate().unwrap();
    }

    #[test]
    fn volta_preset_turns_every_modern_knob_on() {
        let v = GpuConfig::volta_80core();
        assert_eq!(v.cores, 80);
        assert_eq!(v.partitions, 24);
        assert_eq!(v.l1.sector_bytes, Some(32));
        assert!(v.l1.streaming, "Volta L1 is streaming/no-allocate");
        assert_eq!(v.llc_bank.sector_bytes, Some(32));
        assert_eq!(v.interleave, Interleave::XorHash);
        assert_eq!(v.mem_model, MemModel::Hbm);
        assert_eq!(v.dram.pseudo_channels, 2);
        assert!(v.llc_banks > 1);
        // 6 MB of LLC total, vs the paper's 768 KB.
        assert_eq!(v.llc_bank.capacity_bytes * v.partitions as u64, 6 << 20);
        // The Fermi preset keeps every knob off.
        let f = GpuConfig::fermi_15core();
        assert_eq!(f.l1.sector_bytes, None);
        assert!(!f.l1.streaming);
        assert_eq!(f.interleave, Interleave::Modulo);
        assert_eq!(f.mem_model, MemModel::FermiFixed);
        assert_eq!((f.llc_banks, f.dram.pseudo_channels), (1, 1));
    }

    #[test]
    fn bad_cache_geometry_is_a_typed_validate_error_not_a_panic() {
        // 8 lines / 3 ways: CacheConfig::sets() would silently truncate
        // and SetAssocCache::new would panic; validate() must catch it.
        let mut c = GpuConfig::tiny_test();
        c.llc_bank.ways = 3;
        let err = c.validate().expect_err("must reject");
        assert!(err.to_string().contains("llc bank"), "{err}");
        let mut c = GpuConfig::tiny_test();
        c.l1.capacity_bytes = 1000;
        assert!(c.validate().unwrap_err().to_string().contains("l1"));
        let mut c = GpuConfig::tiny_test();
        c.l1.line_bytes = 64; // disagrees with the machine's 128 B lines
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.llc_banks = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.dram.pseudo_channels = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tm_system_names_round_trip_through_fromstr() {
        for sys in TmSystem::ALL {
            assert_eq!(sys.label().parse::<TmSystem>(), Ok(sys));
            assert_eq!(sys.to_string(), sys.label());
        }
        assert_eq!("getm".parse::<TmSystem>(), Ok(TmSystem::Getm));
        assert_eq!("warptm-el".parse::<TmSystem>(), Ok(TmSystem::WarpTmEL));
        let err = "htm".parse::<TmSystem>().unwrap_err();
        assert!(err.to_string().contains("htm"));
        assert!(err.to_string().contains("GETM"), "error lists valid names");
        assert!(err.to_string().contains("FGLock"));
    }

    #[test]
    fn paper_baseline_numbers() {
        let c = GpuConfig::fermi_15core();
        assert_eq!(c.cores, 15);
        assert_eq!(c.warps_per_core, 48);
        assert_eq!(c.partitions, 6);
        assert_eq!(c.granule_bytes, 32);
    }

    #[test]
    fn large_config_scales_llc_and_metadata() {
        let c = GpuConfig::large_56core();
        assert_eq!(c.cores, 56);
        assert_eq!(c.partitions, 8);
        assert_eq!(c.llc_bank.capacity_bytes * c.partitions as u64, 4 << 20);
        let small = GpuConfig::fermi_15core();
        assert!(
            c.getm.cuckoo.total_entries * 8 > small.getm.cuckoo.total_entries * 6,
            "precise table should double GPU-wide"
        );
    }

    #[test]
    fn builder_overrides() {
        let c = GpuConfig::fermi_15core()
            .with_concurrency(Some(2))
            .with_granularity(64)
            .with_metadata_entries(2048);
        assert_eq!(c.tx_concurrency, Some(2));
        assert_eq!(c.granule_bytes, 64);
        assert_eq!(c.getm.cuckoo.total_entries, 2048 / 6 / 4 * 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GpuConfig::tiny_test();
        c.cores = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.granule_bytes = 256; // bigger than the 128-byte line
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.tx_concurrency = Some(0);
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.warp_width = 65;
        assert!(c.validate().is_err());
    }

    #[test]
    fn watchdog_defaults_and_validation() {
        let d = WatchdogConfig::default();
        assert!(d.enabled && d.fallback_enabled());
        assert!(!WatchdogConfig::disabled().enabled);
        let no_fb = WatchdogConfig::default().without_fallback();
        assert!(!no_fb.fallback_enabled());
        // A disabled-fallback watchdog still validates.
        let mut c = GpuConfig::tiny_test();
        c.watchdog = no_fb;
        c.validate().unwrap();

        let mut c = GpuConfig::tiny_test();
        c.watchdog.window = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.watchdog.escalate_after = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::tiny_test();
        c.watchdog.escalate_after = c.watchdog.livelock_after + 1;
        assert!(c.validate().is_err());
        // Everything goes when the watchdog is off.
        let mut c = GpuConfig::tiny_test();
        c.watchdog = WatchdogConfig::disabled();
        c.watchdog.window = 0;
        c.validate().unwrap();
    }

    #[test]
    fn system_labels() {
        assert_eq!(TmSystem::Getm.label(), "GETM");
        assert_eq!(TmSystem::Getm.to_string(), "GETM");
        assert!(TmSystem::Getm.is_tm());
        assert!(!TmSystem::FgLock.is_tm());
        assert_eq!(TmSystem::ALL.len(), 5);
    }
}
