//! Everything a run measures.
//!
//! One [`Metrics`] value summarizes a simulation; the benchmark harness
//! combines metrics from multiple runs into the paper's figures and
//! tables. Field docs note which experiment consumes each number.

use sim_core::LogHistogram;
use std::collections::BTreeMap;
use std::time::Duration;

/// Host-side wall-time attribution for one shard of an
/// [`crate::exec::ExecMode::Sharded`] run: where this host thread's time
/// went, split into simulation work, barrier wait (parked or spinning at
/// a lockstep barrier while siblings finish), and canonical merge (the
/// lead thread replaying cross-shard effects in serial order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// Nanoseconds spent advancing this shard's cores/partitions.
    pub work_ns: u64,
    /// Nanoseconds waiting at lockstep barriers for sibling shards.
    pub barrier_ns: u64,
    /// Nanoseconds replaying buffered cross-shard effects in canonical
    /// order (attributed to the lead thread, which performs every merge).
    pub merge_ns: u64,
}

impl ShardProfile {
    /// Total attributed nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.work_ns + self.barrier_ns + self.merge_ns
    }
}

/// Host-side profile of a sharded run: per-shard [`ShardProfile`]s plus
/// how many parallel-phase windows were sampled. Empty (no shards) when
/// the run was serial or profiling was off.
///
/// Wall-clock attribution is host-dependent — scheduler noise, core
/// count, frequency scaling — so it is *excluded from the determinism
/// contract*: `PartialEq` deliberately compares any two profiles equal,
/// keeping `Metrics` equality (and the serial==sharded bit-identity
/// assertions everywhere) about the simulated machine only.
#[derive(Debug, Clone, Default)]
pub struct HostProfile {
    /// Attribution per shard, indexed by shard id (shard 0 is the lead,
    /// which also performs all merges).
    pub shards: Vec<ShardProfile>,
    /// Parallel-phase windows sampled (up-delivery + issue phases).
    pub windows: u64,
}

impl HostProfile {
    /// Whether any profile was captured.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The fraction of a shard's attributed time spent waiting at
    /// barriers — the ROADMAP item 1 question ("do lockstep barriers cap
    /// scaling?") in one number. `None` if the shard captured nothing.
    pub fn barrier_fraction(&self, shard: usize) -> Option<f64> {
        let s = self.shards.get(shard)?;
        let total = s.total_ns();
        if total == 0 {
            return None;
        }
        Some(s.barrier_ns as f64 / total as f64)
    }

    /// One `work/barrier/merge` summary line per shard, for reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.shards.iter().enumerate() {
            let total = s.total_ns().max(1);
            out.push_str(&format!(
                "shard {i}: work {:>9.2?} ({:>4.1}%) | barrier {:>9.2?} ({:>4.1}%) | merge {:>9.2?} ({:>4.1}%)\n",
                Duration::from_nanos(s.work_ns),
                100.0 * s.work_ns as f64 / total as f64,
                Duration::from_nanos(s.barrier_ns),
                100.0 * s.barrier_ns as f64 / total as f64,
                Duration::from_nanos(s.merge_ns),
                100.0 * s.merge_ns as f64 / total as f64,
            ));
        }
        out
    }
}

impl PartialEq for HostProfile {
    /// Always equal: host wall-clock attribution is observational and
    /// excluded from the determinism contract (see type docs).
    fn eq(&self, _other: &HostProfile) -> bool {
        true
    }
}

/// Measurements from one simulated kernel execution.
///
/// `PartialEq` compares every field (floats bitwise-as-written), which is
/// what the sweep harness's determinism guarantees are stated in terms of:
/// serial, parallel, and cache-recalled metrics for the same
/// [`crate::sweep::CellSpec`] compare equal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Total simulated core cycles until the kernel drained (Figs. 4, 11,
    /// 14, 17 — "total exec time").
    pub cycles: u64,
    /// Committed transactions (thread granularity).
    pub commits: u64,
    /// Aborted transaction attempts (Table IV: aborts per 1K commits).
    pub aborts: u64,
    /// Transactions committed silently via the TCD filter (WarpTM only).
    pub silent_commits: u64,
    /// Warp-cycles with an open transactional region actively executing
    /// (Figs. 3, 4, 10 — "tx exec").
    pub tx_exec_cycles: u64,
    /// Warp-cycles waiting: throttled at `TxBegin` or sleeping in abort
    /// backoff (Figs. 3, 4, 10 — "tx wait").
    pub tx_wait_cycles: u64,
    /// Total bytes crossing the two crossbars (Fig. 12).
    pub xbar_bytes: u64,
    /// Crossbar bytes by traffic category.
    pub xbar_by_category: BTreeMap<&'static str, u64>,
    /// Mean validation-unit metadata access latency, cycles (Fig. 13).
    /// `None` when the system has no validation units (non-GETM runs) —
    /// distinguishing "not measured" from a true zero.
    pub mean_metadata_access_cycles: Option<f64>,
    /// Full distribution of validation-unit metadata access latency in
    /// log-2 buckets (Fig. 13's p50/p95/p99 companion). Empty for systems
    /// without validation units.
    pub metadata_latency: LogHistogram,
    /// Maximum total stall-buffer occupancy across the GPU (Fig. 15).
    pub max_stall_occupancy: u64,
    /// Mean queued requests per stalled address (Fig. 16). `None` when no
    /// address ever had a waiter (or the system has no stall buffers).
    pub mean_stall_waiters_per_addr: Option<f64>,
    /// GETM stall-buffer-full aborts.
    pub stall_full_aborts: u64,
    /// GETM requests that were parked in stall buffers.
    pub stall_queued: u64,
    /// GETM aborts triggered at loads (WAR).
    pub getm_aborts_load: u64,
    /// GETM aborts triggered at stores (WAW/RAW).
    pub getm_aborts_store: u64,
    /// GETM aborts whose metadata came from the approximate table.
    pub getm_aborts_approx: u64,
    /// Lanes aborted by intra-warp conflict detection at issue.
    pub aborts_intra_warp: u64,
    /// Lanes aborted by value/hazard validation at commit (lazy systems).
    pub aborts_validation: u64,
    /// Largest conflicting timestamp reported by any GETM abort.
    pub getm_max_cause_ts: u64,
    /// GETM precise-table overflow high-water mark (expected 0).
    pub metadata_overflow_peak: usize,
    /// EAPG early aborts triggered by broadcasts.
    pub eapg_early_aborts: u64,
    /// EAPG broadcast messages delivered.
    pub eapg_broadcasts: u64,
    /// L1 data cache hit rate across cores. Sector misses count against
    /// it (they wait on a downstream fill like any miss).
    pub l1_hit_rate: f64,
    /// LLC hit rate across partitions (sector misses count against it).
    pub llc_hit_rate: f64,
    /// L1 sector misses across cores: tag present, sector not yet
    /// filled. Zero for unsectored (Fermi-tier) configurations.
    pub l1_sector_misses: u64,
    /// LLC sector misses across partitions (zero when unsectored).
    pub llc_sector_misses: u64,
    /// DRAM accesses across partitions (LLC line and sector fills).
    pub dram_accesses: u64,
    /// DRAM requests that waited for an outstanding-queue slot
    /// ([`crate::config::MemModel::Hbm`] only; the fixed-latency Fermi
    /// model has no queue to stall in).
    pub dram_queue_stalls: u64,
    /// Max/min per-partition LLC traffic imbalance — the partition
    /// camping gauge. `None` when too little traffic to judge.
    pub partition_imbalance: Option<f64>,
    /// Atomic operations executed (FGLock mode).
    pub atomics: u64,
    /// CAS operations that failed (lock contention indicator).
    pub cas_failures: u64,
    /// Timestamp rollovers performed (expected 0 at 48-bit).
    pub rollovers: u64,
    /// Mean round-trip latency of transactional accesses, cycles.
    pub mean_access_rt: f64,
    /// Mean commit rounds (1 + warp-level retries) per region.
    pub mean_rounds_per_region: f64,
    /// Mean validation-unit queue delay seen by arriving requests.
    pub mean_vu_queue_delay: f64,
    /// Mean LLC/DRAM latency component added to replies.
    pub mean_data_latency: f64,
    /// Workload invariant check outcome (`None` = not run).
    pub check: Option<Result<(), String>>,
    /// The forward-progress watchdog intervened (escalated backoff caps or
    /// serialized commits): the run completed, but its timing reflects
    /// degraded execution rather than the steady-state protocol.
    pub degraded: bool,
    /// Backoff-cap escalation sweeps the watchdog performed.
    pub watchdog_escalations: u64,
    /// Commits that landed while the machine was in serialization fallback.
    pub serialized_commits: u64,
    /// Host-side wall-time attribution for sharded runs (empty unless
    /// profiling was enabled via [`crate::runner::RunOptions::profile`]).
    /// Compares equal to anything — see [`HostProfile`]'s `PartialEq`.
    pub host_profile: HostProfile,
}

impl Metrics {
    /// Aborts per 1000 commits (Table IV). Zero if nothing committed.
    pub fn aborts_per_1k_commits(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 * 1000.0 / self.commits as f64
        }
    }

    /// Sum of transactional exec and wait cycles (Fig. 10's bar height).
    pub fn total_tx_cycles(&self) -> u64 {
        self.tx_exec_cycles + self.tx_wait_cycles
    }

    /// The abort tally attributed to one cause — the Table IV companion
    /// breakdown. Causes are counted where they are detected, so WAR and
    /// lock-conflict are VU reply counts (per request, possibly covering
    /// several lanes) while intra-warp/validation/early-abort are lane
    /// counts; `approx` overlaps WAR/lock-conflict (it marks which table
    /// the losing timestamp came from).
    pub fn aborts_by_cause(&self, cause: sim_core::AbortCause) -> u64 {
        use sim_core::AbortCause as C;
        match cause {
            C::War => self.getm_aborts_load,
            C::LockConflict => self.getm_aborts_store,
            C::StallFull => self.stall_full_aborts,
            C::Approx => self.getm_aborts_approx,
            C::IntraWarp => self.aborts_intra_warp,
            C::Validation => self.aborts_validation,
            C::EarlyAbort => self.eapg_early_aborts,
        }
    }

    /// Whether the run's final memory satisfied the workload invariants.
    ///
    /// # Panics
    ///
    /// Panics if the check was never executed or failed — callers in the
    /// harness want a loud failure, not a silently wrong figure.
    pub fn assert_correct(&self) {
        match &self.check {
            Some(Ok(())) => {}
            Some(Err(e)) => panic!("workload invariants violated: {e}"),
            None => panic!("workload invariants were never checked"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_rate() {
        let m = Metrics {
            commits: 2000,
            aborts: 500,
            ..Metrics::default()
        };
        assert_eq!(m.aborts_per_1k_commits(), 250.0);
        assert_eq!(Metrics::default().aborts_per_1k_commits(), 0.0);
    }

    #[test]
    fn abort_cause_breakdown_covers_every_cause() {
        let m = Metrics {
            getm_aborts_load: 1,
            getm_aborts_store: 2,
            stall_full_aborts: 3,
            getm_aborts_approx: 4,
            aborts_intra_warp: 5,
            aborts_validation: 6,
            eapg_early_aborts: 7,
            ..Metrics::default()
        };
        let tallies: Vec<u64> = sim_core::AbortCause::ALL
            .iter()
            .map(|&c| m.aborts_by_cause(c))
            .collect();
        assert_eq!(tallies, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn tx_cycle_total() {
        let m = Metrics {
            tx_exec_cycles: 10,
            tx_wait_cycles: 5,
            ..Metrics::default()
        };
        assert_eq!(m.total_tx_cycles(), 15);
    }

    #[test]
    #[should_panic(expected = "never checked")]
    fn assert_correct_requires_check() {
        Metrics::default().assert_correct();
    }

    #[test]
    #[should_panic(expected = "invariants violated")]
    fn assert_correct_propagates_failure() {
        let m = Metrics {
            check: Some(Err("boom".into())),
            ..Metrics::default()
        };
        m.assert_correct();
    }

    #[test]
    fn host_profile_is_excluded_from_metrics_equality() {
        let profiled = Metrics {
            host_profile: HostProfile {
                shards: vec![ShardProfile {
                    work_ns: 100,
                    barrier_ns: 50,
                    merge_ns: 25,
                }],
                windows: 7,
            },
            ..Metrics::default()
        };
        // The determinism contract is about the simulated machine: a
        // profiled sharded run still compares equal to an unprofiled
        // serial run of the same cell.
        assert_eq!(profiled, Metrics::default());
        assert!(!profiled.host_profile.is_empty());
        assert!(Metrics::default().host_profile.is_empty());
    }

    #[test]
    fn barrier_fraction_and_render() {
        let p = HostProfile {
            shards: vec![
                ShardProfile {
                    work_ns: 750,
                    barrier_ns: 250,
                    merge_ns: 0,
                },
                ShardProfile::default(),
            ],
            windows: 3,
        };
        assert_eq!(p.barrier_fraction(0), Some(0.25));
        assert_eq!(p.barrier_fraction(1), None, "empty shard has no ratio");
        assert_eq!(p.barrier_fraction(9), None, "out of range");
        let text = p.render();
        assert!(text.contains("shard 0"), "{text}");
        assert!(text.contains("barrier"), "{text}");
        assert_eq!(text.lines().count(), 2);
        assert_eq!(p.shards[0].total_ns(), 1000);
    }

    #[test]
    fn assert_correct_passes() {
        let m = Metrics {
            check: Some(Ok(())),
            ..Metrics::default()
        };
        m.assert_correct();
    }
}
